//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The derives accept (and ignore) `#[serde(...)]` attributes and emit no
//! code: the workspace treats the annotations as declarations of intent,
//! not as live serializers. See `vendor/README.md` for the rationale.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
