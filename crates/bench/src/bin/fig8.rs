//! Regenerates the paper's fig8 report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("fig8");
}
