//! §III sanity baseline — nominal (unattacked) driving performance of both
//! agents.
//!
//! The paper reports that the modular agent passes all NPC vehicles
//! without collision and the end-to-end agent completes all 180 steps
//! passing 5.96/6 NPCs on average over 30 episodes with no collisions.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records, AgentKind};
use attack_core::budget::AttackBudget;
use drive_metrics::episode::CellSummary;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, fmt_pct, Table};
use std::sync::Arc;

/// Nominal driving statistics for one agent.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// The agent.
    pub agent: AgentKind,
    /// Aggregated statistics over the batch.
    pub summary: CellSummary,
}

/// Full baseline result.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Modular and end-to-end cells.
    pub cells: Vec<BaselineCell>,
}

impl BaselineResult {
    /// The cell for an agent, if present.
    pub fn cell(&self, agent: AgentKind) -> Option<&BaselineCell> {
        self.cells.iter().find(|c| c.agent == agent)
    }

    /// Exports both cells as CSV.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "agent",
            "mean_passed",
            "collision_rate",
            "nominal_mean",
            "mean_deviation_rmse",
            "episodes",
        ]);
        for c in &self.cells {
            csv.row([
                c.agent.label().to_string(),
                format!("{:.3}", c.summary.mean_passed),
                format!("{:.3}", c.summary.collision_rate),
                format!("{:.3}", c.summary.nominal.mean),
                format!("{:.5}", c.summary.mean_deviation_rmse),
                c.summary.episodes.to_string(),
            ]);
        }
        csv
    }
}

/// Runs (or reuses) the baseline experiment via the context memo. The two
/// agent cells are independent and run in parallel; `par_map` preserves
/// the modular-then-e2e order.
pub fn run(ctx: &RunContext) -> Arc<BaselineResult> {
    ctx.memo("baseline", || {
        let ns = ctx.seeds_for("baseline");
        let agents = [AgentKind::Modular, AgentKind::E2e];
        let cells = drive_par::par_map(&agents, |_, &agent| {
            let records = attacked_records(
                agent,
                None,
                AttackBudget::ZERO,
                ctx,
                ctx.scale.box_episodes,
                &ns.child(agent.label()),
            );
            BaselineCell {
                agent,
                summary: CellSummary::from_records(&records),
            }
        });
        BaselineResult { cells }
    })
}

/// Registry entry for the §III baseline.
pub struct BaselineExperiment;

impl Experiment for BaselineExperiment {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn description(&self) -> &'static str {
        "Nominal driving performance of the modular and end-to-end agents (no attack)"
    }

    fn cells(&self) -> usize {
        2
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("baseline".to_string(), r.to_csv())],
            svgs: Vec::new(),
        }
    }
}

impl std::fmt::Display for BaselineResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Baseline — nominal driving performance (no attack)")?;
        let mut t = Table::new([
            "agent",
            "mean passed",
            "collision rate",
            "mean nominal reward",
            "mean deviation RMSE",
        ]);
        for c in &self.cells {
            t.row([
                c.agent.label().to_string(),
                fmt_f(c.summary.mean_passed, 2),
                fmt_pct(c.summary.collision_rate),
                fmt_f(c.summary.nominal.mean, 1),
                fmt_f(c.summary.mean_deviation_rmse, 3),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper: modular passes all 6; e2e passes 5.96/6, no collisions"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_baseline_runs_both_agents() {
        let dir = std::env::temp_dir().join("repro-bench-baseline-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.cells.len(), 2);
        let modular = result.cell(AgentKind::Modular).unwrap();
        // The paper's "modular never collides" claim is a 30-episode
        // paper-scale statistic; at smoke scale (4 episodes) a single
        // unlucky spawn jitter can produce one collision, so the smoke
        // assertion tolerates at most one.
        assert!(modular.summary.collision_rate <= 0.25);
        assert!(modular.summary.mean_passed >= 4.0);
        assert_eq!(result.to_csv().len(), 2);
        // Second call reuses the memoized result.
        let again = run(&ctx);
        assert!(Arc::ptr_eq(&result, &again));
    }
}
