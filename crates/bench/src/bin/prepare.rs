//! Trains (or loads) every artifact of the paper and exits. Subsequent
//! figure binaries then run instantly from the cache. Honors the shared
//! CLI flags (`--artifacts <dir>`, `--quick`).

fn main() {
    let args = match repro_bench::cli::CliArgs::from_env() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(repro_bench::cli::exit_code(&e));
        }
    };
    let config = args.pipeline_config();
    let artifacts = attack_core::pipeline::prepare(&config);
    eprintln!(
        "prepared: victim({} params), camera / imu attackers, 2 finetuned, pnn",
        artifacts.victim.trunk().param_count()
    );
}
