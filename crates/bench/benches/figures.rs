//! `cargo bench` figure harness: regenerates every table/figure of the
//! paper at smoke scale against quick-trained artifacts, driven through
//! the experiment registry — so the engine, every `Experiment` impl, and
//! the manifest writer stay exercised on every bench run. For paper-scale
//! numbers run the binaries (`cargo run --release -p repro-bench --bin
//! repro_all`) against fully trained artifacts.

use attack_core::pipeline::{prepare, PipelineConfig};
use repro_bench::engine;
use repro_bench::{Registry, RunContext, Scale};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("repro-bench-figures-bench");
    let config = PipelineConfig::quick(&dir);
    let t0 = Instant::now();
    let artifacts = prepare(&config);
    eprintln!(
        "[figures] artifacts ready in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    let mut ctx = RunContext::new(&artifacts, &config, Scale::smoke());
    ctx.csv_dir = Some(dir.join("out"));
    for exp in Registry::all() {
        let outcome = engine::execute(*exp, &ctx).expect("engine run");
        println!("{}", outcome.report);
        let manifest = outcome.manifest.expect("csv sink set");
        manifest
            .verify(&dir.join("out"))
            .expect("fresh outputs match their manifest");
        eprintln!(
            "[figures] {} in {:.1}s ({:.0} steps/s)",
            outcome.name,
            outcome.sample.wall_secs,
            outcome.sample.steps_per_sec()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
