//! A learned attack policy deployed as a [`SteerAttacker`].

use crate::budget::AttackBudget;
use crate::sensor::AttackerSensor;
use drive_agents::runner::SteerAttacker;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::scratch::ActScratch;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trained camera- or IMU-based attacker.
#[derive(Debug, Clone)]
pub struct LearnedAttacker {
    policy: GaussianPolicy,
    sensor: AttackerSensor,
    budget: AttackBudget,
    rng: StdRng,
    deterministic: bool,
    scratch: ActScratch,
}

impl LearnedAttacker {
    /// Wraps a trained policy with its sensor and budget.
    ///
    /// # Panics
    ///
    /// Panics if the policy's dims do not match the sensor / 1-D action.
    pub fn new(
        policy: GaussianPolicy,
        sensor: AttackerSensor,
        budget: AttackBudget,
        seed: u64,
        deterministic: bool,
    ) -> Self {
        assert_eq!(
            policy.obs_dim(),
            sensor.obs_dim(),
            "attack policy obs dim must match its sensor"
        );
        assert_eq!(policy.action_dim(), 1, "attack action is 1-D");
        LearnedAttacker {
            policy,
            sensor,
            budget,
            rng: StdRng::seed_from_u64(seed),
            deterministic,
            scratch: ActScratch::default(),
        }
    }

    /// Changes the deployment budget.
    pub fn set_budget(&mut self, budget: AttackBudget) {
        self.budget = budget;
    }

    /// The current budget.
    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &GaussianPolicy {
        &self.policy
    }
}

impl SteerAttacker for LearnedAttacker {
    fn reset(&mut self, _world: &World) {
        self.sensor.reset();
    }

    fn delta(&mut self, world: &World) -> f64 {
        let obs = self.sensor.observe(world);
        let raw = self
            .policy
            .act_with(&obs, &mut self.rng, self.deterministic, &mut self.scratch)[0]
            as f64;
        self.budget.scale(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::Scenario;
    use drive_sim::sensors::FeatureConfig;

    fn attacker(budget: f64) -> LearnedAttacker {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let policy = GaussianPolicy::new(dim, &[8], 1, &mut rng);
        LearnedAttacker::new(
            policy,
            AttackerSensor::camera(FeatureConfig::default()),
            AttackBudget::new(budget),
            1,
            true,
        )
    }

    #[test]
    fn delta_respects_budget() {
        let world = World::new(Scenario::default());
        for eps in [0.0, 0.3, 1.0] {
            let mut a = attacker(eps);
            a.reset(&world);
            let d = a.delta(&world);
            assert!(d.abs() <= eps + 1e-12, "delta {d} exceeds budget {eps}");
        }
    }

    #[test]
    fn deterministic_attacker_is_reproducible() {
        let world = World::new(Scenario::default());
        let mut a = attacker(1.0);
        let mut b = attacker(1.0);
        a.reset(&world);
        b.reset(&world);
        assert_eq!(a.delta(&world), b.delta(&world));
    }

    #[test]
    #[should_panic(expected = "obs dim")]
    fn sensor_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = GaussianPolicy::new(3, &[8], 1, &mut rng);
        let _ = LearnedAttacker::new(
            policy,
            AttackerSensor::camera(FeatureConfig::default()),
            AttackBudget::new(1.0),
            0,
            true,
        );
    }
}
