//! The experiment multiplexer: run any registered experiment by name,
//! `--list` the registry, `--filter` a subset, `--all` of it, or
//! `validate-manifest` a previous run's outputs. See `repro_bench::cli`.

fn main() {
    std::process::exit(repro_bench::cli::main_from_env());
}
