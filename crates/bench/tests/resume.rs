//! Crash-safety integration tests: a `repro_bench` run SIGKILLed at
//! arbitrary points and restarted with `--resume` must complete with
//! byte-identical outputs to an uninterrupted run.
//!
//! The subprocess test drives the real binary (`CARGO_BIN_EXE_repro_bench`)
//! against pre-trained quick artifacts, kills it mid-flight at three or
//! more randomized points, resumes each time, and compares every CSV/SVG
//! and manifest output list against a golden un-journaled run. The
//! in-process tests exercise the engine-level skip and cell-replay paths
//! directly.

use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use repro_bench::engine::{self, Registry, RunContext};
use repro_bench::harness::Scale;
use repro_bench::journal::JournalHandle;
use repro_bench::manifest::Manifest;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One quick-trained artifact cache shared by every test in this file and
/// by every subprocess (they load it instead of retraining).
fn setup() -> (&'static Artifacts, &'static PipelineConfig) {
    static SETUP: OnceLock<(Artifacts, PipelineConfig)> = OnceLock::new();
    let (a, c) = SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join("repro-bench-resume-artifacts");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    });
    (a, c)
}

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-bench-resume-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The full `--all` run against the shared artifacts. Paper evaluation
/// scale (no `--smoke`): a multi-second window, so randomized kills land
/// mid-evaluation.
fn run_cmd(run_dir: &Path, resume: bool) -> Command {
    let (_, config) = setup();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro_bench"));
    cmd.arg("--quick").arg("--all");
    if resume {
        cmd.arg("--resume").arg(run_dir);
    } else {
        cmd.arg("--csv").arg(run_dir);
    }
    cmd.arg("--svg").arg(run_dir);
    cmd.arg("--artifacts").arg(&config.dir);
    cmd.env_remove("REPRO_SCALE");
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// Compares two finished run directories: the same set of CSV/SVG files
/// with byte-identical contents, and manifests listing identical outputs
/// (sizes + checksums). Wall-clock manifest fields are run-dependent and
/// excluded; the `journal/` subdirectory is bookkeeping, not output.
fn assert_outputs_match(golden: &Path, other: &Path) {
    let mut names: Vec<String> = fs::read_dir(golden)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".csv") || n.ends_with(".svg") || n.ends_with(".manifest.json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden run produced no outputs");
    for name in &names {
        let g = golden.join(name);
        let o = other.join(name);
        if name.ends_with(".manifest.json") {
            let gm = Manifest::load(&g).unwrap();
            let om = Manifest::load(&o).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(gm.outputs, om.outputs, "{name}: output lists differ");
            assert_eq!(gm.seed_root, om.seed_root, "{name}");
        } else {
            let gb = fs::read(&g).unwrap();
            let ob = fs::read(&o).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(gb, ob, "{name}: bytes differ from the golden run");
        }
    }
}

#[test]
fn killed_and_resumed_run_matches_golden_byte_for_byte() {
    setup(); // train the shared artifacts before any subprocess starts

    // Golden: one uninterrupted run WITHOUT the journal, the ground truth
    // the journaled runs must reproduce.
    let golden = out_dir("golden");
    let status = run_cmd(&golden, false)
        .arg("--no-journal")
        .status()
        .expect("spawn golden run");
    assert!(status.success(), "golden run failed: {status}");

    // Sanity: a clean journaled run is byte-identical to the un-journaled
    // golden — journaling must never change results.
    let clean = out_dir("clean");
    let status = run_cmd(&clean, false).status().expect("spawn clean run");
    assert!(status.success(), "clean journaled run failed: {status}");
    assert_outputs_match(&golden, &clean);

    // Kill loop: SIGKILL the run at randomized delays, resuming each
    // time. Delays are capped well below the remaining work, so the first
    // three attempts are guaranteed to be genuine mid-flight kills.
    let killed = out_dir("killed");
    let mut kills = 0;
    let mut attempts = 0;
    let mut lcg: u64 = 0x5eed_cafe_f00d_beef;
    while kills < 3 {
        attempts += 1;
        assert!(
            attempts <= 12,
            "needed more than 12 attempts to land 3 kills"
        );
        let mut child = run_cmd(&killed, attempts > 1).spawn().expect("spawn");
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let delay = 150 + (lcg >> 33) % 600; // 150..750 ms
        std::thread::sleep(Duration::from_millis(delay));
        match child.try_wait().expect("try_wait") {
            None => {
                child.kill().expect("SIGKILL");
                child.wait().expect("reap");
                kills += 1;
            }
            Some(status) => {
                // Finished before the kill fired — only acceptable once
                // three genuine kills have already happened.
                assert!(status.success(), "early completion failed: {status}");
                assert!(
                    kills >= 3,
                    "run completed after {delay}ms on attempt {attempts} with only {kills} kill(s)"
                );
            }
        }
    }

    // Final resume: run to completion and compare everything.
    let output = run_cmd(&killed, true).output().expect("final resume");
    assert!(output.status.success(), "final resume failed");
    assert_outputs_match(&golden, &killed);

    // The journal did its job: the WAL and flush-per-row progress log are
    // in place, with the experiment completions recorded.
    assert!(killed.join("journal").join("wal.bin").exists());
    let progress = fs::read_to_string(killed.join("journal").join("progress.csv")).unwrap();
    assert!(
        progress.lines().any(|l| l.starts_with("experiment,")),
        "progress.csv records experiment completions:\n{progress}"
    );
}

/// Sends a real SIGTERM (std's `Child::kill` is SIGKILL on unix).
#[cfg(unix)]
fn sigterm(child: &std::process::Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let rc = unsafe { kill(child.id() as i32, 15) };
    assert_eq!(rc, 0, "kill(pid, SIGTERM) failed");
}

/// A polite SIGTERM mid-run must exit 130 with a `--resume` hint after
/// draining at a cell boundary, and the resumed run must finish
/// byte-identical to an uninterrupted golden run.
#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_resume_completes_byte_identical() {
    setup();
    let golden = out_dir("term-golden");
    let status = run_cmd(&golden, false)
        .arg("--no-journal")
        .status()
        .expect("spawn golden run");
    assert!(status.success(), "golden run failed: {status}");

    let interrupted = out_dir("term-interrupted");
    let mut landed = false;
    let mut attempts = 0;
    while !landed {
        attempts += 1;
        assert!(attempts <= 8, "could not land a mid-run SIGTERM in 8 tries");
        let mut cmd = run_cmd(&interrupted, attempts > 1);
        cmd.stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn");
        std::thread::sleep(Duration::from_millis(250));
        match child.try_wait().expect("try_wait") {
            None => {
                sigterm(&child);
                let output = child.wait_with_output().expect("reap");
                assert_eq!(
                    output.status.code(),
                    Some(130),
                    "graceful interruption exits 130 (status: {})",
                    output.status
                );
                let stderr = String::from_utf8_lossy(&output.stderr);
                assert!(
                    stderr.contains("--resume"),
                    "stderr hints at resumption:\n{stderr}"
                );
                landed = true;
            }
            Some(status) => assert!(status.success(), "early completion failed: {status}"),
        }
    }

    let output = run_cmd(&interrupted, true).output().expect("final resume");
    assert!(output.status.success(), "final resume failed");
    assert_outputs_match(&golden, &interrupted);
}

#[test]
fn engine_skips_verified_experiments_and_replays_cells_on_resume() {
    let (artifacts, config) = setup();
    let dir = out_dir("engine");
    let journal_dir = dir.join("journal");

    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());
    let header = ctx.run_header();
    ctx.journal = Some(Arc::new(
        JournalHandle::create(&journal_dir, header).unwrap(),
    ));
    let fig4 = Registry::find("fig4").unwrap();
    let first = engine::execute(fig4, &ctx).expect("first run");
    assert!(!first.written.is_empty());
    let csv_path = dir.join("fig4.csv");
    let first_bytes = fs::read(&csv_path).unwrap();
    assert!(
        ctx.journal.as_ref().unwrap().cell_count() > 0,
        "fig4 journals its grid cells"
    );
    drop(ctx);

    // Resume 1: the experiment is journaled and its manifest verifies, so
    // the engine skips it without touching the outputs.
    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());
    ctx.journal = Some(Arc::new(
        JournalHandle::resume(&journal_dir, header).unwrap(),
    ));
    let skipped = engine::execute(fig4, &ctx).expect("skipped run");
    assert!(
        skipped.report.contains("[resume]"),
        "skip reported: {}",
        skipped.report
    );
    assert!(skipped.written.is_empty(), "a skipped run writes nothing");
    drop(ctx);

    // Resume 2: delete the CSV — manifest verification fails, the
    // experiment re-runs, but every cell replays from its journaled
    // sidecar, and the regenerated CSV is byte-identical.
    fs::remove_file(&csv_path).unwrap();
    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());
    let journal = Arc::new(JournalHandle::resume(&journal_dir, header).unwrap());
    let cells_before = journal.cell_count();
    ctx.journal = Some(journal.clone());
    let rerun = engine::execute(fig4, &ctx).expect("rerun");
    assert!(!rerun.written.is_empty(), "re-run rewrites the outputs");
    assert_eq!(
        fs::read(&csv_path).unwrap(),
        first_bytes,
        "replayed cells regenerate byte-identical CSVs"
    );
    assert_eq!(
        journal.cell_count(),
        cells_before,
        "replay loads cells instead of recomputing and re-journaling"
    );
}

#[test]
fn incompatible_resume_is_refused_by_the_cli_binary() {
    let (_, config) = setup();
    let dir = out_dir("incompatible");
    // Seed a journal pinned to different run parameters.
    let header = repro_bench::journal::RunHeader {
        seed: 1,
        config_hash: 2,
        box_episodes: 3,
        scatter_rounds: 4,
    };
    JournalHandle::create(dir.join("journal"), header).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_repro_bench"))
        .arg("--quick")
        .arg("baseline")
        .arg("--resume")
        .arg(&dir)
        .arg("--artifacts")
        .arg(&config.dir)
        .env_remove("REPRO_SCALE")
        .output()
        .expect("spawn");
    assert_eq!(
        output.status.code(),
        Some(1),
        "incompatible --resume exits 1"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("cannot resume") && stderr.contains("different run"),
        "stderr explains the refusal:\n{stderr}"
    );
}
