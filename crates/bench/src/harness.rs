//! Shared plumbing for the figure harnesses: building the cast of agents
//! and attackers from pipeline artifacts and collecting attacked episode
//! records.

use attack_core::adv_reward::AdvReward;
use attack_core::budget::AttackBudget;
use attack_core::defense::SimplexSwitcher;
use attack_core::eval::run_attacked_episode;
use attack_core::learned::LearnedAttacker;
use attack_core::pipeline::{Artifacts, PipelineConfig};
use attack_core::sensor::{AttackerSensor, SensorKind};
use drive_agents::e2e::E2eAgent;
use drive_agents::modular::{ModularAgent, ModularConfig};
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_sim::record::EpisodeRecord;

/// The driving agents evaluated across the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// The modular planner + PID pipeline.
    Modular,
    /// The original end-to-end agent `pi_ori`.
    E2e,
    /// Fine-tuned `pi_adv, rho = 1/11`.
    AdvRhoSmall,
    /// Fine-tuned `pi_adv, rho = 1/2`.
    AdvRhoHalf,
    /// PNN behind a switcher with `sigma = 0.2`.
    PnnSigma02,
    /// PNN behind a switcher with `sigma = 0.4`.
    PnnSigma04,
}

impl AgentKind {
    /// The agents of Fig. 6 / Fig. 8 (nominal + four enhanced).
    pub fn enhanced_lineup() -> [AgentKind; 5] {
        [
            AgentKind::E2e,
            AgentKind::AdvRhoSmall,
            AgentKind::AdvRhoHalf,
            AgentKind::PnnSigma02,
            AgentKind::PnnSigma04,
        ]
    }

    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            AgentKind::Modular => "modular",
            AgentKind::E2e => "pi_ori",
            AgentKind::AdvRhoSmall => "pi_adv(rho=1/11)",
            AgentKind::AdvRhoHalf => "pi_adv(rho=1/2)",
            AgentKind::PnnSigma02 => "pi_pnn(sigma=0.2)",
            AgentKind::PnnSigma04 => "pi_pnn(sigma=0.4)",
        }
    }
}

/// Builds a fresh agent of the given kind.
///
/// The PNN agents' Simplex switcher is told the active `budget` (the
/// paper's idealized budget-aware switcher).
pub fn build_agent(
    kind: AgentKind,
    artifacts: &Artifacts,
    config: &PipelineConfig,
    budget: AttackBudget,
    seed: u64,
) -> Box<dyn Agent> {
    let features = config.features.clone();
    match kind {
        AgentKind::Modular => Box::new(ModularAgent::new(ModularConfig::default(), 1)),
        AgentKind::E2e => Box::new(E2eAgent::new(
            artifacts.victim.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::AdvRhoSmall => Box::new(E2eAgent::new(
            artifacts.adv_rho_small.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::AdvRhoHalf => Box::new(E2eAgent::new(
            artifacts.adv_rho_half.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::PnnSigma02 => Box::new(E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), 0.2, budget.epsilon()),
            features,
            seed,
            true,
        )),
        AgentKind::PnnSigma04 => Box::new(E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), 0.4, budget.epsilon()),
            features,
            seed,
            true,
        )),
    }
}

/// Collects attacked episode records for one `(agent, attack policy,
/// budget)` cell.
///
/// `seeds` is the cell's namespace in the run's seed tree: the agent's
/// exploration stream derives from `seeds/agent`, episode seeds from
/// `seeds/episodes`. A zero budget (or `attack == None`) yields the
/// nominal, unattacked cell.
pub fn attacked_records(
    kind: AgentKind,
    attack: Option<(&GaussianPolicy, SensorKind)>,
    budget: AttackBudget,
    ctx: &crate::engine::RunContext,
    episodes: usize,
    seeds: &drive_seed::SeedTree,
) -> Vec<EpisodeRecord> {
    // Crash-safety fast path: a cell journaled by an earlier (killed) run
    // replays from its sidecar. The key pins everything the records are a
    // function of — the seed namespace, the run seed, and the cell's own
    // coordinates — while the journal header pins the pipeline config the
    // artifacts derive from.
    let sensor_name = match attack {
        None => "none",
        Some((_, SensorKind::Camera)) => "camera",
        Some((_, SensorKind::Imu)) => "imu",
    };
    let cell_label = format!(
        "{}|{}|{}|eps={}|{}ep",
        seeds.path(),
        kind.label(),
        sensor_name,
        budget.epsilon(),
        episodes
    );
    let cell_key = drive_seed::fnv1a_64(
        format!(
            "cell|{}|{:016x}|{:?}|{}|{:016x}|{}",
            seeds.path(),
            ctx.scale.seed,
            kind,
            sensor_name,
            budget.epsilon().to_bits(),
            episodes
        )
        .as_bytes(),
    );
    if let Some(journal) = &ctx.journal {
        if let Some(records) = journal.load_cell(cell_key, episodes) {
            return records;
        }
    }
    // Graceful-shutdown safe point: between cells every completed cell is
    // already journaled, so unwinding out here leaves a run the CLI can
    // `--resume` to a byte-identical finish. The sentinel payload is
    // caught by the top-level driver, never by the episode retry layer.
    if drive_core::shutdown::requested() {
        std::panic::panic_any(drive_core::shutdown::ShutdownRequested);
    }
    let artifacts = ctx.artifacts;
    let config = ctx.config;
    let adv = AdvReward::default();
    let mut agent = build_agent(kind, artifacts, config, budget, seeds.child("agent").seed());
    // Episodes run through the hardened cell executor: one panicking
    // episode is retried with a fresh seed instead of aborting the whole
    // figure run. First attempts use `base + e` off the cell's episode
    // namespace, so healthy cells stay deterministic for any worker count.
    let outcome = crate::resilience::run_cell(
        episodes,
        seeds.child("episodes").seed(),
        &ctx.resilience,
        |seed| {
            let mut attacker = attack.and_then(|(policy, sensor_kind)| {
                if budget.is_zero() {
                    return None;
                }
                let sensor = match sensor_kind {
                    SensorKind::Camera => AttackerSensor::camera(config.features.clone()),
                    SensorKind::Imu => AttackerSensor::imu(config.imu.clone(), seed),
                };
                Some(LearnedAttacker::new(
                    policy.clone(),
                    sensor,
                    budget,
                    seed,
                    true,
                ))
            });
            run_attacked_episode(
                agent.as_mut(),
                attacker
                    .as_mut()
                    .map(|a| a as &mut dyn drive_agents::runner::SteerAttacker),
                &adv,
                &config.scenario,
                seed,
            )
        },
    );
    if !outcome.failures.is_empty() {
        eprintln!(
            "warning: {}/{} episode(s) failed after retries ({} agent); continuing with partial results",
            outcome.failures.len(),
            episodes,
            kind.label(),
        );
    }
    let clean = outcome.failures.is_empty();
    let records = outcome.into_records();
    // Journal only clean, complete cells: a cell with retried-out episodes
    // is partial and must be recomputed on resume. Journal failures cost a
    // recomputation later, never correctness — warn and continue.
    if let Some(journal) = &ctx.journal {
        if clean && records.len() == episodes {
            if let Err(e) = journal.store_cell(cell_key, &cell_label, episodes, &records) {
                eprintln!("warning: could not journal cell {cell_label}: {e}");
            }
        }
    }
    records
}

/// Experiment scale: the paper's episode counts or a fast smoke preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Episodes per box-plot cell (paper: 30).
    pub box_episodes: usize,
    /// Rounds per budget in the scatter sweeps (paper: 10).
    pub scatter_rounds: usize,
    /// Base evaluation seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's evaluation scale.
    pub fn paper() -> Self {
        Scale {
            box_episodes: 30,
            scatter_rounds: 10,
            seed: 10_000,
        }
    }

    /// A reduced scale for smoke tests and `cargo bench` figure targets.
    pub fn smoke() -> Self {
        Scale {
            box_episodes: 4,
            scatter_rounds: 2,
            seed: 10_000,
        }
    }

    /// Picks the scale from CLI args (`--smoke`) or an env var
    /// (`REPRO_SCALE=smoke`).
    pub fn from_env() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("REPRO_SCALE").is_ok_and(|v| v == "smoke");
        if smoke {
            Scale::smoke()
        } else {
            Scale::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack_core::pipeline::prepare;

    fn quick_setup() -> (Artifacts, PipelineConfig) {
        let dir = std::env::temp_dir().join("repro-bench-harness-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    }

    #[test]
    fn builds_every_agent_kind() {
        let (artifacts, config) = quick_setup();
        for kind in [
            AgentKind::Modular,
            AgentKind::E2e,
            AgentKind::AdvRhoSmall,
            AgentKind::AdvRhoHalf,
            AgentKind::PnnSigma02,
            AgentKind::PnnSigma04,
        ] {
            let mut agent = build_agent(kind, &artifacts, &config, AttackBudget::new(0.5), 0);
            let world = drive_sim::world::World::new(config.scenario.clone());
            agent.reset(&world);
            let a = agent.act(&world);
            assert!(a.steer.abs() <= 1.0, "{kind:?}");
        }
    }

    #[test]
    fn attacked_records_nominal_vs_attacked() {
        let (artifacts, config) = quick_setup();
        let ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        let seeds = ctx.seeds.child("harness-test");
        let nominal = attacked_records(
            AgentKind::Modular,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
        );
        assert_eq!(nominal.len(), 2);
        assert!(nominal.iter().all(|r| r.attack_effort() == 0.0));

        let attacked = attacked_records(
            AgentKind::Modular,
            Some((&artifacts.camera_attacker, SensorKind::Camera)),
            AttackBudget::new(1.0),
            &ctx,
            2,
            &seeds,
        );
        assert!(attacked.iter().any(|r| r.attack_effort() > 0.0));

        // Same namespace, same records: the cell is a pure function of its
        // seed subtree.
        let again = attacked_records(
            AgentKind::Modular,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
        );
        assert_eq!(nominal, again);
    }

    #[test]
    fn scale_presets() {
        assert_eq!(Scale::paper().box_episodes, 30);
        assert!(Scale::smoke().box_episodes < Scale::paper().box_episodes);
    }
}
