//! End-to-end artifact preparation for the experiment harnesses.
//!
//! Training every model of the paper (victim, camera attacker, IMU
//! attacker, two fine-tuned agents, the PNN) takes tens of minutes on CPU;
//! this module trains each stage once and caches it as a plain-text
//! checkpoint under an artifacts directory, so every figure harness can
//! `prepare()` and get the full cast instantly on re-runs.

use crate::defense::{adversarial_finetune, train_pnn_defense, DefenseTrainConfig};
use crate::train::{train_camera_attacker, train_imu_attacker, AttackTrainConfig};
use drive_agents::e2e::E2eAgent;
use drive_agents::training::{train_victim, VictimTrainConfig};
use drive_agents::Agent;
use drive_nn::checkpoint::{
    decode_pnn, decode_policy, encode_pnn, encode_policy, load_from_file, save_to_file,
};
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::pnn::PnnPolicy;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, ImuConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Every trainable of the paper, ready for evaluation.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The original end-to-end victim `pi_ori`.
    pub victim: GaussianPolicy,
    /// The camera-based attack policy.
    pub camera_attacker: GaussianPolicy,
    /// The IMU-based attack policy (learning-from-teacher).
    pub imu_attacker: GaussianPolicy,
    /// Fine-tuned agent with `rho = 1/11`.
    pub adv_rho_small: GaussianPolicy,
    /// Fine-tuned agent with `rho = 1/2`.
    pub adv_rho_half: GaussianPolicy,
    /// The PNN (one set of weights serves both switcher thresholds).
    pub pnn: PnnPolicy,
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Directory for cached checkpoints.
    pub dir: PathBuf,
    /// Scenario every stage trains and evaluates on.
    pub scenario: Scenario,
    /// Victim / camera feature configuration.
    pub features: FeatureConfig,
    /// IMU configuration.
    pub imu: ImuConfig,
    /// Victim training budgets.
    pub victim: VictimTrainConfig,
    /// Attacker training budgets (camera and IMU).
    pub attack: AttackTrainConfig,
    /// Fine-tuning with `rho = 1/11`.
    pub defense_rho_small: DefenseTrainConfig,
    /// Fine-tuning with `rho = 1/2`.
    pub defense_rho_half: DefenseTrainConfig,
    /// PNN column training (all-adversarial episodes).
    pub defense_pnn: DefenseTrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dir: PathBuf::from("artifacts"),
            scenario: Scenario::default(),
            features: FeatureConfig::default(),
            imu: ImuConfig::default(),
            victim: VictimTrainConfig::default(),
            attack: AttackTrainConfig::default(),
            defense_rho_small: DefenseTrainConfig {
                rho: 1.0 / 11.0,
                ..DefenseTrainConfig::default()
            },
            defense_rho_half: DefenseTrainConfig {
                rho: 0.5,
                ..DefenseTrainConfig::default()
            },
            defense_pnn: DefenseTrainConfig {
                rho: 0.0,
                ..DefenseTrainConfig::default()
            },
        }
    }
}

impl PipelineConfig {
    /// A heavily reduced preset for tests and smoke runs: every stage
    /// trains for a token number of steps. The resulting models are *not*
    /// expected to reproduce the paper's numbers — use the default preset
    /// for that.
    pub fn quick(dir: impl Into<PathBuf>) -> Self {
        let mut c = PipelineConfig {
            dir: dir.into(),
            ..PipelineConfig::default()
        };
        c.victim = VictimTrainConfig {
            demo_episodes: 8,
            bc_steps: 400,
            sac_steps: 0,
            ..c.victim
        };
        c.attack = AttackTrainConfig {
            bc_episodes: 4,
            bc_steps: 300,
            sac_steps: 0,
            ..c.attack
        };
        for d in [
            &mut c.defense_rho_small,
            &mut c.defense_rho_half,
            &mut c.defense_pnn,
        ] {
            d.sac_steps = 600;
            d.hidden = vec![32];
        }
        c
    }

    /// Builds a fresh deterministic victim agent around a policy.
    pub fn victim_agent(&self, policy: &GaussianPolicy, seed: u64) -> Box<dyn Agent> {
        Box::new(E2eAgent::new(
            policy.clone(),
            self.features.clone(),
            seed,
            true,
        ))
    }
}

fn cached<T>(
    path: &Path,
    decode: impl Fn(&str) -> Option<T>,
    encode: impl Fn(&T) -> String,
    train: impl FnOnce() -> T,
) -> T {
    if let Ok(text) = load_from_file(path) {
        if let Some(v) = decode(&text) {
            eprintln!("[pipeline] loaded {}", path.display());
            return v;
        }
        eprintln!("[pipeline] failed to parse {}, retraining", path.display());
    }
    let t0 = std::time::Instant::now();
    let v = train();
    eprintln!(
        "[pipeline] trained {} in {:.1}s",
        path.display(),
        t0.elapsed().as_secs_f64()
    );
    if let Err(e) = save_to_file(path, &encode(&v)) {
        eprintln!("[pipeline] warning: could not save {}: {e}", path.display());
    }
    v
}

/// Prepares (trains or loads) every artifact.
pub fn prepare(config: &PipelineConfig) -> Artifacts {
    let dir = &config.dir;
    let policy_cache = |name: &str, train: &mut dyn FnMut() -> GaussianPolicy| {
        let mut train = Some(train);
        cached(
            &dir.join(name),
            |t| decode_policy(t).ok(),
            encode_policy,
            || (train.take().expect("train called once"))(),
        )
    };

    let victim = policy_cache("victim_e2e.ckpt", &mut || {
        // Give the long SAC refinement a crash-recovery snapshot next to
        // the artifact cache (unless the caller pinned one): a killed run
        // resumes mid-training instead of restarting the whole stage.
        let mut victim_config = config.victim.clone();
        if victim_config.snapshot_path.is_none() {
            victim_config.snapshot_path = Some(dir.join("snapshots").join("victim_sac.snap"));
        }
        train_victim(&config.scenario, &config.features, &victim_config)
    });

    let camera_attacker = policy_cache("attacker_camera.ckpt", &mut || {
        let builder = || config.victim_agent(&victim, 0xe2e);
        train_camera_attacker(&builder, &config.scenario, &config.features, &config.attack)
    });

    let imu_attacker = policy_cache("attacker_imu.ckpt", &mut || {
        let builder = || config.victim_agent(&victim, 0xe2e);
        train_imu_attacker(
            &builder,
            &camera_attacker,
            &config.scenario,
            &config.features,
            &config.imu,
            &config.attack,
        )
    });

    let adv_rho_small = policy_cache("adv_rho_1_11.ckpt", &mut || {
        adversarial_finetune(
            &victim,
            &camera_attacker,
            &config.scenario,
            &config.features,
            &config.defense_rho_small,
        )
    });

    let adv_rho_half = policy_cache("adv_rho_1_2.ckpt", &mut || {
        adversarial_finetune(
            &victim,
            &camera_attacker,
            &config.scenario,
            &config.features,
            &config.defense_rho_half,
        )
    });

    let pnn = cached(
        &dir.join("pnn_defense.ckpt"),
        |t| decode_pnn(t).ok(),
        encode_pnn,
        || {
            train_pnn_defense(
                &victim,
                &camera_attacker,
                &config.scenario,
                &config.features,
                &config.defense_pnn,
            )
        },
    );

    Artifacts {
        victim,
        camera_attacker,
        imu_attacker,
        adv_rho_small,
        adv_rho_half,
        pnn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_round_trips_through_cache() {
        let dir = std::env::temp_dir().join("attack-core-pipeline-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = PipelineConfig::quick(&dir);
        let a1 = prepare(&config);
        // Second call loads from cache: identical weights.
        let a2 = prepare(&config);
        let obs = drive_nn::mat::Mat::from_row(&vec![0.1f32; config.features.observation_dim()]);
        assert_eq!(a1.victim.mean_action(&obs), a2.victim.mean_action(&obs));
        assert_eq!(
            a1.pnn.mean_action(&obs),
            a2.pnn.mean_action(&obs),
            "pnn must round trip through its checkpoint"
        );
        assert_eq!(a1.imu_attacker.obs_dim(), config.imu.observation_dim());
        assert_eq!(
            a1.camera_attacker.obs_dim(),
            config.features.observation_dim()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
