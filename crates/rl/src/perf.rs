//! Process-wide gradient-update throughput counter.
//!
//! [`crate::sac::Sac::update_batch`] bumps a relaxed atomic per update, so
//! harnesses can compute updates/sec across training stages (and worker
//! threads) without threading counters through every trainer.

use std::sync::atomic::{AtomicU64, Ordering};

static UPDATES: AtomicU64 = AtomicU64::new(0);

/// Records `n` gradient updates.
#[inline]
pub fn record_updates(n: u64) {
    UPDATES.fetch_add(n, Ordering::Relaxed);
}

/// Total gradient updates performed by this process so far.
pub fn updates() -> u64 {
    UPDATES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = updates();
        record_updates(2);
        assert!(updates() >= before + 2);
    }
}
