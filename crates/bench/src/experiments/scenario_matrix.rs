//! Scenario matrix — agents × attacks × procedurally generated scenarios.
//!
//! The paper evaluates every attack on one hand-built freeway scenario.
//! This experiment asks how the attack/defense picture generalizes across
//! road topology and traffic: it draws a seeded grid of scenarios from
//! `drive_sim::generate` (topology × traffic density × NPC speed mix ×
//! benign-fault intensity, several variants per axes point), then sweeps
//! agents × attacks over every generated world through the shared
//! [`attacked_records_in`] cell executor — journal/resume and `--fleet`
//! batching included (faulted cells stay on the serial path).
//!
//! The grid is fixed and scale-independent: 36 axes points × 3 variants =
//! 108 distinct scenarios across all 3 topologies. Scale only changes how
//! many episodes each evaluation cell runs.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records_in, AgentKind, ScenarioCell};
use attack_core::budget::AttackBudget;
use attack_core::sensor::SensorKind;
use drive_metrics::episode::CellSummary;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, fmt_pct, Table};
use drive_seed::fnv1a_64;
use drive_sim::generate::{
    generate, GeneratedScenario, ScenarioAxes, SpeedMix, TopologyKind, TrafficDensity,
};
use std::collections::HashSet;
use std::sync::Arc;

/// Speed mixes swept by the matrix (two of the three bands keep the grid
/// at ~100 scenarios; `Mixed` is covered by the generator's own tests).
const SPEED_MIXES: [SpeedMix; 2] = [SpeedMix::Slow, SpeedMix::Fast];

/// Benign fault-schedule intensities swept by the matrix.
const FAULT_INTENSITIES: [f64; 2] = [0.0, 0.5];

/// Independently drawn scenarios per axes point.
const VARIANTS: usize = 3;

/// Agents evaluated on every scenario: the nominal victim and the
/// strongest fine-tuned defense.
const AGENTS: [AgentKind; 2] = [AgentKind::E2e, AgentKind::AdvRhoHalf];

/// One evaluated `(scenario, agent, attack)` cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Index into [`ScenarioMatrixResult::scenarios`].
    pub scenario: usize,
    /// Evaluated agent.
    pub agent: AgentKind,
    /// Attacker sensor (`None` = nominal, unattacked).
    pub sensor: Option<SensorKind>,
    /// Aggregated episode statistics.
    pub summary: CellSummary,
    /// FNV-1a checksum of the cell's episode records — pins the cell's
    /// exact outcome in the CSV (and thus in the manifest checksum chain).
    pub records_checksum: u64,
}

/// Full scenario-matrix result.
#[derive(Debug, Clone)]
pub struct ScenarioMatrixResult {
    /// Every generated scenario, in grid order.
    pub scenarios: Vec<GeneratedScenario>,
    /// Every evaluated cell, in grid order.
    pub cells: Vec<MatrixCell>,
    /// Number of distinct scenario fingerprints (must equal
    /// `scenarios.len()` for a healthy generator).
    pub distinct_fingerprints: usize,
    /// Episodes each cell ran.
    pub episodes_per_cell: usize,
}

/// The full scenario grid, in deterministic sweep order.
fn axes_grid() -> Vec<ScenarioAxes> {
    let mut grid = Vec::new();
    for topology in TopologyKind::ALL {
        for density in TrafficDensity::ALL {
            for speed_mix in SPEED_MIXES {
                for fault_intensity in FAULT_INTENSITIES {
                    grid.push(ScenarioAxes {
                        topology,
                        density,
                        speed_mix,
                        fault_intensity,
                    });
                }
            }
        }
    }
    grid
}

/// Generates the matrix's scenarios off the experiment's seed namespace.
///
/// Each scenario draws from its own labeled node
/// (`.../gen/<topology>/<density>/<mix>/f<intensity>/<variant>`), so the
/// set is independent of enumeration order and any scenario can be
/// re-derived in isolation.
pub fn generate_matrix(ns: &drive_seed::SeedTree) -> Vec<GeneratedScenario> {
    let gen_ns = ns.child("gen");
    let mut scenarios = Vec::new();
    for axes in axes_grid() {
        let axes_node = gen_ns
            .child(axes.topology.label())
            .child(axes.density.label())
            .child(axes.speed_mix.label())
            .child(format!(
                "f{:03}",
                (axes.fault_intensity * 100.0).round() as u32
            ));
        for variant in 0..VARIANTS {
            scenarios.push(generate(axes, &axes_node.child(variant)));
        }
    }
    scenarios
}

/// Runs (or reuses) the scenario-matrix experiment via the context memo.
pub fn run(ctx: &RunContext) -> Arc<ScenarioMatrixResult> {
    ctx.memo("scenario-matrix", || {
        let ns = ctx.seeds_for("scenario-matrix");
        let scenarios = generate_matrix(&ns);
        let distinct_fingerprints = scenarios
            .iter()
            .map(|g| g.spec.fingerprint())
            .collect::<HashSet<_>>()
            .len();

        // Scatter-round episodes are the right order of magnitude here:
        // the matrix trades per-cell depth for breadth across worlds.
        let episodes = (ctx.scale.scatter_rounds / 2).max(1);
        let eval_ns = ns.child("eval");
        let mut grid = Vec::new();
        for (i, g) in scenarios.iter().enumerate() {
            for agent in AGENTS {
                for sensor in [None, Some(SensorKind::Camera)] {
                    grid.push((i, g, agent, sensor));
                }
            }
        }
        let cells = drive_par::par_map(&grid, |_, &(i, g, agent, sensor)| {
            let sensor_label = match sensor {
                None => "none".to_string(),
                Some(s) => s.to_string(),
            };
            let seeds = eval_ns
                .child(&g.spec.name)
                .child(agent.label())
                .child(sensor_label);
            let (attack, budget) = match sensor {
                None => (None, AttackBudget::ZERO),
                Some(s) => (
                    Some((&ctx.artifacts.camera_attacker, s)),
                    AttackBudget::new(1.0),
                ),
            };
            let records = attacked_records_in(
                agent,
                attack,
                budget,
                ctx,
                episodes,
                &seeds,
                Some(ScenarioCell {
                    scenario: g.spec.scenario(),
                    fingerprint: g.spec.fingerprint(),
                    faults: Some(&g.faults),
                }),
            );
            MatrixCell {
                scenario: i,
                agent,
                sensor,
                summary: CellSummary::from_records(&records),
                records_checksum: fnv1a_64(format!("{records:?}").as_bytes()),
            }
        });
        ScenarioMatrixResult {
            scenarios,
            cells,
            distinct_fingerprints,
            episodes_per_cell: episodes,
        }
    })
}

impl ScenarioMatrixResult {
    /// One row per generated scenario: axes, traffic, fingerprint.
    pub fn scenarios_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "name",
            "topology",
            "density",
            "speed_mix",
            "fault_intensity",
            "npcs",
            "total_lanes",
            "fingerprint",
        ]);
        for g in &self.scenarios {
            let s = g.spec.scenario();
            csv.row([
                g.spec.name.clone(),
                g.axes.topology.label().to_string(),
                g.axes.density.label().to_string(),
                g.axes.speed_mix.label().to_string(),
                format!("{:.2}", g.axes.fault_intensity),
                s.npcs.len().to_string(),
                s.road.total_lanes().to_string(),
                format!("{:016x}", g.spec.fingerprint()),
            ]);
        }
        csv
    }

    /// One row per evaluated cell, checksum included.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "scenario",
            "topology",
            "density",
            "speed_mix",
            "fault_intensity",
            "agent",
            "attack",
            "episodes",
            "nominal_mean",
            "nominal_median",
            "adv_mean",
            "success_rate",
            "mean_passed",
            "records_checksum",
        ]);
        for c in &self.cells {
            let g = &self.scenarios[c.scenario];
            csv.row([
                g.spec.name.clone(),
                g.axes.topology.label().to_string(),
                g.axes.density.label().to_string(),
                g.axes.speed_mix.label().to_string(),
                format!("{:.2}", g.axes.fault_intensity),
                c.agent.label().to_string(),
                c.sensor.map_or("none".to_string(), |s| s.to_string()),
                c.summary.episodes.to_string(),
                format!("{:.3}", c.summary.nominal.mean),
                format!("{:.3}", c.summary.nominal.median),
                format!("{:.3}", c.summary.adversarial.mean),
                format!("{:.3}", c.summary.success_rate),
                format!("{:.3}", c.summary.mean_passed),
                format!("{:016x}", c.records_checksum),
            ]);
        }
        csv
    }

    /// Mean nominal reward over the cells matching `(topology, agent,
    /// sensor)`.
    fn mean_nominal(
        &self,
        topology: TopologyKind,
        agent: AgentKind,
        sensor: Option<SensorKind>,
    ) -> f64 {
        let picked: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| {
                self.scenarios[c.scenario].axes.topology == topology
                    && c.agent == agent
                    && c.sensor == sensor
            })
            .map(|c| c.summary.nominal.mean)
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    }

    /// Mean attack success rate over the attacked cells matching
    /// `(topology, agent)`.
    fn mean_success(&self, topology: TopologyKind, agent: AgentKind) -> f64 {
        let picked: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| {
                self.scenarios[c.scenario].axes.topology == topology
                    && c.agent == agent
                    && c.sensor.is_some()
            })
            .map(|c| c.summary.success_rate)
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    }
}

/// Registry entry for the scenario matrix.
pub struct ScenarioMatrixExperiment;

impl Experiment for ScenarioMatrixExperiment {
    fn name(&self) -> &'static str {
        "scenario-matrix"
    }

    fn description(&self) -> &'static str {
        "Agents x attacks swept over 108 generated scenarios (3 topologies x traffic x faults)"
    }

    fn cells(&self) -> usize {
        // 36 axes points x 3 variants x 2 agents x 2 attacks.
        432
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![
                ("scenario_matrix".to_string(), r.to_csv()),
                ("scenario_matrix_scenarios".to_string(), r.scenarios_csv()),
            ],
            svgs: Vec::new(),
        }
    }
}

impl std::fmt::Display for ScenarioMatrixResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topologies: HashSet<&str> = self
            .scenarios
            .iter()
            .map(|g| g.axes.topology.label())
            .collect();
        writeln!(
            f,
            "Scenario matrix — {} generated scenarios ({} distinct fingerprints, {} topologies), \
             {} cells x {} episode(s)",
            self.scenarios.len(),
            self.distinct_fingerprints,
            topologies.len(),
            self.cells.len(),
            self.episodes_per_cell
        )?;
        let mut t = Table::new([
            "topology",
            "agent",
            "nominal (no attack)",
            "nominal (camera)",
            "attack success",
        ]);
        for topology in TopologyKind::ALL {
            for agent in AGENTS {
                t.row([
                    topology.label().to_string(),
                    agent.label().to_string(),
                    fmt_f(self.mean_nominal(topology, agent, None), 1),
                    fmt_f(
                        self.mean_nominal(topology, agent, Some(SensorKind::Camera)),
                        1,
                    ),
                    fmt_pct(self.mean_success(topology, agent)),
                ]);
            }
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};
    use drive_seed::SeedTree;

    /// Generation alone (no episodes): the grid is ≥100 distinct,
    /// validated scenarios across all three topologies, and is a pure
    /// function of the seed namespace.
    #[test]
    fn matrix_generates_distinct_valid_scenarios() {
        let ns = SeedTree::root(10_000).child("scenario-matrix");
        let scenarios = generate_matrix(&ns);
        assert!(scenarios.len() >= 100, "got {}", scenarios.len());
        let fingerprints: HashSet<u64> = scenarios.iter().map(|g| g.spec.fingerprint()).collect();
        assert_eq!(fingerprints.len(), scenarios.len(), "fingerprint collision");
        let topologies: HashSet<&str> = scenarios
            .iter()
            .map(|g| g.spec.scenario().road.topology.label())
            .collect();
        assert_eq!(topologies.len(), 3);
        for g in &scenarios {
            assert!(g.spec.scenario().validate().is_ok(), "{}", g.spec.name);
        }
        let again = generate_matrix(&ns);
        assert_eq!(scenarios, again, "generation must be deterministic");
    }

    /// End-to-end smoke: a reduced sweep over the full grid produces one
    /// summary per cell and a coherent CSV pair.
    #[test]
    fn smoke_matrix_runs_full_grid() {
        let dir = std::env::temp_dir().join("repro-bench-scenario-matrix-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.scenarios.len(), 108);
        assert_eq!(result.cells.len(), 432);
        assert_eq!(result.distinct_fingerprints, 108);
        assert!(result
            .cells
            .iter()
            .all(|c| c.summary.episodes == result.episodes_per_cell));
        assert_eq!(result.to_csv().len(), 432);
        assert_eq!(result.scenarios_csv().len(), 108);
        let text = format!("{result}");
        assert!(text.contains("Scenario matrix"));
        assert!(text.contains("on_ramp"));
        assert!(text.contains("lane_drop"));
    }
}
