//! Registry-dispatched command line shared by every bench binary.
//!
//! All experiment logic lives behind the [`Experiment`](crate::Experiment)
//! trait; this module only parses arguments, selects experiments from the
//! [`Registry`], and drives [`engine::execute`]. Flags:
//!
//! * `--list` — print the experiment registry and exit
//! * `--filter <substr>` — run every experiment whose name matches
//! * `--all` — run the whole registry in order
//! * `--smoke` (or `REPRO_SCALE=smoke`) — reduced evaluation scale
//! * `--scale <smoke|paper>` — explicit evaluation scale (`paper`
//!   overrides `REPRO_SCALE=smoke`)
//! * `--quick` — quick-trained artifacts (CI preset, not paper numbers)
//! * `--csv <dir>` / `--svg <dir>` — write data/figure outputs (a
//!   `<name>.manifest.json` with per-file checksums lands next to them)
//! * `--resume <dir>` — re-open the crash-safety journal of a killed run
//!   and continue it (`<dir>` doubles as the CSV dir unless `--csv` is
//!   given); completed experiments are skipped, completed cells replay
//!   from the journal, and the finished outputs are byte-identical to an
//!   uninterrupted run
//! * `--no-journal` — disable the journal (it is on whenever a CSV or SVG
//!   directory is set)
//! * `--artifacts <dir>` — checkpoint directory (default `artifacts/`)
//! * `--fleet <n>` — route fleet-capable evaluation cells through the
//!   batched [`WorldBatch`](drive_sim::batch::WorldBatch) engine with `n`
//!   episodes in lockstep (the f64 golden path is byte-identical to the
//!   serial engine)
//! * `--precision golden|f32` — integrator precision for fleet cells;
//!   `f32` is the inference-only fast path and journals under its own
//!   cell keys
//! * `--perf-json <path>` — write per-phase throughput as JSON
//! * `validate-manifest <path>` — re-check a manifest's file checksums
//! * `bench-compare <current.json>` — diff a fresh `PERF_JSON` export from
//!   the `perf` criterion bench against `--baseline` (default
//!   `BENCH_perf.json`); exits nonzero when any bench's median exceeds
//!   `--tolerance` (default 1.5) times its baseline or is missing
//!
//! Worker-thread count comes from `DRIVE_JOBS` (see `drive_par`).

use crate::benchcmp;
use crate::engine::{self, Registry, RunContext};
use crate::harness::Scale;
use crate::manifest::Manifest;
use crate::perf::{PerfReport, ThroughputProbe};
use attack_core::pipeline::{prepare, PipelineConfig};
use std::path::{Path, PathBuf};

/// Parsed command line for the bench binaries.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// Experiment names to run, in order.
    pub names: Vec<String>,
    /// Print the registry and exit.
    pub list: bool,
    /// Run every experiment whose name contains this substring.
    pub filter: Option<String>,
    /// Run the whole registry.
    pub all: bool,
    /// Use the quick-training pipeline preset.
    pub quick: bool,
    /// Use the reduced evaluation scale.
    pub smoke: bool,
    /// Explicit `--scale paper`: forces the paper scale even when
    /// `REPRO_SCALE=smoke` is set in the environment.
    pub paper: bool,
    /// CSV output directory.
    pub csv: Option<PathBuf>,
    /// SVG output directory.
    pub svg: Option<PathBuf>,
    /// Run directory of a killed run to resume.
    pub resume: Option<PathBuf>,
    /// Disable the crash-safety journal.
    pub no_journal: bool,
    /// Artifact checkpoint directory (`None` = `artifacts/`).
    pub artifacts: Option<PathBuf>,
    /// Perf-report JSON path.
    pub perf_json: Option<PathBuf>,
    /// Fleet batch size (`None` = serial evaluation).
    pub fleet: Option<usize>,
    /// Integrator precision for fleet-routed cells.
    pub precision: drive_sim::batch::Precision,
    /// Manifest to validate instead of running experiments.
    pub validate_manifest: Option<PathBuf>,
    /// Fresh bench export to compare against the baseline.
    pub bench_compare: Option<PathBuf>,
    /// Baseline for `bench-compare` (`None` = `BENCH_perf.json`).
    pub baseline: Option<PathBuf>,
    /// Acceptable `current / baseline` ratio for `bench-compare`
    /// (`None` = [`crate::benchcmp::DEFAULT_TOLERANCE`]).
    pub tolerance: Option<f64>,
}

/// Errors surfaced to the user by the CLI (exit codes in
/// [`exit_code`]).
#[derive(Debug)]
pub enum CliError {
    /// A name that is not in the registry.
    UnknownExperiment(String),
    /// An unrecognized `--flag`.
    UnknownFlag(String),
    /// A flag that requires a value was last on the line.
    MissingValue(String),
    /// A flag value that does not parse (flag, offending value).
    InvalidValue(String, String),
    /// `--filter` matched nothing.
    NoMatch(String),
    /// `validate-manifest` found a bad or mismatching manifest.
    ManifestInvalid(String),
    /// `bench-compare` found a regression (or could not read its inputs).
    BenchRegression(String),
    /// `--resume` could not re-open the run's journal (incompatible
    /// parameters, corruption beyond tail repair, or I/O failure).
    Resume(String),
    /// SIGTERM/Ctrl-C latched mid-run: the run drained at a cell boundary
    /// (carrying the journaled run directory when one was active, for the
    /// `--resume` hint).
    Interrupted(Option<PathBuf>),
    /// Output-sink failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownExperiment(name) => {
                writeln!(f, "unknown experiment '{name}'")?;
                writeln!(f, "\navailable experiments:")?;
                write!(f, "{}", Registry::list(Registry::all()))
            }
            CliError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            CliError::MissingValue(flag) => write!(f, "flag '{flag}' needs a value"),
            CliError::InvalidValue(flag, value) => {
                write!(f, "flag '{flag}' got invalid value '{value}'")
            }
            CliError::NoMatch(filter) => {
                writeln!(f, "no experiment matches filter '{filter}'")?;
                writeln!(f, "\navailable experiments:")?;
                write!(f, "{}", Registry::list(Registry::all()))
            }
            CliError::ManifestInvalid(msg) => write!(f, "manifest invalid:\n{msg}"),
            CliError::BenchRegression(msg) => write!(f, "{msg}"),
            CliError::Resume(msg) => write!(f, "cannot resume: {msg}"),
            CliError::Interrupted(run_dir) => {
                write!(
                    f,
                    "interrupted (SIGTERM/Ctrl-C); stopped at a cell boundary"
                )?;
                match run_dir {
                    Some(dir) => write!(
                        f,
                        "\ncompleted work is journaled — continue with: --resume {}",
                        dir.display()
                    ),
                    None => write!(
                        f,
                        "\nno journal was active (no --csv/--svg dir); progress was discarded"
                    ),
                }
            }
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Process exit code for an error: 2 for usage problems (unknown
/// experiment/flag), 1 for runtime failures.
pub fn exit_code(err: &CliError) -> i32 {
    match err {
        CliError::UnknownExperiment(_)
        | CliError::UnknownFlag(_)
        | CliError::MissingValue(_)
        | CliError::InvalidValue(..)
        | CliError::NoMatch(_) => 2,
        CliError::ManifestInvalid(_)
        | CliError::BenchRegression(_)
        | CliError::Resume(_)
        | CliError::Io(_) => 1,
        // 128 + SIGINT, the conventional "terminated by signal" code.
        CliError::Interrupted(_) => 130,
    }
}

impl CliArgs {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::UnknownFlag`] / [`CliError::MissingValue`] for
    /// malformed flags; experiment names are validated later, at
    /// selection.
    pub fn parse(args: &[String]) -> Result<CliArgs, CliError> {
        let mut out = CliArgs::default();
        let mut it = args.iter().peekable();
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                     flag: &str|
         -> Result<PathBuf, CliError> {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list" => out.list = true,
                // `all` predates `--all` as a positional name; keep both.
                "--all" | "all" => out.all = true,
                "--quick" => out.quick = true,
                "--smoke" => out.smoke = true,
                "--scale" => {
                    let raw = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue("--scale".to_string()))?;
                    match raw.as_str() {
                        "smoke" => {
                            out.smoke = true;
                            out.paper = false;
                        }
                        "paper" => {
                            out.paper = true;
                            out.smoke = false;
                        }
                        _ => {
                            return Err(CliError::InvalidValue("--scale".to_string(), raw.clone()))
                        }
                    }
                }
                "--filter" => {
                    out.filter = Some(
                        it.next()
                            .cloned()
                            .ok_or_else(|| CliError::MissingValue("--filter".to_string()))?,
                    )
                }
                "--csv" => out.csv = Some(value(&mut it, "--csv")?),
                "--svg" => out.svg = Some(value(&mut it, "--svg")?),
                "--resume" => out.resume = Some(value(&mut it, "--resume")?),
                "--no-journal" => out.no_journal = true,
                "--artifacts" => out.artifacts = Some(value(&mut it, "--artifacts")?),
                "--perf-json" => out.perf_json = Some(value(&mut it, "--perf-json")?),
                "--fleet" => {
                    let raw = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue("--fleet".to_string()))?;
                    let batch: usize = raw
                        .parse()
                        .map_err(|_| CliError::InvalidValue("--fleet".to_string(), raw.clone()))?;
                    if batch == 0 {
                        return Err(CliError::InvalidValue("--fleet".to_string(), raw.clone()));
                    }
                    out.fleet = Some(batch);
                }
                "--precision" => {
                    let raw = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue("--precision".to_string()))?;
                    out.precision = drive_sim::batch::Precision::parse(raw).ok_or_else(|| {
                        CliError::InvalidValue("--precision".to_string(), raw.clone())
                    })?;
                }
                "validate-manifest" => {
                    out.validate_manifest = Some(value(&mut it, "validate-manifest")?)
                }
                "bench-compare" => out.bench_compare = Some(value(&mut it, "bench-compare")?),
                "--baseline" => out.baseline = Some(value(&mut it, "--baseline")?),
                "--tolerance" => {
                    let raw = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue("--tolerance".to_string()))?;
                    let ratio: f64 = raw.parse().map_err(|_| {
                        CliError::InvalidValue("--tolerance".to_string(), raw.clone())
                    })?;
                    if !(ratio.is_finite() && ratio > 0.0) {
                        return Err(CliError::InvalidValue(
                            "--tolerance".to_string(),
                            raw.clone(),
                        ));
                    }
                    out.tolerance = Some(ratio);
                }
                flag if flag.starts_with("--") => {
                    return Err(CliError::UnknownFlag(flag.to_string()))
                }
                name => out.names.push(name.to_string()),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments.
    ///
    /// # Errors
    ///
    /// See [`CliArgs::parse`].
    pub fn from_env() -> Result<CliArgs, CliError> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        CliArgs::parse(&args)
    }

    /// Whether the arguments select any experiments (name, filter, or
    /// `--all`) or a non-running action (`--list`, `validate-manifest`).
    pub fn selects_anything(&self) -> bool {
        self.all
            || self.list
            || !self.names.is_empty()
            || self.filter.is_some()
            || self.validate_manifest.is_some()
            || self.bench_compare.is_some()
    }

    /// The pipeline configuration (artifact dir + quick preset).
    pub fn pipeline_config(&self) -> PipelineConfig {
        let dir = self
            .artifacts
            .clone()
            .unwrap_or_else(|| PathBuf::from("artifacts"));
        if self.quick {
            PipelineConfig::quick(dir)
        } else {
            PipelineConfig {
                dir,
                ..PipelineConfig::default()
            }
        }
    }

    /// The evaluation scale (`--scale smoke|paper`, `--smoke`, or
    /// `REPRO_SCALE=smoke` env; an explicit `--scale paper` wins).
    pub fn scale(&self) -> Scale {
        if self.paper {
            return Scale::paper();
        }
        if self.smoke || std::env::var("REPRO_SCALE").is_ok_and(|v| v == "smoke") {
            Scale::smoke()
        } else {
            Scale::paper()
        }
    }

    /// Resolves the experiments to run from the registry.
    ///
    /// # Errors
    ///
    /// [`CliError::UnknownExperiment`] for an unregistered name,
    /// [`CliError::NoMatch`] for a filter with no hits.
    pub fn select(&self) -> Result<Vec<&'static dyn engine::Experiment>, CliError> {
        if self.all {
            return Ok(Registry::all().to_vec());
        }
        if !self.names.is_empty() {
            return self
                .names
                .iter()
                .map(|name| {
                    Registry::find(name).ok_or_else(|| CliError::UnknownExperiment(name.clone()))
                })
                .collect();
        }
        if let Some(filter) = &self.filter {
            let hits = Registry::filter(filter);
            if hits.is_empty() {
                return Err(CliError::NoMatch(filter.clone()));
            }
            return Ok(hits);
        }
        Ok(Vec::new())
    }
}

/// Validates a manifest file against the outputs sitting next to it.
fn validate_manifest_cmd(path: &Path) -> Result<(), CliError> {
    let manifest = Manifest::load(path).map_err(CliError::ManifestInvalid)?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    match manifest.verify(dir) {
        Ok(()) => {
            println!(
                "manifest OK: {} ({}, {} output file(s) verified)",
                path.display(),
                manifest.experiment,
                manifest.outputs.len()
            );
            Ok(())
        }
        Err(problems) => Err(CliError::ManifestInvalid(problems.join("\n"))),
    }
}

/// Compares a fresh bench export against the checked-in baseline and
/// fails on any regressed or missing bench.
fn bench_compare_cmd(args: &CliArgs, current: &Path) -> Result<(), CliError> {
    let baseline = args
        .baseline
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_perf.json"));
    let tolerance = args.tolerance.unwrap_or(benchcmp::DEFAULT_TOLERANCE);
    let cmp = benchcmp::compare_files(current, &baseline, tolerance)
        .map_err(CliError::BenchRegression)?;
    if cmp.passed() {
        print!("{}", cmp.render());
        Ok(())
    } else {
        Err(CliError::BenchRegression(cmp.render()))
    }
}

/// Runs the parsed command: list, validate, or execute the selected
/// experiments through the engine (preparing artifacts once).
///
/// # Errors
///
/// See [`CliError`].
pub fn run(args: &CliArgs) -> Result<(), CliError> {
    if let Some(path) = &args.validate_manifest {
        return validate_manifest_cmd(path);
    }
    if let Some(path) = &args.bench_compare {
        return bench_compare_cmd(args, path);
    }
    if args.list {
        let experiments = match &args.filter {
            Some(f) => Registry::filter(f),
            None => Registry::all().to_vec(),
        };
        print!("{}", Registry::list(&experiments));
        return Ok(());
    }
    let experiments = args.select()?;
    let config = args.pipeline_config();
    let scale = args.scale();
    eprintln!(
        "artifacts dir: {} | scale: {} episodes/cell, {} rounds/budget",
        config.dir.display(),
        scale.box_episodes,
        scale.scatter_rounds
    );

    // `--resume <dir>` names the run directory; it doubles as the CSV dir
    // unless one was given explicitly, so the resumed run writes (and
    // verifies) the same files the killed run did.
    let csv_dir = args.csv.clone().or_else(|| args.resume.clone());
    // The journal is opened before artifact preparation: a run killed
    // while still training leaves a (cell-less) journal behind, and
    // resuming it re-enters training at the victim's own snapshot.
    let journal = if args.no_journal {
        None
    } else if let Some(run_dir) = csv_dir.as_ref().or(args.svg.as_ref()) {
        let header = crate::journal::RunHeader::for_run(&config, scale);
        let journal_dir = run_dir.join("journal");
        let journal = if args.resume.is_some() {
            crate::journal::JournalHandle::resume(&journal_dir, header)
                .map_err(|e| CliError::Resume(e.to_string()))?
        } else {
            crate::journal::JournalHandle::create(&journal_dir, header)
                .map_err(|e| CliError::Resume(e.to_string()))?
        };
        eprintln!(
            "[journal] {} at {}",
            if args.resume.is_some() {
                "resumed"
            } else {
                "started"
            },
            journal_dir.display()
        );
        Some(std::sync::Arc::new(journal))
    } else {
        None
    };

    let total = ThroughputProbe::start();
    let mut report = PerfReport::new();
    let probe = ThroughputProbe::start();
    let artifacts = prepare(&config);
    report.push(probe.sample("prepare"));

    let mut ctx = RunContext::new(&artifacts, &config, scale);
    ctx.csv_dir = csv_dir;
    ctx.svg_dir = args.svg.clone();
    ctx.journal = journal;
    ctx.fleet = args.fleet;
    ctx.precision = args.precision;
    if let Some(batch) = args.fleet {
        eprintln!(
            "[fleet] batched evaluation: {} episodes in lockstep, {} precision",
            batch,
            args.precision.label()
        );
    }
    // The run directory a graceful interruption can be resumed from (only
    // meaningful while a journal is recording).
    let resume_hint = if ctx.journal.is_some() {
        ctx.csv_dir.clone().or_else(|| args.svg.clone())
    } else {
        None
    };
    for exp in experiments {
        // The harness unwinds with the `ShutdownRequested` sentinel at the
        // next cell boundary after SIGTERM/Ctrl-C; catch it here and turn
        // it into a clean, resumable exit. Real panics keep propagating.
        let executed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine::execute(exp, &ctx)));
        let outcome = match executed {
            Ok(result) => result?,
            Err(payload) => {
                if payload.is::<drive_core::shutdown::ShutdownRequested>() {
                    return Err(CliError::Interrupted(resume_hint));
                }
                std::panic::resume_unwind(payload);
            }
        };
        println!("{}", outcome.report);
        for path in &outcome.written {
            eprintln!("[out] wrote {}", path.display());
        }
        report.push(outcome.sample);
    }
    report.push(total.sample("total"));
    eprint!("{}", report.summary());
    if let Some(path) = &args.perf_json {
        report.write_to(path)?;
        eprintln!("[perf] wrote {}", path.display());
    }
    Ok(())
}

/// Entry point for the per-figure binaries: parse the environment, default
/// to `default_name` when nothing is selected, run, and map errors to exit
/// codes.
pub fn main_for(default_name: &str) -> i32 {
    drive_core::shutdown::install();
    match CliArgs::from_env() {
        Ok(mut args) => {
            if !args.selects_anything() {
                if default_name == "all" {
                    args.all = true;
                } else {
                    args.names.push(default_name.to_string());
                }
            }
            dispatch(&args)
        }
        Err(e) => report_error(&e),
    }
}

/// Entry point for the `repro_bench` multiplexer binary: with no selection
/// at all, print usage plus the registry and exit 2. The `serve` and
/// `loadgen` subcommands (the policy-serving layer) have their own flag
/// surface and dispatch to [`crate::servecli`] before experiment parsing.
pub fn main_from_env() -> i32 {
    drive_core::shutdown::install();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => return crate::servecli::main(crate::servecli::ServeMode::Sim, &raw[1..]),
        Some("loadgen") => {
            return crate::servecli::main(crate::servecli::ServeMode::Loadgen, &raw[1..])
        }
        Some("shard") => return crate::shard::main(&raw[1..]),
        Some("merge") => return crate::merge::main(&raw[1..]),
        _ => {}
    }
    match CliArgs::from_env() {
        Ok(args) => {
            if !args.selects_anything() {
                eprintln!(
                    "usage: repro_bench [<experiment>...|--all|--filter <substr>|--list|validate-manifest <path>|bench-compare <current.json>]\n       [--smoke] [--quick] [--csv <dir>] [--svg <dir>] [--resume <dir>] [--no-journal]\n       [--artifacts <dir>] [--perf-json <path>] [--baseline <path>] [--tolerance <ratio>]\n       [--fleet <batch>] [--precision golden|f32]\n   or: repro_bench shard <dir> [--worker <id>] [--ttl-ms <n>] [--heartbeat-ms <n>] [<experiment>...|--all]\n       [--smoke] [--quick] [--artifacts <dir>] [--fleet <batch>] [--precision golden|f32]\n   or: repro_bench merge <dir> [--out <dir>] [--quick] [--artifacts <dir>] [--fleet <batch>] [--precision golden|f32]\n   or: repro_bench serve|loadgen [--requests <n>] [--qps <n>] [--seed <n>] [--workers <n>]\n       [--kills <n>] [--stalls <n>] [--corrupt-rate <f>] [--attack-at-us <n>] [--attack-delta <f>]\n       [--expect-no-sheds] [--expect-degraded] [--latency-json <path>] [--slo-p99-us <n>] [--qps-grid <a,b,...>]\n"
                );
                eprint!("{}", Registry::list(Registry::all()));
                return 2;
            }
            dispatch(&args)
        }
        Err(e) => report_error(&e),
    }
}

fn dispatch(args: &CliArgs) -> i32 {
    match run(args) {
        Ok(()) => 0,
        Err(e) => report_error(&e),
    }
}

fn report_error(e: &CliError) -> i32 {
    eprintln!("error: {e}");
    exit_code(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliArgs {
        CliArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_flags_and_names() {
        let args = parse(&[
            "fig4",
            "--smoke",
            "--quick",
            "--csv",
            "/tmp/c",
            "--svg",
            "/tmp/s",
            "--artifacts",
            "/tmp/a",
            "--perf-json",
            "/tmp/p.json",
            "fig5",
        ]);
        assert_eq!(args.names, ["fig4", "fig5"]);
        assert!(args.smoke && args.quick);
        assert_eq!(args.csv.as_deref(), Some(Path::new("/tmp/c")));
        assert_eq!(args.svg.as_deref(), Some(Path::new("/tmp/s")));
        assert_eq!(args.artifacts.as_deref(), Some(Path::new("/tmp/a")));
        assert_eq!(args.perf_json.as_deref(), Some(Path::new("/tmp/p.json")));
        assert_eq!(args.select().unwrap().len(), 2);
        assert!(args.pipeline_config().dir.ends_with("a"));
    }

    #[test]
    fn parses_scale_flag() {
        let args = parse(&["scenario-matrix", "--scale", "smoke"]);
        assert!(args.smoke && !args.paper);
        assert_eq!(args.scale(), Scale::smoke());
        let args = parse(&["scenario-matrix", "--scale", "paper"]);
        assert!(args.paper && !args.smoke);
        assert_eq!(args.scale(), Scale::paper());
        // Last flag wins.
        let args = parse(&["--smoke", "--scale", "paper"]);
        assert_eq!(args.scale(), Scale::paper());
        let bad: Vec<String> = vec!["--scale".into(), "huge".into()];
        assert!(matches!(
            CliArgs::parse(&bad),
            Err(CliError::InvalidValue(..))
        ));
        let dangling: Vec<String> = vec!["--scale".into()];
        assert!(matches!(
            CliArgs::parse(&dangling),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn parse_rejects_unknown_and_dangling_flags() {
        let all: Vec<String> = vec!["--frobnicate".into()];
        assert!(matches!(
            CliArgs::parse(&all),
            Err(CliError::UnknownFlag(_))
        ));
        let dangling: Vec<String> = vec!["--csv".into()];
        assert!(matches!(
            CliArgs::parse(&dangling),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn unknown_experiment_error_includes_registry_list() {
        let args = parse(&["nope"]);
        let err = args.select().err().expect("unknown name must not select");
        assert_eq!(exit_code(&err), 2);
        let text = err.to_string();
        assert!(text.contains("unknown experiment 'nope'"));
        // The error doubles as `--list` output so the user sees what is
        // available.
        for e in Registry::all() {
            assert!(text.contains(e.name()), "error lists {}", e.name());
        }
    }

    #[test]
    fn all_and_filter_select_from_registry() {
        let args = parse(&["--all"]);
        assert_eq!(args.select().unwrap().len(), Registry::all().len());
        let args = parse(&["--filter", "fig"]);
        assert_eq!(args.select().unwrap().len(), 5);
        let args = parse(&["--filter", "zzz"]);
        assert!(matches!(args.select(), Err(CliError::NoMatch(_))));
        // Nothing selected: empty, so binaries can apply their default.
        let args = parse(&[]);
        assert!(args.select().unwrap().is_empty());
        assert!(!args.selects_anything());
    }

    #[test]
    fn interrupted_exit_is_130_with_a_resume_hint() {
        let err = CliError::Interrupted(Some(PathBuf::from("/tmp/run")));
        assert_eq!(exit_code(&err), 130);
        let text = err.to_string();
        assert!(text.contains("--resume /tmp/run"), "{text}");
        let bare = CliError::Interrupted(None);
        assert_eq!(exit_code(&bare), 130);
        assert!(bare.to_string().contains("no journal"), "{bare}");
    }

    #[test]
    fn scale_follows_smoke_flag() {
        assert_eq!(parse(&["--smoke"]).scale(), Scale::smoke());
    }

    #[test]
    fn parses_resume_and_no_journal() {
        let args = parse(&["--all", "--resume", "/tmp/run", "--no-journal"]);
        assert_eq!(args.resume.as_deref(), Some(Path::new("/tmp/run")));
        assert!(args.no_journal);
        let args = parse(&["--all"]);
        assert!(args.resume.is_none() && !args.no_journal);
        let dangling: Vec<String> = vec!["--resume".into()];
        assert!(matches!(
            CliArgs::parse(&dangling),
            Err(CliError::MissingValue(_))
        ));
        // Resume failures exit 1 (runtime, not usage).
        assert_eq!(exit_code(&CliError::Resume("x".into())), 1);
    }

    #[test]
    fn parses_bench_compare_and_rejects_bad_tolerance() {
        let args = parse(&[
            "bench-compare",
            "/tmp/cur.json",
            "--baseline",
            "/tmp/base.json",
            "--tolerance",
            "1.25",
        ]);
        assert_eq!(
            args.bench_compare.as_deref(),
            Some(Path::new("/tmp/cur.json"))
        );
        assert_eq!(args.baseline.as_deref(), Some(Path::new("/tmp/base.json")));
        assert_eq!(args.tolerance, Some(1.25));
        assert!(args.selects_anything());
        // Defaults stay unset so the command applies its own.
        let args = parse(&["bench-compare", "cur.json"]);
        assert!(args.baseline.is_none() && args.tolerance.is_none());

        for bad in ["zero-point-five", "-1.0", "0", "inf"] {
            let argv: Vec<String> = vec![
                "bench-compare".into(),
                "c.json".into(),
                "--tolerance".into(),
                bad.into(),
            ];
            let err = CliArgs::parse(&argv).expect_err(bad);
            assert!(matches!(err, CliError::InvalidValue(..)), "{bad}: {err:?}");
            assert_eq!(exit_code(&err), 2);
        }
    }

    #[test]
    fn parses_fleet_and_precision() {
        use drive_sim::batch::Precision;
        let args = parse(&["--all", "--fleet", "64", "--precision", "f32"]);
        assert_eq!(args.fleet, Some(64));
        assert_eq!(args.precision, Precision::Fast);
        let args = parse(&["--all", "--precision", "golden"]);
        assert!(args.fleet.is_none());
        assert_eq!(args.precision, Precision::Golden);
        // Default precision is the bit-exact golden path.
        assert_eq!(parse(&["--all"]).precision, Precision::Golden);

        for bad in [
            &["--fleet", "0"][..],
            &["--fleet", "x"],
            &["--precision", "f16"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let err = CliArgs::parse(&argv).expect_err(&argv.join(" "));
            assert!(matches!(err, CliError::InvalidValue(..)), "{err:?}");
            assert_eq!(exit_code(&err), 2);
        }
        let dangling: Vec<String> = vec!["--fleet".into()];
        assert!(matches!(
            CliArgs::parse(&dangling),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn bench_compare_cmd_gates_on_the_tolerance() {
        let dir = std::env::temp_dir().join("repro-bench-cli-benchcmp-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let doc = |median: f64| {
            format!(
                "{{\"schema\": \"repro-bench/bench-v1\", \"quick\": false, \"benches\": [{{\"name\": \"m\", \"median_ns\": {median}, \"mean_ns\": {median}, \"iters\": 5}}]}}"
            )
        };
        std::fs::write(dir.join("base.json"), doc(100.0)).unwrap();
        std::fs::write(dir.join("cur.json"), doc(120.0)).unwrap();

        let mut args = parse(&["bench-compare", "ignored"]);
        args.baseline = Some(dir.join("base.json"));
        args.bench_compare = Some(dir.join("cur.json"));
        run(&args).expect("1.2x is within the default 1.5x tolerance");

        args.tolerance = Some(1.1);
        let err = run(&args).expect_err("1.2x must fail a 1.1x gate");
        assert!(matches!(err, CliError::BenchRegression(_)));
        assert_eq!(exit_code(&err), 1);
        assert!(err.to_string().contains("REGRESSED"));

        args.bench_compare = Some(dir.join("nonexistent.json"));
        assert!(run(&args).is_err(), "unreadable input must fail the gate");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
