//! Seeded, deterministic fault injection for sensors and actuation.
//!
//! Real deployments of the paper's victim agents see hardware faults that
//! are *not* adversarial: camera frames freeze or drop, IMUs glitch with
//! noise bursts and bias steps, actuators stick, develop dead-zones, or
//! lag. A robustness evaluation of the §VII perturbation detector has to
//! distinguish those benign faults (which should **not** trip the
//! detector) from learned action-space attacks (which should). This module
//! provides that benign-fault layer.
//!
//! Everything is driven by an explicit [`FaultSchedule`] plus a seed: the
//! same `(schedule, seed)` pair produces bit-identical fault activations
//! and corruptions, so faulted episodes are as reproducible as clean ones.
//! A schedule with all rates at zero is a byte-identical no-op — the
//! injector draws from its *own* RNG stream, never from the episode's.
//!
//! Layering:
//!
//! * [`FaultInjector`] is the stateful core: per-step activation rolls,
//!   duration counters, a frozen-frame cache, an actuation delay queue.
//! * [`FaultedFeatureExtractor`], [`FaultedCamera`] and [`FaultedImu`]
//!   wrap the corresponding sensor with an owned injector.
//! * Actuation faults are applied by the episode runner (see
//!   `drive-agents::runner::run_episode_with_faults`), which calls
//!   [`FaultInjector::begin_step`] once per control step and routes the
//!   perturbed command through [`FaultInjector::corrupt_actuation`]
//!   before `World::step`.

use crate::sensors::{randn, FeatureConfig, FeatureExtractor, Imu, ImuConfig, SemanticCamera};
use crate::vehicle::Actuation;
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The kinds of benign fault the layer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Camera frame freeze: observations repeat the last pre-fault frame.
    CameraFreeze,
    /// Camera dropout: observations read all-zero (no signal).
    CameraDropout,
    /// Poisoned observation: a random subset of entries become NaN.
    ObsNan,
    /// IMU noise burst: Gaussian noise of `magnitude` std added to the
    /// normalized window.
    ImuNoiseBurst,
    /// IMU bias step: constant `magnitude` offset added to the window.
    ImuBiasStep,
    /// Actuator stuck-at: the command latched at activation is replayed.
    ActuatorStuck,
    /// Actuator dead-zone: channels with magnitude below `magnitude`
    /// snap to zero.
    ActuatorDeadZone,
    /// Actuator delay: commands are served `magnitude` steps late
    /// (zero-hold until the queue fills).
    ActuatorDelay,
}

/// One injectable fault: what, how often, how long, how strong.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Which fault.
    pub kind: FaultKind,
    /// Per-step activation probability while inactive (0 disables).
    pub rate: f64,
    /// Steps a single activation lasts (min 1).
    pub duration: usize,
    /// Kind-specific strength (noise std, bias, dead-zone width, delay
    /// steps, NaN fraction). Unused by freeze / dropout / stuck.
    pub magnitude: f64,
}

impl FaultSpec {
    /// Creates a spec.
    pub fn new(kind: FaultKind, rate: f64, duration: usize, magnitude: f64) -> Self {
        Self {
            kind,
            rate,
            duration: duration.max(1),
            magnitude,
        }
    }
}

/// A seeded set of fault specs — the full description of what can go
/// wrong in an episode. Identical schedules (same seed, same specs)
/// reproduce identical fault traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Base seed for the injector's private RNG stream.
    pub seed: u64,
    /// The faults that may activate.
    pub specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// A schedule that never injects anything.
    pub fn none() -> Self {
        Self {
            seed: 0,
            specs: Vec::new(),
        }
    }

    /// The canonical benign-fault mix used by the robustness ablation,
    /// with all activation rates scaled by `intensity` (0 ⇒ no-op,
    /// 1 ⇒ a visibly degraded but usually drivable episode).
    pub fn benign(intensity: f64, seed: u64) -> Self {
        let i = intensity.max(0.0);
        Self {
            seed,
            specs: vec![
                FaultSpec::new(FaultKind::CameraFreeze, 0.010 * i, 5, 0.0),
                FaultSpec::new(FaultKind::CameraDropout, 0.010 * i, 2, 0.0),
                FaultSpec::new(FaultKind::ImuNoiseBurst, 0.020 * i, 10, 0.5),
                FaultSpec::new(FaultKind::ImuBiasStep, 0.005 * i, 40, 0.3),
                FaultSpec::new(FaultKind::ActuatorStuck, 0.005 * i, 3, 0.0),
                FaultSpec::new(FaultKind::ActuatorDeadZone, 0.010 * i, 10, 0.05),
                FaultSpec::new(FaultKind::ActuatorDelay, 0.005 * i, 8, 1.0),
            ],
        }
    }

    /// A schedule that poisons observations with NaN — used to exercise
    /// the numeric guards downstream, not part of the benign mix.
    pub fn poisoned(rate: f64, seed: u64) -> Self {
        Self {
            seed,
            specs: vec![FaultSpec::new(FaultKind::ObsNan, rate, 2, 0.25)],
        }
    }

    /// True when no spec can ever activate.
    pub fn is_noop(&self) -> bool {
        self.specs.iter().all(|s| s.rate <= 0.0)
    }
}

/// Counters describing what an injector actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Fault activations (a fault turning on counts once, however long
    /// it stays active).
    pub activations: usize,
    /// Steps on which at least one fault was active.
    pub faulted_steps: usize,
    /// Individual observation / IMU / actuation values altered.
    pub corrupted_values: usize,
}

/// Stateful fault injector for one episode.
///
/// Call [`FaultInjector::begin_step`] exactly once per control step, then
/// any of the `corrupt_*` methods for the data flowing through that step.
/// The injector owns a private RNG, so a schedule with zero rates leaves
/// every byte of episode data untouched.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    specs: Vec<FaultSpec>,
    seed: u64,
    rng: StdRng,
    /// Steps each spec remains active (0 = inactive).
    remaining: Vec<usize>,
    frozen_frame: Option<Vec<f32>>,
    stuck_at: Option<Actuation>,
    delay_queue: VecDeque<Actuation>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector from a schedule.
    pub fn new(schedule: &FaultSchedule) -> Self {
        Self::with_seed(schedule, schedule.seed)
    }

    /// Builds an injector whose stream also depends on an episode seed,
    /// so batches of episodes see independent (but reproducible) fault
    /// timings.
    pub fn for_episode(schedule: &FaultSchedule, episode_seed: u64) -> Self {
        // Full SplitMix64 finalizer (shared via drive-seed) keeps nearby
        // episode seeds decorrelated from each other and from the
        // schedule's own stream.
        let mixed = drive_seed::splitmix64(schedule.seed ^ drive_seed::splitmix64(episode_seed));
        Self::with_seed(schedule, mixed)
    }

    fn with_seed(schedule: &FaultSchedule, seed: u64) -> Self {
        Self {
            specs: schedule.specs.clone(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            remaining: vec![0; schedule.specs.len()],
            frozen_frame: None,
            stuck_at: None,
            delay_queue: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// Restores the injector to its start-of-episode state (same stream).
    pub fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.remaining.iter_mut().for_each(|r| *r = 0);
        self.frozen_frame = None;
        self.stuck_at = None;
        self.delay_queue.clear();
        self.stats = FaultStats::default();
    }

    /// Advances fault timers and rolls new activations. Call once per
    /// control step, before any `corrupt_*` call for that step.
    pub fn begin_step(&mut self) {
        for (i, spec) in self.specs.iter().enumerate() {
            if self.remaining[i] > 0 {
                self.remaining[i] -= 1;
            }
            if self.remaining[i] == 0 && spec.rate > 0.0 && self.rng.gen_bool(spec.rate.min(1.0)) {
                self.remaining[i] = spec.duration.max(1);
                self.stats.activations += 1;
            }
        }
        if self.remaining.iter().any(|&r| r > 0) {
            self.stats.faulted_steps += 1;
        }
    }

    fn active(&self, kind: FaultKind) -> Option<FaultSpec> {
        self.specs
            .iter()
            .zip(&self.remaining)
            .find(|(s, &r)| s.kind == kind && r > 0)
            .map(|(s, _)| *s)
    }

    /// True when no spec can ever activate (all rates zero).
    pub fn is_noop(&self) -> bool {
        self.specs.iter().all(|s| s.rate <= 0.0)
    }

    /// What the injector has done so far this episode.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Applies camera-class faults (freeze, dropout, NaN poisoning) to a
    /// rendered frame or stacked observation, in place.
    pub fn corrupt_observation(&mut self, obs: &mut [f32]) {
        if self.active(FaultKind::CameraFreeze).is_some() {
            match &self.frozen_frame {
                Some(f) if f.len() == obs.len() => {
                    let changed = obs.iter().zip(f).filter(|(a, b)| a != b).count();
                    obs.copy_from_slice(f);
                    self.stats.corrupted_values += changed;
                }
                // Freeze activated before any frame was cached: latch the
                // current frame so the rest of the burst repeats it.
                _ => self.frozen_frame = Some(obs.to_vec()),
            }
        } else {
            self.frozen_frame = Some(obs.to_vec());
        }
        if self.active(FaultKind::CameraDropout).is_some() {
            self.stats.corrupted_values += obs.iter().filter(|v| **v != 0.0).count();
            obs.iter_mut().for_each(|v| *v = 0.0);
        }
        if let Some(spec) = self.active(FaultKind::ObsNan) {
            let p = spec.magnitude.clamp(0.0, 1.0);
            for v in obs.iter_mut() {
                if self.rng.gen_bool(p) {
                    *v = f32::NAN;
                    self.stats.corrupted_values += 1;
                }
            }
        }
    }

    /// Applies IMU-class faults (noise burst, bias step) to a normalized
    /// IMU window, in place.
    pub fn corrupt_imu(&mut self, window: &mut [f32]) {
        if let Some(spec) = self.active(FaultKind::ImuNoiseBurst) {
            for v in window.iter_mut() {
                *v += (spec.magnitude * randn(&mut self.rng)) as f32;
            }
            self.stats.corrupted_values += window.len();
        }
        if let Some(spec) = self.active(FaultKind::ImuBiasStep) {
            for v in window.iter_mut() {
                *v += spec.magnitude as f32;
            }
            self.stats.corrupted_values += window.len();
        }
    }

    /// Applies actuation-class faults (delay, dead-zone, stuck-at) to a
    /// command, returning what the plant actually receives.
    pub fn corrupt_actuation(&mut self, command: Actuation) -> Actuation {
        let mut out = command;

        if let Some(spec) = self.active(FaultKind::ActuatorDelay) {
            let lag = (spec.magnitude.max(0.0) as usize).max(1);
            self.delay_queue.push_back(out);
            out = if self.delay_queue.len() > lag {
                // The queue only grows while the fault is active, so
                // front() is present whenever len > lag.
                self.delay_queue.pop_front().unwrap_or(out)
            } else {
                // Zero-order hold at neutral until the line fills.
                Actuation::new(0.0, 0.0)
            };
        } else {
            self.delay_queue.clear();
        }

        if let Some(spec) = self.active(FaultKind::ActuatorDeadZone) {
            let w = spec.magnitude.abs();
            if out.steer.abs() < w {
                out.steer = 0.0;
            }
            if out.thrust.abs() < w {
                out.thrust = 0.0;
            }
        }

        if self.active(FaultKind::ActuatorStuck).is_some() {
            let held = *self.stuck_at.get_or_insert(out);
            out = held;
        } else {
            self.stuck_at = None;
        }

        if out != command {
            self.stats.corrupted_values += 1;
        }
        out
    }
}

/// A [`FeatureExtractor`] whose stacked observations pass through a fault
/// injector. Drop-in for agents that observe semantic features.
#[derive(Debug, Clone)]
pub struct FaultedFeatureExtractor {
    inner: FeatureExtractor,
    /// The injector applied to every observation.
    pub injector: FaultInjector,
}

impl FaultedFeatureExtractor {
    /// Wraps an extractor.
    pub fn new(config: FeatureConfig, injector: FaultInjector) -> Self {
        Self {
            inner: FeatureExtractor::new(config),
            injector,
        }
    }

    /// Clears the frame stack and rewinds the injector.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.injector.reset();
    }

    /// Observes the world, then applies camera-class faults. Advances the
    /// injector by one step.
    pub fn observe(&mut self, world: &World) -> Vec<f32> {
        let mut obs = self.inner.observe(world);
        self.injector.begin_step();
        self.injector.corrupt_observation(&mut obs);
        obs
    }
}

/// A [`SemanticCamera`] whose rendered frames pass through a fault
/// injector.
#[derive(Debug, Clone)]
pub struct FaultedCamera {
    inner: SemanticCamera,
    /// The injector applied to every frame.
    pub injector: FaultInjector,
}

impl FaultedCamera {
    /// Wraps a camera.
    pub fn new(camera: SemanticCamera, injector: FaultInjector) -> Self {
        Self {
            inner: camera,
            injector,
        }
    }

    /// Renders a frame, then applies camera-class faults. Advances the
    /// injector by one step.
    pub fn render(&mut self, world: &World) -> Vec<f32> {
        let mut frame = self.inner.render(world);
        self.injector.begin_step();
        self.injector.corrupt_observation(&mut frame);
        frame
    }

    /// Frame dimension of the wrapped camera.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }
}

/// An [`Imu`] whose windows pass through a fault injector.
#[derive(Debug, Clone)]
pub struct FaultedImu {
    inner: Imu,
    /// The injector applied to every window read.
    pub injector: FaultInjector,
}

impl FaultedImu {
    /// Wraps an IMU.
    pub fn new(config: ImuConfig, injector: FaultInjector) -> Self {
        Self {
            inner: Imu::new(config),
            injector,
        }
    }

    /// Clears sample history and rewinds the injector.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.injector.reset();
    }

    /// Records the current world state (clean — faults corrupt reads, not
    /// the physical history). Advances the injector by one step.
    pub fn record<R: Rng>(&mut self, world: &World, rng: &mut R) {
        self.inner.record(world, rng);
        self.injector.begin_step();
    }

    /// The normalized window with IMU-class faults applied.
    pub fn window(&mut self) -> Vec<f32> {
        let mut w = self.inner.window();
        self.injector.corrupt_imu(&mut w);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn drive(injector: &mut FaultInjector, steps: usize) -> (Vec<Vec<f32>>, Vec<Actuation>) {
        let mut world = World::new(Scenario::default());
        let mut extractor = FeatureExtractor::new(FeatureConfig::default());
        let mut obs_log = Vec::new();
        let mut act_log = Vec::new();
        for t in 0..steps {
            injector.begin_step();
            let mut obs = extractor.observe(&world);
            injector.corrupt_observation(&mut obs);
            let cmd = Actuation::new(0.3 * ((t % 7) as f64 / 7.0 - 0.5), 0.4);
            let realized = injector.corrupt_actuation(cmd);
            world.step(realized);
            obs_log.push(obs);
            act_log.push(realized);
        }
        (obs_log, act_log)
    }

    #[test]
    fn zero_rate_schedule_is_noop() {
        let schedule = FaultSchedule::benign(0.0, 42);
        assert!(schedule.is_noop());
        let mut faulted = FaultInjector::new(&schedule);
        let mut none = FaultInjector::new(&FaultSchedule::none());
        let (obs_a, act_a) = drive(&mut faulted, 40);
        let (obs_b, act_b) = drive(&mut none, 40);
        assert_eq!(obs_a, obs_b);
        assert_eq!(act_a, act_b);
        assert_eq!(faulted.stats().activations, 0);
        assert_eq!(faulted.stats().corrupted_values, 0);
    }

    #[test]
    fn same_seed_and_schedule_reproduce_identical_faults() {
        let schedule = FaultSchedule::benign(1.0, 7);
        let mut a = FaultInjector::for_episode(&schedule, 3);
        let mut b = FaultInjector::for_episode(&schedule, 3);
        let ra = drive(&mut a, 80);
        let rb = drive(&mut b, 80);
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_episode_seeds_decorrelate() {
        let schedule = FaultSchedule::benign(1.0, 7);
        let mut a = FaultInjector::for_episode(&schedule, 3);
        let mut b = FaultInjector::for_episode(&schedule, 4);
        let ra = drive(&mut a, 120);
        let rb = drive(&mut b, 120);
        assert_ne!(ra, rb, "distinct episode seeds should differ");
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let schedule = FaultSchedule::benign(1.0, 11);
        let mut inj = FaultInjector::new(&schedule);
        let first = drive(&mut inj, 60);
        inj.reset();
        let second = drive(&mut inj, 60);
        assert_eq!(first, second);
    }

    #[test]
    fn camera_freeze_repeats_previous_frame() {
        let spec = FaultSpec::new(FaultKind::CameraFreeze, 0.0, 4, 0.0);
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 0,
            specs: vec![spec],
        });
        // Cache a frame, then force the fault active.
        inj.begin_step();
        let mut f0 = vec![1.0f32, 2.0, 3.0];
        inj.corrupt_observation(&mut f0);
        inj.remaining[0] = 3;
        let mut f1 = vec![9.0f32, 9.0, 9.0];
        inj.corrupt_observation(&mut f1);
        assert_eq!(f1, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_zeroes_and_nan_poisons() {
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 5,
            specs: vec![
                FaultSpec::new(FaultKind::CameraDropout, 0.0, 1, 0.0),
                FaultSpec::new(FaultKind::ObsNan, 0.0, 1, 1.0),
            ],
        });
        inj.remaining[0] = 1;
        let mut obs = vec![0.5f32; 8];
        inj.corrupt_observation(&mut obs);
        assert!(obs.iter().all(|v| *v == 0.0));

        inj.remaining = vec![0, 1];
        let mut obs = vec![0.5f32; 8];
        inj.corrupt_observation(&mut obs);
        assert!(obs.iter().all(|v| v.is_nan()), "magnitude 1.0 poisons all");
    }

    #[test]
    fn imu_bias_step_shifts_window() {
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 0,
            specs: vec![FaultSpec::new(FaultKind::ImuBiasStep, 0.0, 1, 0.25)],
        });
        inj.remaining[0] = 1;
        let mut w = vec![0.0f32; 16];
        inj.corrupt_imu(&mut w);
        assert!(w.iter().all(|v| (*v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn actuator_stuck_holds_first_command() {
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 0,
            specs: vec![FaultSpec::new(FaultKind::ActuatorStuck, 0.0, 3, 0.0)],
        });
        inj.remaining[0] = 3;
        let a = inj.corrupt_actuation(Actuation::new(0.4, 0.2));
        let b = inj.corrupt_actuation(Actuation::new(-0.9, 1.0));
        assert_eq!(a, Actuation::new(0.4, 0.2));
        assert_eq!(b, a, "stuck actuator ignores new commands");
        inj.remaining[0] = 0;
        let c = inj.corrupt_actuation(Actuation::new(-0.9, 1.0));
        assert_eq!(c, Actuation::new(-0.9, 1.0), "releases when inactive");
    }

    #[test]
    fn actuator_dead_zone_snaps_small_commands() {
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 0,
            specs: vec![FaultSpec::new(FaultKind::ActuatorDeadZone, 0.0, 1, 0.1)],
        });
        inj.remaining[0] = 1;
        let out = inj.corrupt_actuation(Actuation::new(0.05, -0.5));
        assert_eq!(out.steer, 0.0);
        assert_eq!(out.thrust, -0.5);
    }

    #[test]
    fn actuator_delay_serves_commands_late() {
        let mut inj = FaultInjector::new(&FaultSchedule {
            seed: 0,
            specs: vec![FaultSpec::new(FaultKind::ActuatorDelay, 0.0, 5, 2.0)],
        });
        inj.remaining[0] = 5;
        let c = |s: f64| Actuation::new(s, 0.0);
        assert_eq!(inj.corrupt_actuation(c(0.1)), c(0.0), "line filling");
        assert_eq!(inj.corrupt_actuation(c(0.2)), c(0.0), "line filling");
        assert_eq!(inj.corrupt_actuation(c(0.3)), c(0.1), "2 steps late");
        assert_eq!(inj.corrupt_actuation(c(0.4)), c(0.2));
    }

    #[test]
    fn faulted_wrappers_are_transparent_when_noop() {
        let mut world = World::new(Scenario::default());
        let mut plain = FeatureExtractor::new(FeatureConfig::default());
        let mut wrapped = FaultedFeatureExtractor::new(
            FeatureConfig::default(),
            FaultInjector::new(&FaultSchedule::none()),
        );
        for _ in 0..10 {
            assert_eq!(wrapped.observe(&world), plain.observe(&world));
            world.step(Actuation::new(0.1, 0.5));
        }

        let mut cam = FaultedCamera::new(
            SemanticCamera::default(),
            FaultInjector::new(&FaultSchedule::none()),
        );
        assert_eq!(cam.render(&world), SemanticCamera::default().render(&world));
        assert_eq!(cam.dim(), SemanticCamera::default().dim());

        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut imu = Imu::new(ImuConfig::default());
        let mut fimu = FaultedImu::new(
            ImuConfig::default(),
            FaultInjector::new(&FaultSchedule::none()),
        );
        for _ in 0..5 {
            imu.record(&world, &mut rng_a);
            fimu.record(&world, &mut rng_b);
            world.step(Actuation::new(0.0, 0.3));
        }
        assert_eq!(fimu.window(), imu.window());
    }

    #[test]
    fn benign_schedule_activates_at_full_intensity() {
        let schedule = FaultSchedule::benign(1.0, 99);
        assert!(!schedule.is_noop());
        let mut inj = FaultInjector::new(&schedule);
        let _ = drive(&mut inj, 200);
        assert!(
            inj.stats().activations > 0,
            "200 steps at full intensity should fault"
        );
        assert!(inj.stats().faulted_steps > 0);
    }
}
