//! Road model: a multi-lane freeway with shoulder barriers and an optional
//! topology feature (on-ramp merge or lane drop).
//!
//! The paper's scenario (CARLA Town 4 Road 23) is a freeway stretch with no
//! intersections or traffic lights; the relevant structure is lane geometry
//! and the hard barriers at the road edges. The road runs along the world +x
//! axis; lane 0 is the rightmost lane (most negative y).
//!
//! # Topology
//!
//! [`RoadTopology`] makes the road shape a first-class scenario axis. The
//! mainline lane centers are *globally fixed* — `lane_center_y` never depends
//! on x — and the topology instead moves the barrier faces with x:
//!
//! - [`RoadTopology::Straight`]: both edges constant; every x-aware query
//!   reduces to exactly the legacy straight-freeway formula (bit-identical).
//! - [`RoadTopology::OnRamp`]: an acceleration lane (index `num_lanes`,
//!   center below the mainline's right edge) runs from `ramp_start`, stops
//!   being drivable at `merge_start`, and its pavement tapers away over
//!   `[merge_start, merge_end]`.
//! - [`RoadTopology::LaneDrop`]: the leftmost mainline lane stops being
//!   drivable at `drop_start`; the left barrier tapers in by one lane width
//!   over `[drop_start, drop_end]`.

use crate::geometry::Vec2;
use serde::{Deserialize, Serialize};

/// Longitudinal shape of the road: where barriers sit as a function of x.
///
/// Lane y-centers are fixed for every variant; only edge positions and lane
/// drivability vary with x. `Straight` is the serde default, so scenarios
/// serialized before topology existed deserialize to the legacy freeway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RoadTopology {
    /// The legacy freeway: constant-width, all lanes drivable everywhere.
    #[default]
    Straight,
    /// An acceleration lane on the right that must merge into lane 0.
    OnRamp {
        /// x where the ramp pavement begins.
        ramp_start: f64,
        /// x where the ramp stops being drivable (merge deadline).
        merge_start: f64,
        /// x where the ramp pavement has fully tapered away.
        merge_end: f64,
    },
    /// The leftmost mainline lane ends and traffic must merge right.
    LaneDrop {
        /// x where the leftmost lane stops being drivable.
        drop_start: f64,
        /// x where the left barrier finishes tapering in one lane width.
        drop_end: f64,
    },
}

impl RoadTopology {
    /// Short stable label used in artifact names and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            RoadTopology::Straight => "straight",
            RoadTopology::OnRamp { .. } => "on_ramp",
            RoadTopology::LaneDrop { .. } => "lane_drop",
        }
    }
}

/// Static description of the freeway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Number of parallel mainline lanes (≥ 1); an on-ramp adds one more.
    pub num_lanes: usize,
    /// Width of each lane in meters.
    pub lane_width: f64,
    /// Total drivable length in meters (episodes start at x = 0).
    pub length: f64,
    /// Thickness of the edge barriers in meters (purely for rendering /
    /// collision extents).
    pub barrier_thickness: f64,
    /// Longitudinal shape (barrier placement as a function of x).
    #[serde(default)]
    pub topology: RoadTopology,
}

impl Default for Road {
    /// Three 3.5 m lanes over 1.5 km — the Town-4-like freeway used by every
    /// scenario in this crate.
    fn default() -> Self {
        Road {
            num_lanes: 3,
            lane_width: 3.5,
            length: 1500.0,
            barrier_thickness: 0.5,
            topology: RoadTopology::Straight,
        }
    }
}

impl Road {
    /// Creates a road, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_lanes == 0` or any dimension is non-positive.
    pub fn new(num_lanes: usize, lane_width: f64, length: f64) -> Self {
        assert!(num_lanes > 0, "road must have at least one lane");
        assert!(
            lane_width > 0.0 && length > 0.0,
            "lane width and length must be positive"
        );
        Road {
            num_lanes,
            lane_width,
            length,
            barrier_thickness: 0.5,
            topology: RoadTopology::Straight,
        }
    }

    /// Creates a freeway with an on-ramp acceleration lane merging into
    /// lane 0.
    ///
    /// # Panics
    ///
    /// Panics on invalid basic dimensions or unless
    /// `0 ≤ ramp_start < merge_start < merge_end ≤ length`.
    pub fn on_ramp(
        num_lanes: usize,
        lane_width: f64,
        length: f64,
        ramp_start: f64,
        merge_start: f64,
        merge_end: f64,
    ) -> Self {
        let mut road = Road::new(num_lanes, lane_width, length);
        assert!(
            0.0 <= ramp_start && ramp_start < merge_start && merge_start < merge_end,
            "need ramp_start < merge_start < merge_end"
        );
        assert!(merge_end <= length, "merge must finish on the road");
        road.topology = RoadTopology::OnRamp {
            ramp_start,
            merge_start,
            merge_end,
        };
        road
    }

    /// Creates a freeway whose leftmost lane ends at `drop_start`.
    ///
    /// # Panics
    ///
    /// Panics on invalid basic dimensions, fewer than two lanes, or unless
    /// `0 < drop_start < drop_end ≤ length`.
    pub fn lane_drop(
        num_lanes: usize,
        lane_width: f64,
        length: f64,
        drop_start: f64,
        drop_end: f64,
    ) -> Self {
        assert!(num_lanes >= 2, "lane drop needs at least two lanes");
        let mut road = Road::new(num_lanes, lane_width, length);
        assert!(
            0.0 < drop_start && drop_start < drop_end && drop_end <= length,
            "need 0 < drop_start < drop_end <= length"
        );
        road.topology = RoadTopology::LaneDrop {
            drop_start,
            drop_end,
        };
        road
    }

    /// Total width of the drivable surface.
    pub fn width(&self) -> f64 {
        self.num_lanes as f64 * self.lane_width
    }

    /// y coordinate of the right road edge (barrier inner face).
    pub fn right_edge_y(&self) -> f64 {
        -self.width() / 2.0
    }

    /// y coordinate of the left road edge (barrier inner face).
    pub fn left_edge_y(&self) -> f64 {
        self.width() / 2.0
    }

    /// Total number of addressable lanes: mainline lanes plus the on-ramp
    /// acceleration lane (index `num_lanes`) when present.
    pub fn total_lanes(&self) -> usize {
        self.num_lanes + usize::from(self.ramp_lane().is_some())
    }

    /// Index of the on-ramp acceleration lane, if this road has one.
    pub fn ramp_lane(&self) -> Option<usize> {
        match self.topology {
            RoadTopology::OnRamp { .. } => Some(self.num_lanes),
            _ => None,
        }
    }

    /// y coordinate of the centerline of `lane` (0 = rightmost mainline
    /// lane; `num_lanes` = on-ramp lane when present).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= total_lanes()`.
    pub fn lane_center_y(&self, lane: usize) -> f64 {
        assert!(lane < self.total_lanes(), "lane {lane} out of range");
        if lane == self.num_lanes {
            // Ramp lane: one lane width below the mainline's right edge.
            self.right_edge_y() - 0.5 * self.lane_width
        } else {
            self.right_edge_y() + (lane as f64 + 0.5) * self.lane_width
        }
    }

    /// Index of the lane containing lateral position `y`, clamped to the
    /// nearest lane when `y` is off the road.
    pub fn lane_of(&self, y: f64) -> usize {
        let rel = (y - self.right_edge_y()) / self.lane_width;
        (rel.floor().max(0.0) as usize).min(self.num_lanes - 1)
    }

    /// Signed lateral offset of `y` from the center of its (clamped) lane,
    /// positive towards the left.
    pub fn lane_offset(&self, y: f64) -> f64 {
        y - self.lane_center_y(self.lane_of(y))
    }

    /// Barrier inner faces at longitudinal position `x`, as
    /// `(right_edge, left_edge)` y coordinates.
    ///
    /// For [`RoadTopology::Straight`] this is exactly
    /// `(right_edge_y(), left_edge_y())` — same expressions, bit-identical.
    pub fn edge_ys_at(&self, x: f64) -> (f64, f64) {
        match self.topology {
            RoadTopology::Straight => (self.right_edge_y(), self.left_edge_y()),
            RoadTopology::OnRamp {
                ramp_start,
                merge_start,
                merge_end,
            } => {
                let right = if x < ramp_start || x > merge_end {
                    self.right_edge_y()
                } else if x <= merge_start {
                    self.right_edge_y() - self.lane_width
                } else {
                    // Closing taper: the ramp pocket narrows linearly to
                    // nothing over [merge_start, merge_end].
                    let t = (x - merge_start) / (merge_end - merge_start);
                    self.right_edge_y() - self.lane_width * (1.0 - t)
                };
                (right, self.left_edge_y())
            }
            RoadTopology::LaneDrop {
                drop_start,
                drop_end,
            } => {
                let left = if x < drop_start {
                    self.left_edge_y()
                } else if x > drop_end {
                    self.left_edge_y() - self.lane_width
                } else {
                    let t = (x - drop_start) / (drop_end - drop_start);
                    self.left_edge_y() - self.lane_width * t
                };
                (self.right_edge_y(), left)
            }
        }
    }

    /// Topology-aware lane index at `(x, y)`: reports the ramp lane for
    /// points below the mainline's right edge while ramp pavement exists
    /// there, and the clamped mainline lane otherwise.
    pub fn lane_index_at(&self, x: f64, y: f64) -> usize {
        if let RoadTopology::OnRamp {
            ramp_start,
            merge_end,
            ..
        } = self.topology
        {
            if y <= self.right_edge_y() && x >= ramp_start && x <= merge_end {
                return self.num_lanes;
            }
        }
        self.lane_of(y)
    }

    /// Whether `lane` is fully drivable at longitudinal position `x`.
    ///
    /// A closing lane stops being "open" at its merge deadline
    /// ([`Road::lane_end_x`]) even though pavement tapers on for a while.
    pub fn lane_open_at(&self, lane: usize, x: f64) -> bool {
        match self.topology {
            RoadTopology::Straight => lane < self.num_lanes,
            RoadTopology::OnRamp {
                ramp_start,
                merge_start,
                ..
            } => {
                if lane == self.num_lanes {
                    x >= ramp_start && x < merge_start
                } else {
                    lane < self.num_lanes
                }
            }
            RoadTopology::LaneDrop { drop_start, .. } => {
                if lane + 1 == self.num_lanes {
                    x < drop_start
                } else {
                    lane < self.num_lanes
                }
            }
        }
    }

    /// x beyond which `lane` is no longer drivable, or `None` for lanes
    /// that run the whole road. Planners start merging ahead of this.
    pub fn lane_end_x(&self, lane: usize) -> Option<f64> {
        match self.topology {
            RoadTopology::Straight => None,
            RoadTopology::OnRamp { merge_start, .. } => {
                (lane == self.num_lanes).then_some(merge_start)
            }
            RoadTopology::LaneDrop { drop_start, .. } => {
                (lane + 1 == self.num_lanes).then_some(drop_start)
            }
        }
    }

    /// The adjacent lane traffic in an ending `lane` must merge into;
    /// returns `lane` itself for lanes that never end.
    pub fn merge_target(&self, lane: usize) -> usize {
        match self.lane_end_x(lane) {
            Some(_) if lane == self.num_lanes => 0,
            Some(_) => lane - 1,
            None => lane,
        }
    }

    /// Whether the point is on the drivable surface.
    pub fn on_road(&self, p: Vec2) -> bool {
        let (right, left) = self.edge_ys_at(p.x);
        p.y > right && p.y < left && p.x >= 0.0 && p.x <= self.length
    }

    /// Signed distance from `y` to the nearest barrier face at the road's
    /// nominal (straight) cross-section; positive while on the road,
    /// negative once past the edge.
    pub fn distance_to_nearest_edge(&self, y: f64) -> f64 {
        (self.left_edge_y() - y).min(y - self.right_edge_y())
    }

    /// Signed distance from `(x, y)` to the nearest barrier face at that
    /// longitudinal position.
    pub fn distance_to_nearest_edge_at(&self, x: f64, y: f64) -> f64 {
        let (right, left) = self.edge_ys_at(x);
        (left - y).min(y - right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_road_dimensions() {
        let r = Road::default();
        assert_eq!(r.num_lanes, 3);
        assert!((r.width() - 10.5).abs() < 1e-12);
        assert!((r.left_edge_y() - 5.25).abs() < 1e-12);
        assert!((r.right_edge_y() + 5.25).abs() < 1e-12);
    }

    #[test]
    fn lane_centers_are_evenly_spaced() {
        let r = Road::default();
        let c0 = r.lane_center_y(0);
        let c1 = r.lane_center_y(1);
        let c2 = r.lane_center_y(2);
        assert!((c1 - c0 - r.lane_width).abs() < 1e-12);
        assert!((c2 - c1 - r.lane_width).abs() < 1e-12);
        // Middle lane of 3 is centered on y = 0.
        assert!(c1.abs() < 1e-12);
    }

    #[test]
    fn lane_of_round_trips_lane_centers() {
        let r = Road::default();
        for lane in 0..r.num_lanes {
            assert_eq!(r.lane_of(r.lane_center_y(lane)), lane);
        }
    }

    #[test]
    fn lane_of_clamps_off_road() {
        let r = Road::default();
        assert_eq!(r.lane_of(-100.0), 0);
        assert_eq!(r.lane_of(100.0), r.num_lanes - 1);
    }

    #[test]
    fn lane_offset_zero_at_center() {
        let r = Road::default();
        assert!(r.lane_offset(r.lane_center_y(1)).abs() < 1e-12);
        assert!((r.lane_offset(r.lane_center_y(1) + 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn on_road_respects_edges() {
        let r = Road::default();
        assert!(r.on_road(Vec2::new(10.0, 0.0)));
        assert!(!r.on_road(Vec2::new(10.0, 5.3)));
        assert!(!r.on_road(Vec2::new(-1.0, 0.0)));
        assert!(!r.on_road(Vec2::new(r.length + 1.0, 0.0)));
    }

    #[test]
    fn edge_distance_sign() {
        let r = Road::default();
        assert!(r.distance_to_nearest_edge(0.0) > 5.0);
        assert!(r.distance_to_nearest_edge(5.25) <= 1e-12);
        assert!(r.distance_to_nearest_edge(6.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_road_rejected() {
        let _ = Road::new(0, 3.5, 100.0);
    }

    #[test]
    fn straight_x_queries_match_legacy_formulas() {
        let r = Road::default();
        for x in [-10.0, 0.0, 500.0, r.length, r.length + 10.0] {
            let (right, left) = r.edge_ys_at(x);
            assert_eq!(right, r.right_edge_y());
            assert_eq!(left, r.left_edge_y());
            assert_eq!(
                r.distance_to_nearest_edge_at(x, 1.3),
                r.distance_to_nearest_edge(1.3)
            );
            for y in [-8.0, -2.0, 0.0, 2.0, 8.0] {
                assert_eq!(r.lane_index_at(x, y), r.lane_of(y));
            }
        }
        assert_eq!(r.total_lanes(), r.num_lanes);
        assert_eq!(r.ramp_lane(), None);
        assert_eq!(r.lane_end_x(2), None);
        assert_eq!(r.merge_target(2), 2);
        assert!(r.lane_open_at(0, 0.0) && r.lane_open_at(2, 1400.0));
        assert!(!r.lane_open_at(3, 0.0));
    }

    #[test]
    fn on_ramp_geometry() {
        let r = Road::on_ramp(3, 3.5, 1500.0, 0.0, 220.0, 300.0);
        assert_eq!(r.total_lanes(), 4);
        assert_eq!(r.ramp_lane(), Some(3));
        // Ramp lane center sits one half lane below the mainline right edge.
        assert!((r.lane_center_y(3) - (r.right_edge_y() - 1.75)).abs() < 1e-12);
        // Edges: full pocket before merge_start, tapering to nothing after.
        assert!((r.edge_ys_at(100.0).0 - (r.right_edge_y() - 3.5)).abs() < 1e-12);
        assert!((r.edge_ys_at(260.0).0 - (r.right_edge_y() - 1.75)).abs() < 1e-12);
        assert_eq!(r.edge_ys_at(300.1).0, r.right_edge_y());
        // Drivability and merge planning.
        assert!(r.lane_open_at(3, 100.0));
        assert!(!r.lane_open_at(3, 220.0));
        assert_eq!(r.lane_end_x(3), Some(220.0));
        assert_eq!(r.merge_target(3), 0);
        // Points on the ramp pavement are on-road and classified as lane 3.
        let ramp_y = r.lane_center_y(3);
        assert!(r.on_road(Vec2::new(100.0, ramp_y)));
        assert!(!r.on_road(Vec2::new(400.0, ramp_y)));
        assert_eq!(r.lane_index_at(100.0, ramp_y), 3);
        assert_eq!(r.lane_index_at(400.0, ramp_y), 0);
    }

    #[test]
    fn lane_drop_geometry() {
        let r = Road::lane_drop(3, 3.5, 1500.0, 400.0, 480.0);
        assert_eq!(r.total_lanes(), 3);
        // Left edge tapers in one lane width across the drop.
        assert_eq!(r.edge_ys_at(100.0).1, r.left_edge_y());
        assert!((r.edge_ys_at(440.0).1 - (r.left_edge_y() - 1.75)).abs() < 1e-12);
        assert!((r.edge_ys_at(600.0).1 - (r.left_edge_y() - 3.5)).abs() < 1e-12);
        // Lane 2 ends at the drop; lanes 0/1 run through.
        assert!(r.lane_open_at(2, 399.0) && !r.lane_open_at(2, 400.0));
        assert!(r.lane_open_at(1, 1000.0) && r.lane_open_at(0, 1000.0));
        assert_eq!(r.lane_end_x(2), Some(400.0));
        assert_eq!(r.merge_target(2), 1);
        // Lane 2's center becomes off-road once the taper crosses it.
        let y2 = r.lane_center_y(2);
        assert!(r.on_road(Vec2::new(100.0, y2)));
        assert!(!r.on_road(Vec2::new(600.0, y2)));
    }

    #[test]
    fn topology_defaults_to_straight() {
        assert_eq!(RoadTopology::default(), RoadTopology::Straight);
        assert_eq!(Road::new(3, 3.5, 1500.0).topology, RoadTopology::Straight);
        assert_eq!(RoadTopology::Straight.label(), "straight");
        assert_eq!(
            Road::on_ramp(3, 3.5, 1500.0, 0.0, 220.0, 300.0)
                .topology
                .label(),
            "on_ramp"
        );
        assert_eq!(
            Road::lane_drop(3, 3.5, 1500.0, 400.0, 480.0)
                .topology
                .label(),
            "lane_drop"
        );
    }

    #[test]
    #[should_panic(expected = "merge must finish")]
    fn on_ramp_merge_past_end_rejected() {
        let _ = Road::on_ramp(3, 3.5, 300.0, 0.0, 250.0, 400.0);
    }

    #[test]
    #[should_panic(expected = "at least two lanes")]
    fn single_lane_drop_rejected() {
        let _ = Road::lane_drop(1, 3.5, 1500.0, 400.0, 480.0);
    }
}
