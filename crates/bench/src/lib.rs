#![warn(missing_docs)]

//! # repro-bench — experiment harnesses for every figure of the paper
//!
//! Each module of [`experiments`] regenerates one figure (or the baseline /
//! ablations) from the trained [`attack_core::pipeline::Artifacts`]; the
//! binaries in `src/bin/` run them at the paper's scale and print the
//! tables, while the `figures` bench target runs the same code at smoke
//! scale under `cargo bench`. Criterion micro-benches of the substrate
//! live in the `perf` bench target.

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod perf;
pub mod resilience;

pub use harness::{attacked_records, build_agent, AgentKind, Scale};
pub use perf::{PerfReport, PerfSample, ThroughputProbe};
pub use resilience::{run_cell, CellOutcome, ResilienceConfig};
