//! The end-of-run serving report.

use crate::ladder::Transition;
use crate::request::Counters;
use drive_metrics::histo::LatencyHistogram;

/// Everything a serving run produces: reconciled counters, the latency
/// distribution of answered requests, the ladder's transition log, and
/// resilience totals. [`ServeReport::render`] is all-integer text, so a
/// fixed-seed simulator run reproduces it byte for byte.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Request accounting (reconciled at drain).
    pub counters: Counters,
    /// Enqueue-to-answer latency of served + degraded requests, µs.
    pub latency: LatencyHistogram,
    /// Ladder movements in order.
    pub transitions: Vec<Transition>,
    /// Worker respawns after kills/panics.
    pub respawns: u32,
    /// Worker stalls endured.
    pub stalls: u32,
    /// Observation values corrupted mid-flight.
    pub corrupted_values: u64,
    /// Observation frames that reached inference with non-finite values.
    pub nonfinite_frames: u64,
    /// Inference batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub max_batch: usize,
}

impl ServeReport {
    /// Deterministic multi-line rendering (integers only).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("counters: {}\n", self.counters));
        out.push_str(&format!("latency_us: {}\n", self.latency));
        out.push_str(&format!(
            "resilience: respawns={} stalls={} corrupted_values={} nonfinite_frames={} \
             batches={} max_batch={}\n",
            self.respawns,
            self.stalls,
            self.corrupted_values,
            self.nonfinite_frames,
            self.batches,
            self.max_batch
        ));
        out.push_str(&format!("transitions: {}\n", self.transitions.len()));
        for t in &self.transitions {
            out.push_str(&format!("  {t}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{Rung, TransitionReason};

    #[test]
    fn render_is_deterministic_text() {
        let mut latency = LatencyHistogram::new();
        latency.record(1_000);
        latency.record(2_000);
        let report = ServeReport {
            counters: Counters {
                submitted: 2,
                served: 2,
                ..Counters::default()
            },
            latency,
            transitions: vec![Transition {
                at_us: 500,
                from: Rung::Full,
                to: Rung::NoDetector,
                reason: TransitionReason::QueuePressure,
            }],
            respawns: 1,
            stalls: 0,
            corrupted_values: 0,
            nonfinite_frames: 0,
            batches: 2,
            max_batch: 1,
        };
        let a = report.render();
        assert_eq!(a, report.clone().render());
        assert!(a.contains("submitted=2 served=2"), "{a}");
        assert!(a.contains("full -> no-detector (queue-pressure)"), "{a}");
    }
}
