//! Calibration sweep: the geometric oracle attacker vs the modular
//! pipeline across attack budgets. Prints the side-collision success rate,
//! collision count, and mean nominal reward per budget — the quickest way
//! to see the agent's tolerance threshold after tuning.
//!
//! ```sh
//! cargo run --release -p attack-core --example oracle_sweep
//! ```

use attack_core::prelude::*;
use drive_agents::prelude::*;
use drive_sim::prelude::*;

fn main() {
    let scenario = Scenario::default();
    let adv = AdvReward::default();
    println!("budget  success  any_coll  mean_nominal  mean_effort");
    for eps in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2] {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let recs = run_attacked_episodes(
            &mut agent,
            |_| (eps > 0.0).then(|| OracleAttacker::new(AttackBudget::new(eps))),
            &adv,
            &scenario,
            20,
            300,
        );
        let s = recs.iter().filter(|r| r.side_collision()).count();
        let c = recs.iter().filter(|r| r.collision.is_some()).count();
        let nom: f64 = recs.iter().map(|r| r.nominal_return).sum::<f64>() / 20.0;
        let eff: f64 = recs.iter().map(|r| r.attack_effort()).sum::<f64>() / 20.0;
        println!("{eps:<7.2} {s:>2}/20    {c:>2}/20    {nom:>8.1}     {eff:.2}");
    }
}
