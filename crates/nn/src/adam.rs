//! Adam optimizer operating over `visit_params`-style parameter slices.

use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Optional global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 3e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: 10.0,
        }
    }
}

/// Adam state for one network.
///
/// The moment buffers are keyed by visit order, so the same optimizer must
/// always be used with the same network (the slice sizes are checked).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Adam {
    /// Configuration.
    pub config: AdamConfig,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an optimizer with the given config and empty state.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Convenience constructor with only the learning rate changed.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// Number of update steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The full optimizer state `(t, m, v)` — step counter plus first/second
    /// moment buffers in visit order — for checkpointing.
    pub fn state(&self) -> (u64, &[Vec<f32>], &[Vec<f32>]) {
        (self.t, &self.m, &self.v)
    }

    /// Rebuilds an optimizer from a state captured with [`Adam::state`].
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` disagree in shape (a malformed checkpoint must
    /// not silently train with mismatched moments).
    pub fn from_state(config: AdamConfig, t: u64, m: Vec<Vec<f32>>, v: Vec<Vec<f32>>) -> Self {
        assert_eq!(
            m.len(),
            v.len(),
            "Adam moment buffers differ in slice count"
        );
        for (i, (ms, vs)) in m.iter().zip(&v).enumerate() {
            assert_eq!(
                ms.len(),
                vs.len(),
                "Adam moment slice {i} differs in length"
            );
        }
        Adam { config, t, m, v }
    }

    /// Applies one Adam update to a network exposing
    /// `visit_params(&mut FnMut(&mut [f32], &mut [f32]))`.
    ///
    /// Call with the network's accumulated gradients; gradients are *not*
    /// cleared (callers decide when to `zero_grad`).
    ///
    /// # Panics
    ///
    /// Panics if the parameter layout changed between calls.
    pub fn step(&mut self, visit: impl FnOnce(&mut dyn FnMut(&mut [f32], &mut [f32]))) {
        self.t += 1;
        let t = self.t as f32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);

        // Optional global grad-norm clipping needs two passes; approximate
        // with per-slice clipping to keep the single-visit API. Per-slice is
        // standard practice for small networks and keeps things simple.
        let mut idx = 0usize;
        let m = &mut self.m;
        let v = &mut self.v;
        visit(&mut |params: &mut [f32], grads: &mut [f32]| {
            if m.len() == idx {
                m.push(vec![0.0; params.len()]);
                v.push(vec![0.0; params.len()]);
            }
            assert_eq!(
                m[idx].len(),
                params.len(),
                "parameter layout changed between Adam steps"
            );
            if c.grad_clip > 0.0 {
                let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
                if norm > c.grad_clip {
                    let scale = c.grad_clip / norm;
                    for g in grads.iter_mut() {
                        *g *= scale;
                    }
                }
            }
            let (ms, vs) = (&mut m[idx], &mut v[idx]);
            for i in 0..params.len() {
                let g = grads[i];
                ms[i] = c.beta1 * ms[i] + (1.0 - c.beta1) * g;
                vs[i] = c.beta2 * vs[i] + (1.0 - c.beta2) * g * g;
                let mhat = ms[i] / bias1;
                let vhat = vs[i] / bias2;
                params[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mat::Mat;
    use crate::mlp::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimizes_quadratic() {
        // Single "parameter vector" [x, y]; loss = x^2 + (y - 3)^2.
        let mut params = vec![5.0f32, -4.0];
        let mut adam = Adam::with_lr(0.05);
        for _ in 0..2000 {
            let mut grads = vec![2.0 * params[0], 2.0 * (params[1] - 3.0)];
            adam.step(|f| f(&mut params, &mut grads));
        }
        assert!(params[0].abs() < 1e-2, "x = {}", params[0]);
        assert!((params[1] - 3.0).abs() < 1e-2, "y = {}", params[1]);
    }

    #[test]
    fn trains_mlp_regression() {
        // Fit y = 2*x0 - x1 with a small MLP.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(
            &[2, 16, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut adam = Adam::with_lr(1e-2);
        let mut final_loss = f32::INFINITY;
        for _ in 0..500 {
            let xs: Vec<f32> = (0..16)
                .flat_map(|_| {
                    let a: f32 = rng.gen_range(-1.0..1.0);
                    let b: f32 = rng.gen_range(-1.0..1.0);
                    [a, b]
                })
                .collect();
            let x = Mat::from_vec(16, 2, xs);
            let target: Vec<f32> = (0..16).map(|r| 2.0 * x.get(r, 0) - x.get(r, 1)).collect();
            let cache = net.forward_cached(&x);
            let pred = cache.output();
            let mut grad = Mat::zeros(16, 1);
            let mut loss = 0.0;
            #[allow(clippy::needless_range_loop)]
            for r in 0..16 {
                let err = pred.get(r, 0) - target[r];
                loss += err * err / 16.0;
                grad.set(r, 0, 2.0 * err / 16.0);
            }
            final_loss = loss;
            net.zero_grad();
            net.backward(&cache, &grad);
            adam.step(|f| net.visit_params(f));
        }
        assert!(final_loss < 0.01, "final loss {final_loss}");
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut params = vec![0.0f32];
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            grad_clip: 1.0,
            ..AdamConfig::default()
        });
        let mut grads = vec![1e6f32];
        adam.step(|f| f(&mut params, &mut grads));
        // After clipping the first step is at most ~lr in magnitude.
        assert!(params[0].abs() <= 0.11, "step {}", params[0]);
    }

    #[test]
    fn step_counter_increments() {
        let mut adam = Adam::with_lr(0.01);
        let mut p = vec![1.0f32];
        let mut g = vec![1.0f32];
        assert_eq!(adam.steps(), 0);
        adam.step(|f| f(&mut p, &mut g));
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn state_round_trip_continues_identically() {
        // Two optimizers over the same parameters: one runs straight
        // through, the other is checkpointed and rebuilt mid-stream. The
        // trajectories must match bit for bit.
        let mut pa = vec![5.0f32, -4.0];
        let mut pb = pa.clone();
        let mut a = Adam::with_lr(0.05);
        let mut b = Adam::with_lr(0.05);
        let grad = |p: &[f32]| vec![2.0 * p[0], 2.0 * (p[1] - 3.0)];
        for _ in 0..25 {
            let mut ga = grad(&pa);
            a.step(|f| f(&mut pa, &mut ga));
            let mut gb = grad(&pb);
            b.step(|f| f(&mut pb, &mut gb));
        }
        let (t, m, v) = b.state();
        let mut b = Adam::from_state(b.config, t, m.to_vec(), v.to_vec());
        for _ in 0..25 {
            let mut ga = grad(&pa);
            a.step(|f| f(&mut pa, &mut ga));
            let mut gb = grad(&pb);
            b.step(|f| f(&mut pb, &mut gb));
        }
        assert_eq!(pa, pb);
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    #[should_panic(expected = "differ in slice count")]
    fn from_state_rejects_mismatched_moments() {
        let _ = Adam::from_state(AdamConfig::default(), 1, vec![vec![0.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "layout changed")]
    fn layout_change_panics() {
        let mut adam = Adam::with_lr(0.01);
        let mut p = vec![1.0f32];
        let mut g = vec![1.0f32];
        adam.step(|f| f(&mut p, &mut g));
        let mut p2 = vec![1.0f32, 2.0];
        let mut g2 = vec![1.0f32, 2.0];
        adam.step(|f| f(&mut p2, &mut g2));
    }

    use rand::Rng;
}
