//! A *state-space* attack baseline, for contrast with the paper's
//! action-space attack.
//!
//! Section II positions action-space attacks against the better-studied
//! state-space attacks (Lin et al. 2017, Gleave et al. 2020) that tamper
//! with the agent's *input*. This module implements the classic
//! gradient-sign variant: during critical moments, the victim's observation
//! vector is perturbed inside an L∞ ball to push the policy's steering
//! output towards the nearest NPC (FGSM for one step, PGD for several).
//!
//! Note the much stronger threat model: the attacker needs **white-box
//! access to the policy** (we differentiate through it) **and write access
//! to the sensor pipeline** — exactly the requirements the paper's
//! black-box action-space attack avoids. The ablation harness quantifies
//! what that extra access buys.

use crate::adv_reward::{AdvReward, AdvRewardConfig};
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::mat::Mat;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::vehicle::Actuation;
use drive_sim::world::{RelativeGeometry, World};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the gradient-based state attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateAttackConfig {
    /// L∞ radius of the observation perturbation.
    pub epsilon: f32,
    /// PGD iterations (1 = FGSM).
    pub steps: usize,
    /// Step size per iteration.
    pub step_size: f32,
}

impl Default for StateAttackConfig {
    fn default() -> Self {
        StateAttackConfig {
            epsilon: 0.1,
            steps: 3,
            step_size: 0.05,
        }
    }
}

/// Computes a PGD perturbation of `obs` that pushes the policy's steering
/// output in direction `sign` (+1 = left). Returns the perturbed
/// observation.
pub fn perturb_observation(
    policy: &mut GaussianPolicy,
    obs: &[f32],
    sign: f32,
    config: &StateAttackConfig,
) -> Vec<f32> {
    let mut adv = obs.to_vec();
    for _ in 0..config.steps.max(1) {
        let m = Mat::from_row(&adv);
        // dL/da with L = sign * steer: gradient 'sign' on the steering
        // channel, 0 on thrust.
        let grad_out = Mat::from_row(&[sign, 0.0]);
        policy.trunk_mut().zero_grad();
        let grad_obs = policy.backward_mean(&m, &grad_out);
        policy.trunk_mut().zero_grad();
        for (v, (&o, &g)) in adv.iter_mut().zip(obs.iter().zip(grad_obs.row(0))) {
            let stepped = *v + config.step_size * g.signum();
            *v = stepped.clamp(o - config.epsilon, o + config.epsilon);
        }
    }
    adv
}

/// A victim agent whose observations are adversarially perturbed — the
/// state-space analogue of the runner's steering attackers.
pub struct StateAttackedAgent {
    policy: GaussianPolicy,
    extractor: FeatureExtractor,
    config: StateAttackConfig,
    adv: AdvReward,
    rng: StdRng,
    /// Steps on which the attack was active (for effort-style reporting).
    active_steps: usize,
    total_steps: usize,
}

impl std::fmt::Debug for StateAttackedAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateAttackedAgent")
            .field("epsilon", &self.config.epsilon)
            .field("active_steps", &self.active_steps)
            .finish()
    }
}

impl StateAttackedAgent {
    /// Wraps the victim policy with an in-pipeline observation attacker.
    pub fn new(
        policy: GaussianPolicy,
        features: FeatureConfig,
        config: StateAttackConfig,
        seed: u64,
    ) -> Self {
        StateAttackedAgent {
            policy,
            extractor: FeatureExtractor::new(features),
            config,
            adv: AdvReward::new(AdvRewardConfig::default()),
            rng: StdRng::seed_from_u64(seed),
            active_steps: 0,
            total_steps: 0,
        }
    }

    /// Fraction of steps on which the observation was perturbed.
    pub fn duty_cycle(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.active_steps as f64 / self.total_steps as f64
        }
    }
}

impl Agent for StateAttackedAgent {
    fn reset(&mut self, _world: &World) {
        self.extractor.reset();
        self.active_steps = 0;
        self.total_steps = 0;
    }

    fn act(&mut self, world: &World) -> Actuation {
        let obs = self.extractor.observe(world);
        self.total_steps += 1;
        let obs = if self.adv.critical_moment(world) {
            self.active_steps += 1;
            // Push steering towards the nearest NPC's side.
            let sign = world
                .nearest_npc()
                .map(|(_, npc)| {
                    let rel = RelativeGeometry::between(world.ego(), npc);
                    if rel.e2n.y >= 0.0 {
                        1.0f32
                    } else {
                        -1.0
                    }
                })
                .unwrap_or(0.0);
            perturb_observation(&mut self.policy, &obs, sign, &self.config)
        } else {
            obs
        };
        let a = self.policy.act(&obs, &mut self.rng, true);
        Actuation::new(a[0] as f64, a[1] as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::{NpcSpawn, Scenario};

    fn policy(dim: usize) -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(3);
        GaussianPolicy::new(dim, &[16], 2, &mut rng)
    }

    #[test]
    fn perturbation_respects_linf_ball() {
        let mut p = policy(8);
        let obs = vec![0.1f32; 8];
        let config = StateAttackConfig {
            epsilon: 0.05,
            steps: 5,
            step_size: 0.04,
        };
        let adv = perturb_observation(&mut p, &obs, 1.0, &config);
        for (a, o) in adv.iter().zip(&obs) {
            assert!((a - o).abs() <= config.epsilon + 1e-6);
        }
        assert_ne!(adv, obs, "non-degenerate gradient must move the obs");
    }

    #[test]
    fn perturbation_moves_steering_in_requested_direction() {
        let mut p = policy(8);
        let obs = vec![0.2f32; 8];
        let mut rng = StdRng::seed_from_u64(0);
        let base = p.act(&obs, &mut rng, true)[0];
        let config = StateAttackConfig {
            epsilon: 0.3,
            steps: 8,
            step_size: 0.08,
        };
        let up = perturb_observation(&mut p, &obs, 1.0, &config);
        let down = perturb_observation(&mut p, &obs, -1.0, &config);
        let steer_up = p.act(&up, &mut rng, true)[0];
        let steer_down = p.act(&down, &mut rng, true)[0];
        assert!(steer_up > base, "{steer_up} vs {base}");
        assert!(steer_down < base, "{steer_down} vs {base}");
    }

    #[test]
    fn attacked_agent_runs_episodes_and_tracks_duty_cycle() {
        let features = FeatureConfig::default();
        let dim = features.observation_dim();
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 2,
                x: 10.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let mut agent =
            StateAttackedAgent::new(policy(dim), features, StateAttackConfig::default(), 1);
        let rec = drive_agents::runner::run_episode(&mut agent, &s, 0, None, |_, _, _| {});
        assert!(rec.steps > 0);
        // The NPC starts nearly alongside: some steps must be critical.
        assert!(agent.duty_cycle() > 0.0);
        assert!(agent.duty_cycle() <= 1.0);
    }
}
