//! Standalone SVG renderings of the paper's figure types: the
//! deviation-vs-effort scatter (Fig. 5 / Fig. 7), grouped box plots
//! (Fig. 4 / Fig. 6), and windowed success-rate bars (Fig. 8).
//!
//! Colors follow a validated categorical palette (fixed slot order, CVD
//! separation and lightness band checked); text uses ink tokens, never the
//! series hue; markers are ≥ 8 px; grid lines are recessive. Series beyond
//! the palette length are not assigned new hues — callers should fold them.
//! Every figure also exists as a printed table and a CSV export, which is
//! the table-view relief for the lower-contrast palette slots.

use crate::agg::BoxStats;
use crate::episode::ScatterPoint;
use std::fmt::Write as _;

/// Validated categorical palette (light mode), fixed slot order.
pub const SERIES_COLORS: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];
/// Chart surface color.
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink for titles and values.
pub const INK_PRIMARY: &str = "#0b0b0b";
/// Secondary ink for axis labels and legends.
pub const INK_SECONDARY: &str = "#52514e";
/// Recessive grid-line color.
pub const GRID: &str = "#e7e6e3";

const W: f64 = 760.0;
const H: f64 = 440.0;
const ML: f64 = 64.0; // left margin
const MR: f64 = 24.0;
const MT: f64 = 54.0;
const MB: f64 = 56.0;

struct Frame {
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
}

impl Frame {
    fn x(&self, v: f64) -> f64 {
        ML + (v - self.x_min) / (self.x_max - self.x_min).max(1e-12) * (W - ML - MR)
    }
    fn y(&self, v: f64) -> f64 {
        H - MB - (v - self.y_min) / (self.y_max - self.y_min).max(1e-12) * (H - MT - MB)
    }
}

fn header(out: &mut String, title: &str) {
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="system-ui, sans-serif">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{W}" height="{H}" fill="{SURFACE}"/><text x="{ML}" y="28" font-size="15" font-weight="600" fill="{INK_PRIMARY}">{}</text>"#,
        xml_escape(title)
    );
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// "Nice" rounded tick step for a span.
fn tick_step(span: f64) -> f64 {
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    };
    step * mag
}

fn axes(out: &mut String, f: &Frame, x_label: &str, y_label: &str) {
    // Grid + ticks.
    let xs = tick_step(f.x_max - f.x_min);
    let mut v = (f.x_min / xs).ceil() * xs;
    while v <= f.x_max + 1e-9 {
        let x = f.x(v);
        let _ = write!(
            out,
            r#"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="{GRID}" stroke-width="1"/><text x="{x:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
            H - MB,
            H - MB + 16.0,
            fmt_tick(v)
        );
        v += xs;
    }
    let ys = tick_step(f.y_max - f.y_min);
    let mut v = (f.y_min / ys).ceil() * ys;
    while v <= f.y_max + 1e-9 {
        let y = f.y(v);
        let _ = write!(
            out,
            r#"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/><text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="end">{}</text>"#,
            W - MR,
            ML - 8.0,
            y + 4.0,
            fmt_tick(v)
        );
        v += ys;
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 12.0,
        xml_escape(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml_escape(y_label)
    );
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a Fig. 5 / Fig. 7 style scatter: failed attempts as outlined
/// circles (slot 1), successful side collisions as filled triangles
/// (slot 6) — identity is carried by shape as well as hue.
pub fn scatter_svg(title: &str, points: &[ScatterPoint], x_label: &str, y_label: &str) -> String {
    let x_max = points
        .iter()
        .map(|p| p.effort)
        .fold(0.4f64, f64::max)
        .max(0.1)
        * 1.08;
    let y_max = points
        .iter()
        .map(|p| p.deviation_rmse)
        .fold(0.1f64, f64::max)
        * 1.1;
    let f = Frame {
        x_min: 0.0,
        x_max,
        y_min: 0.0,
        y_max,
    };
    let mut out = String::new();
    header(&mut out, title);
    axes(&mut out, &f, x_label, y_label);
    let blue = SERIES_COLORS[0];
    let red = SERIES_COLORS[5];
    for p in points {
        let (x, y) = (f.x(p.effort), f.y(p.deviation_rmse));
        if p.success {
            // 10px triangle, filled, with a 2px surface ring for overlaps.
            let _ = write!(
                out,
                r#"<path d="M{:.1} {:.1} L{:.1} {:.1} L{:.1} {:.1} Z" fill="{red}" stroke="{SURFACE}" stroke-width="1.5"/>"#,
                x,
                y - 5.0,
                x - 5.0,
                y + 4.0,
                x + 5.0,
                y + 4.0
            );
        } else {
            let _ = write!(
                out,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="none" stroke="{blue}" stroke-width="2"/>"#
            );
        }
    }
    // Legend (two series → legend required).
    let lx = W - MR - 190.0;
    let _ = write!(
        out,
        r#"<circle cx="{lx:.1}" cy="44" r="4" fill="none" stroke="{blue}" stroke-width="2"/><text x="{:.1}" y="48" font-size="11" fill="{INK_SECONDARY}">no side collision</text>"#,
        lx + 10.0
    );
    let _ = write!(
        out,
        r#"<path d="M{:.1} 39 L{:.1} 48 L{:.1} 48 Z" fill="{red}"/><text x="{:.1}" y="48" font-size="11" fill="{INK_SECONDARY}">side collision</text>"#,
        lx + 115.0,
        lx + 110.0,
        lx + 120.0,
        lx + 125.0
    );
    out.push_str("</svg>");
    out
}

/// Renders grouped box plots (Fig. 4 / Fig. 6 style): one group per x
/// category (budget), one box per series (agent), series colored by fixed
/// palette slots with a legend and whiskers to min/max.
pub fn box_plot_svg(
    title: &str,
    categories: &[String],
    series: &[(String, Vec<BoxStats>)],
    x_label: &str,
    y_label: &str,
) -> String {
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for (_, boxes) in series {
        for b in boxes {
            y_min = y_min.min(b.min);
            y_max = y_max.max(b.max);
        }
    }
    if !y_min.is_finite() {
        y_min = 0.0;
        y_max = 1.0;
    }
    let pad = (y_max - y_min).max(1.0) * 0.08;
    let f = Frame {
        x_min: 0.0,
        x_max: categories.len() as f64,
        y_min: y_min - pad,
        y_max: y_max + pad,
    };
    let mut out = String::new();
    header(&mut out, title);
    // Only y grid for box plots; x positions are categorical.
    let ys = tick_step(f.y_max - f.y_min);
    let mut v = (f.y_min / ys).ceil() * ys;
    while v <= f.y_max + 1e-9 {
        let y = f.y(v);
        let _ = write!(
            out,
            r#"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/><text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="end">{}</text>"#,
            W - MR,
            ML - 8.0,
            y + 4.0,
            fmt_tick(v)
        );
        v += ys;
    }
    let group_w = (W - ML - MR) / categories.len() as f64;
    let n = series.len().max(1) as f64;
    let box_w = (group_w * 0.7 / n).min(26.0);
    for (ci, cat) in categories.iter().enumerate() {
        let cx = ML + (ci as f64 + 0.5) * group_w;
        let _ = write!(
            out,
            r#"<text x="{cx:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
            H - MB + 16.0,
            xml_escape(cat)
        );
        for (si, (_, boxes)) in series.iter().enumerate() {
            let Some(b) = boxes.get(ci) else { continue };
            let color = SERIES_COLORS[si % SERIES_COLORS.len()];
            let x = cx + (si as f64 - (n - 1.0) / 2.0) * (box_w + 2.0) - box_w / 2.0;
            let (yq1, yq3) = (f.y(b.q1), f.y(b.q3));
            let (ymin, ymax, ymed) = (f.y(b.min), f.y(b.max), f.y(b.median));
            let xm = x + box_w / 2.0;
            // Whiskers, box, median tick.
            let _ = write!(
                out,
                r#"<line x1="{xm:.1}" y1="{ymax:.1}" x2="{xm:.1}" y2="{yq3:.1}" stroke="{color}" stroke-width="2"/><line x1="{xm:.1}" y1="{yq1:.1}" x2="{xm:.1}" y2="{ymin:.1}" stroke="{color}" stroke-width="2"/><rect x="{x:.1}" y="{yq3:.1}" width="{box_w:.1}" height="{:.1}" rx="3" fill="{color}" fill-opacity="0.25" stroke="{color}" stroke-width="2"/><line x1="{x:.1}" y1="{ymed:.1}" x2="{:.1}" y2="{ymed:.1}" stroke="{color}" stroke-width="2"/>"#,
                (yq1 - yq3).max(1.0),
                x + box_w
            );
        }
    }
    legend(&mut out, series.iter().map(|(l, _)| l.as_str()));
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 12.0,
        xml_escape(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml_escape(y_label)
    );
    out.push_str("</svg>");
    out
}

/// Renders the Fig. 8 style grouped bars: success rate per effort window,
/// one bar per series, 4px rounded data ends anchored to the baseline.
pub fn bar_chart_svg(
    title: &str,
    windows: &[String],
    series: &[(String, Vec<f64>)],
    y_label: &str,
) -> String {
    let f = Frame {
        x_min: 0.0,
        x_max: windows.len() as f64,
        y_min: 0.0,
        y_max: 1.0,
    };
    let mut out = String::new();
    header(&mut out, title);
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let y = f.y(pct);
        let _ = write!(
            out,
            r#"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/><text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="end">{:.0}%</text>"#,
            W - MR,
            ML - 8.0,
            y + 4.0,
            pct * 100.0
        );
    }
    let group_w = (W - ML - MR) / windows.len() as f64;
    let n = series.len().max(1) as f64;
    let bar_w = (group_w * 0.7 / n).min(22.0);
    let base = f.y(0.0);
    for (wi, label) in windows.iter().enumerate() {
        let cx = ML + (wi as f64 + 0.5) * group_w;
        let _ = write!(
            out,
            r#"<text x="{cx:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
            H - MB + 16.0,
            xml_escape(label)
        );
        for (si, (_, rates)) in series.iter().enumerate() {
            let Some(&rate) = rates.get(wi) else { continue };
            let color = SERIES_COLORS[si % SERIES_COLORS.len()];
            let x = cx + (si as f64 - (n - 1.0) / 2.0) * (bar_w + 2.0) - bar_w / 2.0;
            let y = f.y(rate.clamp(0.0, 1.0));
            let h = (base - y).max(0.0);
            if h >= 1.0 {
                let _ = write!(
                    out,
                    r#"<path d="M{x:.1} {base:.1} L{x:.1} {:.1} Q{x:.1} {y:.1} {:.1} {y:.1} L{:.1} {y:.1} Q{:.1} {y:.1} {:.1} {:.1} L{:.1} {base:.1} Z" fill="{color}"/>"#,
                    y + 4.0,
                    x + 4.0,
                    x + bar_w - 4.0,
                    x + bar_w,
                    x + bar_w,
                    y + 4.0,
                    x + bar_w
                );
            } else {
                // Zero-height bars still get a visible baseline tick.
                let _ = write!(
                    out,
                    r#"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="2" fill="{color}"/>"#,
                    base - 2.0
                );
            }
        }
    }
    legend(&mut out, series.iter().map(|(l, _)| l.as_str()));
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle">attack effort window</text>"#,
        (ML + W - MR) / 2.0,
        H - 12.0
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml_escape(y_label)
    );
    out.push_str("</svg>");
    out
}

fn legend<'a>(out: &mut String, labels: impl Iterator<Item = &'a str>) {
    let mut x = ML;
    for (i, label) in labels.enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        let _ = write!(
            out,
            r#"<rect x="{x:.1}" y="38" width="10" height="10" rx="3" fill="{color}"/><text x="{:.1}" y="47" font-size="11" fill="{INK_SECONDARY}">{}</text>"#,
            x + 14.0,
            xml_escape(label)
        );
        x += 22.0 + label.len() as f64 * 6.2;
    }
}

/// Writes SVG text to a file, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_svg(path: impl AsRef<std::path::Path>, svg: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, svg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Crude well-formedness: every opened tag type closes or self-closes.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn scatter_renders_both_marker_kinds() {
        let points = vec![
            ScatterPoint {
                effort: 0.2,
                deviation_rmse: 0.05,
                success: false,
            },
            ScatterPoint {
                effort: 0.8,
                deviation_rmse: 0.4,
                success: true,
            },
        ];
        let svg = scatter_svg("Fig 5", &points, "attack effort", "deviation RMSE");
        balanced(&svg);
        assert!(svg.contains("<circle"), "failure marker present");
        assert!(svg.contains("<path"), "success marker present");
        assert!(svg.contains("side collision"));
        assert!(svg.contains(SERIES_COLORS[0]) && svg.contains(SERIES_COLORS[5]));
    }

    #[test]
    fn box_plot_renders_groups_and_legend() {
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let svg = box_plot_svg(
            "Fig 6",
            &["0.00".into(), "0.50".into()],
            &[("pi_ori".into(), vec![b, b]), ("pi_pnn".into(), vec![b, b])],
            "budget",
            "nominal reward",
        );
        balanced(&svg);
        assert!(svg.contains("pi_ori") && svg.contains("pi_pnn"));
        assert_eq!(
            svg.matches("<rect").count(),
            1 + 4 + 2,
            "surface + 4 boxes + 2 legend chips"
        );
    }

    #[test]
    fn bar_chart_handles_zero_and_full_rates() {
        let svg = bar_chart_svg(
            "Fig 8",
            &["0.0-0.2".into(), "0.8+".into()],
            &[("a".into(), vec![0.0, 1.0])],
            "success rate",
        );
        balanced(&svg);
        assert!(svg.contains("100%"));
        // Zero bar renders as a baseline tick (rect), full bar as a path.
        assert!(svg.contains("height=\"2\""));
    }

    #[test]
    fn escape_handles_special_chars() {
        assert_eq!(xml_escape("a<b&c"), "a&lt;b&amp;c");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("drive-metrics-svg-test");
        let path = dir.join("t.svg");
        write_svg(&path, "<svg></svg>").unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
