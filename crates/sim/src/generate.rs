//! Seeded procedural scenario generation.
//!
//! Turns a point on the scenario axes — road topology × traffic density ×
//! NPC speed mix × fault intensity — plus a [`SeedTree`] node into a
//! validated [`ScenarioSpec`] and a benign [`FaultSchedule`]. The same node
//! always yields the same scenario (the generator draws every random
//! quantity from `StdRng`s seeded by labeled children of the node), and
//! every generated scenario passes [`Scenario::validate`] *including* the
//! per-episode spawn jitter applied later by the episode runners: spawn
//! gaps and lane-window margins are kept wider than the jitter can close.

use crate::faults::FaultSchedule;
use crate::road::Road;
use crate::scenario::{NpcSpawn, Scenario, ScenarioSpec};
use crate::vehicle::VehicleParams;
use drive_seed::SeedTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which road layout to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The paper's straight three-lane freeway.
    Straight,
    /// Freeway with an on-ramp acceleration lane merging into lane 0.
    OnRamp,
    /// Freeway whose leftmost lane ends mid-episode.
    LaneDrop,
}

impl TopologyKind {
    /// Every topology, in sweep order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Straight,
        TopologyKind::OnRamp,
        TopologyKind::LaneDrop,
    ];

    /// Stable label used in seeds, artifact names and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Straight => "straight",
            TopologyKind::OnRamp => "on_ramp",
            TopologyKind::LaneDrop => "lane_drop",
        }
    }
}

/// Traffic density band: how many NPCs spawn and how tightly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficDensity {
    /// 2–4 NPCs, wide gaps.
    Sparse,
    /// 5–7 NPCs, the paper's spacing.
    Normal,
    /// 8–11 NPCs, tight gaps.
    Dense,
}

impl TrafficDensity {
    /// Every density band, in sweep order.
    pub const ALL: [TrafficDensity; 3] = [
        TrafficDensity::Sparse,
        TrafficDensity::Normal,
        TrafficDensity::Dense,
    ];

    /// Stable label used in seeds, artifact names and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficDensity::Sparse => "sparse",
            TrafficDensity::Normal => "normal",
            TrafficDensity::Dense => "dense",
        }
    }

    /// Inclusive NPC-count band.
    fn npc_band(&self) -> (usize, usize) {
        match self {
            TrafficDensity::Sparse => (2, 4),
            TrafficDensity::Normal => (5, 7),
            TrafficDensity::Dense => (8, 11),
        }
    }

    /// Longitudinal gap band between consecutive spawns in one lane,
    /// meters. The lower bound stays above one car length plus twice the
    /// per-episode spawn jitter so jittered scenarios always validate.
    fn gap_band(&self) -> (f64, f64) {
        match self {
            TrafficDensity::Sparse => (30.0, 60.0),
            TrafficDensity::Normal => (18.0, 40.0),
            TrafficDensity::Dense => (12.0, 24.0),
        }
    }
}

/// NPC cruise-speed mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedMix {
    /// Uniformly slow traffic (the paper's 6 m/s band).
    Slow,
    /// Mixed slow and medium traffic.
    Mixed,
    /// Uniformly fast traffic, closer to the ego's reference speed.
    Fast,
}

impl SpeedMix {
    /// Every speed mix, in sweep order.
    pub const ALL: [SpeedMix; 3] = [SpeedMix::Slow, SpeedMix::Mixed, SpeedMix::Fast];

    /// Stable label used in seeds, artifact names and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            SpeedMix::Slow => "slow",
            SpeedMix::Mixed => "mixed",
            SpeedMix::Fast => "fast",
        }
    }

    /// Cruise-speed band, m/s.
    fn speed_band(&self) -> (f64, f64) {
        match self {
            SpeedMix::Slow => (5.0, 7.0),
            SpeedMix::Mixed => (5.0, 10.0),
            SpeedMix::Fast => (8.0, 12.0),
        }
    }
}

/// One point on the scenario axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioAxes {
    /// Road layout.
    pub topology: TopologyKind,
    /// Traffic density band.
    pub density: TrafficDensity,
    /// NPC cruise-speed mix.
    pub speed_mix: SpeedMix,
    /// Benign fault-schedule intensity (0 disables faults).
    pub fault_intensity: f64,
}

/// A generated scenario plus the fault schedule drawn alongside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedScenario {
    /// The validated scenario under its generated name.
    pub spec: ScenarioSpec,
    /// Benign fault schedule for the episode loop (noop at intensity 0).
    pub faults: FaultSchedule,
    /// The axes this scenario was generated from.
    pub axes: ScenarioAxes,
}

/// Margin (beyond the spawn jitter) kept between any spawn and the end of
/// its lane-open window, meters.
const LANE_WINDOW_MARGIN: f64 = 10.0;

/// First x at which NPCs may spawn, meters ahead of the ego at x = 0.
const SPAWN_START_X: f64 = 25.0;

/// Draws the road geometry for `kind` from `rng`.
fn draw_road(kind: TopologyKind, rng: &mut StdRng) -> Road {
    match kind {
        TopologyKind::Straight => Road::default(),
        TopologyKind::OnRamp => {
            let merge_start = rng.gen_range(200.0..280.0);
            Road::on_ramp(3, 3.5, 1500.0, 0.0, merge_start, merge_start + 80.0)
        }
        TopologyKind::LaneDrop => {
            let drop_start = rng.gen_range(250.0..350.0);
            Road::lane_drop(3, 3.5, 1500.0, drop_start, drop_start + 80.0)
        }
    }
}

/// Generates the scenario for one axes point, drawing every random
/// quantity through labeled children of `node`.
///
/// Calling this twice with equal inputs yields identical output; distinct
/// nodes yield independently drawn scenarios.
pub fn generate(axes: ScenarioAxes, node: &SeedTree) -> GeneratedScenario {
    let mut road_rng = StdRng::seed_from_u64(node.child("road").seed());
    let road = draw_road(axes.topology, &mut road_rng);

    let mut rng = StdRng::seed_from_u64(node.child("npcs").seed());
    let (lo, hi) = axes.density.npc_band();
    let count = rng.gen_range(lo..=hi);
    let (gap_lo, gap_hi) = axes.density.gap_band();
    let (speed_lo, speed_hi) = axes.speed_mix.speed_band();

    let base = Scenario::default();
    let jitter = base.spawn_jitter_x;

    // One spawn cursor per addressable lane; each draw advances a lane's
    // cursor by a gap wider than a car length plus twice the jitter, so
    // neither the base nor any jittered variant can overlap.
    let total_lanes = road.total_lanes();
    let mut cursors = vec![SPAWN_START_X; total_lanes];
    // The ego spawns at x = 0 in its lane; keep that lane's first spawn
    // clear of the ego even under jitter.
    let ego_lane = 1.min(road.num_lanes - 1);

    let mut npcs = Vec::with_capacity(count);
    let mut attempts = 0;
    while npcs.len() < count && attempts < count * 8 {
        attempts += 1;
        let lane = rng.gen_range(0..total_lanes);
        let gap = rng.gen_range(gap_lo..gap_hi);
        let x = cursors[lane] + gap;
        // Respect the lane-open window (with margin for jitter) of closing
        // lanes: ramp spawns before the merge deadline, drop-lane spawns
        // before the drop. Lanes that run the whole road only need the
        // spawn to stay within reach of the episode.
        let window_end = road
            .lane_end_x(lane)
            .map(|end| end - jitter - LANE_WINDOW_MARGIN)
            .unwrap_or(f64::INFINITY);
        if x > window_end || x > 400.0 {
            continue;
        }
        let speed = rng.gen_range(speed_lo..speed_hi);
        npcs.push(NpcSpawn { lane, x, speed });
        cursors[lane] = x;
    }
    npcs.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.lane.cmp(&b.lane)));

    let scenario = Scenario {
        road,
        ego_lane,
        npcs,
        ..base
    };
    let name = format!(
        "{}_{}_{}_f{:03}_{:016x}",
        axes.topology.label(),
        axes.density.label(),
        axes.speed_mix.label(),
        (axes.fault_intensity * 100.0).round() as u32,
        node.seed()
    );
    let spec = ScenarioSpec::new(name, scenario).expect("generated scenario must validate");

    let faults = if axes.fault_intensity > 0.0 {
        FaultSchedule::benign(axes.fault_intensity, node.child("faults").seed())
    } else {
        FaultSchedule::none()
    };

    GeneratedScenario { spec, faults, axes }
}

/// Sanity floor used by tests: the tightest generator gap must exceed a
/// car length plus twice the default spawn jitter.
pub fn min_generator_gap() -> f64 {
    TrafficDensity::Dense.gap_band().0
}

/// The corresponding safety requirement.
pub fn min_required_gap() -> f64 {
    VehicleParams::default().length + 2.0 * Scenario::default().spawn_jitter_x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn axes_grid() -> Vec<ScenarioAxes> {
        let mut out = Vec::new();
        for topology in TopologyKind::ALL {
            for density in TrafficDensity::ALL {
                for speed_mix in SpeedMix::ALL {
                    for fault_intensity in [0.0, 0.5] {
                        out.push(ScenarioAxes {
                            topology,
                            density,
                            speed_mix,
                            fault_intensity,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn generator_gaps_cover_jitter() {
        assert!(min_generator_gap() > min_required_gap());
    }

    #[test]
    fn generated_scenarios_validate_and_replay() {
        let root = SeedTree::root(0xC0FFEE).child("gen");
        for (i, axes) in axes_grid().into_iter().enumerate() {
            let node = root.child(i);
            let g1 = generate(axes, &node);
            let g2 = generate(axes, &node);
            assert_eq!(g1, g2, "same node must regenerate identically");
            assert!(g1.spec.scenario().validate().is_ok());
            // Jittered spawns must stay valid (World::new validates).
            let mut rng = StdRng::seed_from_u64(42 + i as u64);
            let jittered = g1.spec.scenario().jittered(&mut rng);
            let _ = World::new(jittered);
        }
    }

    #[test]
    fn topologies_materialize_their_roads() {
        let node = SeedTree::root(7).child("gen").child(0);
        for (kind, label) in [
            (TopologyKind::Straight, "straight"),
            (TopologyKind::OnRamp, "on_ramp"),
            (TopologyKind::LaneDrop, "lane_drop"),
        ] {
            let g = generate(
                ScenarioAxes {
                    topology: kind,
                    density: TrafficDensity::Normal,
                    speed_mix: SpeedMix::Slow,
                    fault_intensity: 0.0,
                },
                &node,
            );
            assert_eq!(g.spec.scenario().road.topology.label(), label);
            assert!(g.spec.name.starts_with(label));
            assert!(g.faults.is_noop());
        }
    }

    #[test]
    fn fault_axis_draws_a_schedule() {
        let node = SeedTree::root(7).child("gen").child(1);
        let g = generate(
            ScenarioAxes {
                topology: TopologyKind::Straight,
                density: TrafficDensity::Normal,
                speed_mix: SpeedMix::Slow,
                fault_intensity: 0.5,
            },
            &node,
        );
        assert!(!g.faults.is_noop());
        assert_eq!(g.faults.seed, node.child("faults").seed());
    }

    #[test]
    fn distinct_nodes_draw_distinct_traffic() {
        let root = SeedTree::root(99).child("gen");
        let axes = ScenarioAxes {
            topology: TopologyKind::Straight,
            density: TrafficDensity::Normal,
            speed_mix: SpeedMix::Mixed,
            fault_intensity: 0.0,
        };
        let a = generate(axes, &root.child(0));
        let b = generate(axes, &root.child(1));
        assert_ne!(a.spec.fingerprint(), b.spec.fingerprint());
    }
}
