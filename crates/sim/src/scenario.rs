//! Scenario configuration: the Town-4-like freeway episode of the paper.
//!
//! The ego vehicle starts in the middle lane at a 16 m/s reference speed and
//! must pass six NPC vehicles cruising at 6 m/s within 180 control steps of
//! 0.1 s each (Section III-A). Spawn positions can be jittered per episode
//! seed for training/evaluation variety.

use crate::road::Road;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spawn description for one NPC vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpcSpawn {
    /// Lane index (0 = rightmost).
    pub lane: usize,
    /// Longitudinal start position, meters.
    pub x: f64,
    /// Cruise speed, m/s.
    pub speed: f64,
}

/// Full episode configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Road geometry.
    pub road: Road,
    /// Control period, seconds (0.1 s in the paper).
    pub dt: f64,
    /// Integration substeps per control period.
    pub substeps: usize,
    /// Episode length in control steps (180 in the paper).
    pub max_steps: usize,
    /// Ego spawn lane.
    pub ego_lane: usize,
    /// Ego spawn longitudinal position, meters.
    pub ego_x: f64,
    /// Ego spawn speed, m/s.
    pub ego_speed: f64,
    /// Ego reference (desired cruise) speed, m/s.
    pub ego_ref_speed: f64,
    /// NPC spawns.
    pub npcs: Vec<NpcSpawn>,
    /// Max longitudinal jitter applied per episode, meters.
    pub spawn_jitter_x: f64,
    /// Max speed jitter applied per episode, m/s.
    pub spawn_jitter_speed: f64,
}

impl Default for Scenario {
    /// The paper's freeway overtaking scenario: six 6 m/s NPCs spread over
    /// the three lanes ahead of a 16 m/s ego vehicle.
    fn default() -> Self {
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 55.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 85.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 110.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 135.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 160.0,
                speed: 6.0,
            },
        ];
        Scenario {
            road: Road::default(),
            dt: 0.1,
            substeps: 5,
            max_steps: 180,
            ego_lane: 1,
            ego_x: 0.0,
            ego_speed: 16.0,
            ego_ref_speed: 16.0,
            npcs,
            spawn_jitter_x: 3.0,
            spawn_jitter_speed: 0.5,
        }
    }
}

impl Scenario {
    /// A denser variant: eight NPCs with tighter spacing. Overtaking
    /// requires more lane changes and offers the attacker more critical
    /// windows.
    pub fn dense_traffic() -> Self {
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 28.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 46.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 66.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 88.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 108.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 128.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 148.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 168.0,
                speed: 6.0,
            },
        ];
        Scenario {
            npcs,
            ..Scenario::default()
        }
    }

    /// A sparse variant: three NPCs far apart. Fewer critical windows, so
    /// a lurking attacker must stay quiet longer.
    pub fn sparse_traffic() -> Self {
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 40.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 110.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 180.0,
                speed: 6.0,
            },
        ];
        Scenario {
            npcs,
            ..Scenario::default()
        }
    }

    /// A two-lane variant (no middle escape lane): lane changes are
    /// all-or-nothing, which favors the attacker.
    pub fn two_lane() -> Self {
        let road = crate::road::Road::new(2, 3.5, 1500.0);
        let npcs = vec![
            NpcSpawn {
                lane: 0,
                x: 35.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 70.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 105.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 140.0,
                speed: 6.0,
            },
        ];
        Scenario {
            road,
            ego_lane: 0,
            npcs,
            ..Scenario::default()
        }
    }

    /// Returns a copy with per-NPC spawn jitter drawn from `rng`.
    ///
    /// Jitter keeps ordering gaps sane: positions move by at most
    /// `spawn_jitter_x` and speeds by at most `spawn_jitter_speed`.
    pub fn jittered<R: Rng>(&self, rng: &mut R) -> Scenario {
        let mut s = self.clone();
        for npc in &mut s.npcs {
            npc.x += rng.gen_range(-self.spawn_jitter_x..=self.spawn_jitter_x);
            npc.speed = (npc.speed
                + rng.gen_range(-self.spawn_jitter_speed..=self.spawn_jitter_speed))
            .max(0.5);
        }
        s
    }

    /// Episode duration in seconds.
    pub fn duration(&self) -> f64 {
        self.max_steps as f64 * self.dt
    }

    /// Validates internal consistency (lanes in range, positive timing).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dt <= 0.0 {
            return Err(format!("dt must be positive, got {}", self.dt));
        }
        if self.substeps == 0 {
            return Err("substeps must be at least 1".into());
        }
        if self.max_steps == 0 {
            return Err("max_steps must be at least 1".into());
        }
        if self.ego_lane >= self.road.num_lanes {
            return Err(format!(
                "ego lane {} out of range for {}-lane road",
                self.ego_lane, self.road.num_lanes
            ));
        }
        for (i, n) in self.npcs.iter().enumerate() {
            if n.lane >= self.road.num_lanes {
                return Err(format!("npc {i} lane {} out of range", n.lane));
            }
            if n.speed < 0.0 {
                return Err(format!("npc {i} has negative speed"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_scenario_is_valid() {
        let s = Scenario::default();
        assert!(s.validate().is_ok());
        assert_eq!(s.npcs.len(), 6);
        assert!((s.duration() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let s = Scenario::default();
        let mut rng = StdRng::seed_from_u64(7);
        let j1 = s.jittered(&mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let j2 = s.jittered(&mut rng);
        assert_eq!(j1, j2, "same seed must give same jitter");
        for (orig, jit) in s.npcs.iter().zip(&j1.npcs) {
            assert!((orig.x - jit.x).abs() <= s.spawn_jitter_x + 1e-12);
            assert!((orig.speed - jit.speed).abs() <= s.spawn_jitter_speed + 1e-12);
            assert_eq!(orig.lane, jit.lane);
        }
    }

    #[test]
    fn preset_scenarios_are_valid() {
        for s in [
            Scenario::dense_traffic(),
            Scenario::sparse_traffic(),
            Scenario::two_lane(),
        ] {
            assert!(s.validate().is_ok(), "{s:?}");
        }
        assert_eq!(Scenario::dense_traffic().npcs.len(), 8);
        assert_eq!(Scenario::sparse_traffic().npcs.len(), 3);
        assert_eq!(Scenario::two_lane().road.num_lanes, 2);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let s = Scenario {
            dt: 0.0,
            ..Default::default()
        };
        assert!(s.validate().is_err());

        let s = Scenario {
            ego_lane: 3,
            ..Default::default()
        };
        assert!(s.validate().is_err());

        let mut s = Scenario::default();
        s.npcs[0].lane = 9;
        assert!(s.validate().is_err());
    }
}
