//! Deterministic parallel map for experiment grids.
//!
//! The crate provides [`par_map`], a chunked work-stealing map built on
//! [`std::thread::scope`] — no external dependencies. Its contract is
//! strict determinism: for any worker count (including 1), the output is
//! the item-wise result in input order, so serial and parallel runs of a
//! figure grid produce byte-identical CSVs. Worker scheduling only decides
//! *who* computes an item, never *what* is computed or *where* the result
//! lands.
//!
//! Worker count resolution, in priority order:
//! 1. a thread-local override installed by [`with_jobs`] (used by tests so
//!    concurrent test threads don't race on the process environment),
//! 2. the `DRIVE_JOBS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! Panics inside the mapped closure are captured per item; after all
//! workers drain, the payload from the **lowest-index** panicking item is
//! re-raised. That keeps panic behaviour scheduling-independent too, and
//! composes with callers that wrap items in their own `catch_unwind`
//! (e.g. `repro_bench::resilience::run_cell`, which retries failed
//! episodes inside a cell before the panic would ever reach this layer).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Test-scoped worker-count override (see [`with_jobs`]).
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Environment variable consulted for the worker count.
pub const JOBS_ENV: &str = "DRIVE_JOBS";

/// Runs `f` with the worker count pinned to `jobs` on this thread.
///
/// The override is thread-local and restored on exit (including on
/// panic), so parallel test threads can each pin a different count
/// without racing on `DRIVE_JOBS`.
pub fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = JOBS_OVERRIDE.with(|c| c.replace(Some(jobs.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Resolves the effective worker count for the calling thread.
///
/// Order: [`with_jobs`] override, then `DRIVE_JOBS` (positive integer),
/// then [`std::thread::available_parallelism`]; always at least 1.
pub fn jobs() -> usize {
    if let Some(j) = JOBS_OVERRIDE.with(Cell::get) {
        return j.max(1);
    }
    if let Ok(raw) = std::env::var(JOBS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A pinned-worker-count executor handle.
///
/// [`Executor::current`] snapshots the worker count resolved at a known
/// point (e.g. when an experiment run context is built); running work
/// through the handle then pins that count for the duration via
/// [`with_jobs`], so later environment changes — or being called from a
/// thread without the override — cannot shift the parallelism mid-run.
/// Run manifests record [`Executor::jobs`] as the authoritative count the
/// run actually used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor pinned to the worker count resolved right now (see
    /// [`jobs`]).
    #[must_use]
    pub fn current() -> Self {
        Executor { jobs: jobs() }
    }

    /// An executor pinned to an explicit worker count (min 1).
    #[must_use]
    pub fn with_worker_count(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// The pinned worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` with the worker count pinned to this executor's.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        with_jobs(self.jobs, f)
    }

    /// [`par_map`] pinned to this executor's worker count.
    pub fn par_map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(usize, &I) -> R + Sync,
    {
        self.run(|| par_map(items, f))
    }
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// `f` receives `(index, &item)`. With an effective worker count of 1 —
/// or a grid of at most two items, where thread spawn and join cost more
/// than the second item — the map runs serially on the calling thread
/// with no thread or synchronization overhead; otherwise items are
/// claimed in contiguous chunks off a shared atomic cursor. Either way
/// the output `Vec` is index-ordered and identical for every worker
/// count.
///
/// If `f` panics for one or more items, the panic payload of the
/// lowest-index failing item is re-raised after all workers finish.
pub fn par_map<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 || items.len() <= 2 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }

    // Chunked claiming: big enough to amortize the atomic, small enough
    // that a slow cell doesn't strand a whole stripe on one worker.
    let chunk = (items.len() / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    // Worker results land here as (index, Ok(result) | Err(panic)).
    type Slot<R> = (usize, Result<R, Box<dyn std::any::Any + Send>>);
    let collected: Mutex<Vec<Slot<R>>> = Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<Slot<R>> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (idx, item) in items[start..end].iter().enumerate() {
                        let idx = start + idx;
                        let out = catch_unwind(AssertUnwindSafe(|| f(idx, item)));
                        local.push((idx, out));
                    }
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });

    let mut slots = collected.into_inner().unwrap();
    slots.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(slots.len(), items.len());

    // Deterministic panic propagation: re-raise the lowest-index failure.
    if let Some(pos) = slots.iter().position(|(_, r)| r.is_err()) {
        let (_, err) = slots.swap_remove(pos);
        match err {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("position() found an Err slot"),
        }
    }
    slots
        .into_iter()
        .map(|(_, r)| match r {
            Ok(v) => v,
            Err(_) => unreachable!("panics re-raised above"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn maps_in_order_serially() {
        let items: Vec<u32> = (0..17).collect();
        let out = with_jobs(1, || par_map(&items, |i, &x| (i as u32) * 100 + x));
        assert_eq!(out.len(), 17);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u32) * 101);
        }
    }

    #[test]
    fn executor_pins_worker_count() {
        let ex = Executor::with_worker_count(3);
        assert_eq!(ex.jobs(), 3);
        assert_eq!(ex.run(jobs), 3);
        // Pinning is scoped: outside the handle the ambient count rules.
        let ambient = with_jobs(5, || {
            let pinned = Executor::with_worker_count(2).run(jobs);
            (pinned, jobs())
        });
        assert_eq!(ambient, (2, 5));
        // Zero clamps to one, and the executor's map matches plain par_map.
        assert_eq!(Executor::with_worker_count(0).jobs(), 1);
        let items: Vec<u32> = (0..9).collect();
        let out = ex.par_map(&items, |i, &x| x + i as u32);
        assert_eq!(out, with_jobs(1, || par_map(&items, |i, &x| x + i as u32)));
    }

    #[test]
    fn parallel_matches_serial_for_various_worker_counts() {
        let items: Vec<u64> = (0..53).map(|i| i * 7 + 3).collect();
        let serial = with_jobs(1, || par_map(&items, |i, &x| x * x + i as u64));
        for workers in [2, 3, 8, 64] {
            let par = with_jobs(workers, || par_map(&items, |i, &x| x * x + i as u64));
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let out: Vec<u8> = with_jobs(8, || par_map(&items, |_, &x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u8, 2];
        let out = with_jobs(16, || par_map(&items, |_, &x| x + 1));
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn tiny_grids_skip_thread_spawn_and_stay_index_ordered() {
        // Grids of <= 2 items run on the calling thread even with many
        // workers configured: the mapped closure must observe the caller's
        // thread id, and output must stay index-ordered.
        let caller = std::thread::current().id();
        for len in 0..=2usize {
            let items: Vec<usize> = (0..len).collect();
            let out = with_jobs(8, || {
                par_map(&items, |i, &x| {
                    assert_eq!(
                        std::thread::current().id(),
                        caller,
                        "tiny grid must not spawn threads"
                    );
                    (i, x * 10)
                })
            });
            let expect: Vec<(usize, usize)> = (0..len).map(|i| (i, i * 10)).collect();
            assert_eq!(out, expect, "len={len}");
        }
        // Three items is past the cutoff: still index-ordered.
        let items = [5usize, 6, 7];
        let out = with_jobs(8, || par_map(&items, |i, &x| (i, x)));
        assert_eq!(out, vec![(0, 5), (1, 6), (2, 7)]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let items: Vec<usize> = (0..24).collect();
        let caught = std::panic::catch_unwind(|| {
            with_jobs(4, || {
                par_map(&items, |i, _| {
                    if i == 5 || i == 19 {
                        panic!("boom {i}");
                    }
                    i
                })
            })
        });
        let payload = caught.expect_err("must propagate panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom 5");
    }

    #[test]
    fn with_jobs_restores_previous_override() {
        with_jobs(3, || {
            assert_eq!(jobs(), 3);
            with_jobs(5, || assert_eq!(jobs(), 5));
            assert_eq!(jobs(), 3);
        });
    }

    #[test]
    fn jobs_floor_is_one() {
        with_jobs(0, || assert_eq!(jobs(), 1));
    }

    proptest! {
        /// Core determinism property: every worker count produces the
        /// same index-ordered output as the serial path.
        #[test]
        fn par_map_is_schedule_independent(
            items in proptest::collection::vec(any::<u32>(), 0..64),
            workers in any::<u8>(),
        ) {
            let workers = 1 + (workers % 12) as usize;
            let serial = with_jobs(1, || {
                par_map(&items, |i, &x| x.wrapping_mul(31).wrapping_add(i as u32))
            });
            let par = with_jobs(workers, || {
                par_map(&items, |i, &x| x.wrapping_mul(31).wrapping_add(i as u32))
            });
            prop_assert_eq!(par, serial);
        }
    }
}
