//! Repo lint: no ad-hoc seed derivation is allowed anywhere in `crates/`.
//!
//! Every stochastic stream must derive its seed through
//! `drive_seed::SeedTree`; xor-a-magic-constant expressions like the old
//! `seed ^ 0x5f5f` collide silently and are impossible to audit. This test
//! walks every Rust source file under `crates/` and fails with file:line
//! locations if the pattern reappears.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_magic_constant_seed_xors_in_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut sources = Vec::new();
    rust_sources(&root, &mut sources);
    assert!(
        sources.len() > 10,
        "expected a populated crates/ tree, found {} files",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in &sources {
        let text = fs::read_to_string(path).expect("readable source");
        for (i, line) in text.lines().enumerate() {
            // Doc comments may mention the outlawed idiom by name; only
            // code counts.
            let code = line.split("//").next().unwrap_or("");
            if code.contains("seed ^ 0x") || code.contains("seed^0x") {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "magic-constant seed derivations found (use drive_seed::SeedTree):\n{}",
        offenders.join("\n")
    );
}
