//! Fig. 8 — attack success rate per attack-effort window for the nominal
//! agent and the four enhanced agents.
//!
//! Re-bins the Fig. 5 (end-to-end series) and Fig. 7 scatter data with
//! window width 0.2 from 0.0 to 0.8+. The paper's finding: fine-tuned
//! agents still show successes at small efforts, PNN agents have the
//! lowest success rates everywhere.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::experiments::fig5::Fig5Result;
use crate::experiments::fig7::Fig7Result;
use crate::harness::AgentKind;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_pct, Table};
use drive_metrics::svg::bar_chart_svg;
use drive_metrics::windows::{fig8_windows, EffortWindow};
use std::sync::Arc;

/// Per-agent windowed success rates.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// The agent.
    pub agent: AgentKind,
    /// The five effort windows with success rates.
    pub windows: Vec<EffortWindow>,
}

/// Full Fig. 8 result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Nominal + four enhanced agents.
    pub series: Vec<Fig8Series>,
}

impl Fig8Result {
    /// The series for an agent, if present.
    pub fn series(&self, agent: AgentKind) -> Option<&Fig8Series> {
        self.series.iter().find(|s| s.agent == agent)
    }
}

/// Builds Fig. 8 from the Fig. 5 and Fig. 7 sweeps (no new episodes).
pub fn derive(fig5: &Fig5Result, fig7: &Fig7Result) -> Fig8Result {
    let mut series = Vec::new();
    if let Some(e2e) = fig5.series(AgentKind::E2e) {
        series.push(Fig8Series {
            agent: AgentKind::E2e,
            windows: fig8_windows(&e2e.points),
        });
    }
    for agent in Fig7Result::lineup() {
        if let Some(s) = fig7.series(agent) {
            series.push(Fig8Series {
                agent,
                windows: fig8_windows(&s.points),
            });
        }
    }
    Fig8Result { series }
}

/// Runs (or reuses) Fig. 8 via the context memo.
///
/// Purely derived: pulls the memoized Fig. 5 and Fig. 7 sweeps (running
/// them if this is a standalone fig8 invocation) and re-bins their
/// scatter points — the seed namespaces are the sweeps' own, so a
/// standalone run and an `--all` run agree byte for byte.
pub fn run(ctx: &RunContext) -> Arc<Fig8Result> {
    ctx.memo("fig8", || {
        let f5 = crate::experiments::fig5::run(ctx);
        let f7 = crate::experiments::fig7::run(ctx);
        derive(&f5, &f7)
    })
}

impl Fig8Result {
    /// Exports per-window success rates as CSV.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(["agent", "window", "success_rate", "count"]);
        for s in &self.series {
            for w in &s.windows {
                csv.row([
                    s.agent.label().to_string(),
                    w.label(),
                    format!("{:.3}", w.success_rate),
                    w.count.to_string(),
                ]);
            }
        }
        csv
    }

    /// Builds the Fig. 8 grouped bar chart.
    pub fn to_svgs(&self) -> Vec<(String, String)> {
        let windows: Vec<String> = self
            .series
            .first()
            .map(|s| s.windows.iter().map(EffortWindow::label).collect())
            .unwrap_or_default();
        let series: Vec<(String, Vec<f64>)> = self
            .series
            .iter()
            .map(|s| {
                (
                    s.agent.label().to_string(),
                    s.windows.iter().map(|w| w.success_rate).collect(),
                )
            })
            .collect();
        vec![(
            "fig8_success_rates".to_string(),
            bar_chart_svg(
                "Fig. 8 — success rate per effort window",
                &windows,
                &series,
                "attack success rate",
            ),
        )]
    }
}

/// Registry entry for Fig. 8.
pub struct Fig8Experiment;

impl Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "Success rate per effort window, derived from the fig5 and fig7 sweeps"
    }

    fn cells(&self) -> usize {
        0
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("fig8".to_string(), r.to_csv())],
            svgs: r.to_svgs(),
        }
    }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 8 — attack success rate per attack-effort window")?;
        let labels: Vec<String> = self
            .series
            .first()
            .map(|s| s.windows.iter().map(EffortWindow::label).collect())
            .unwrap_or_default();
        let mut headers = vec!["agent \\ effort".to_string()];
        headers.extend(labels);
        let mut t = Table::new(headers);
        for s in &self.series {
            let mut row = vec![s.agent.label().to_string()];
            for w in &s.windows {
                row.push(if w.count == 0 {
                    "-".into()
                } else {
                    format!("{} ({})", fmt_pct(w.success_rate), w.count)
                });
            }
            t.row(row);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "cells are success rate (episode count); paper: PNN lowest everywhere"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig8_builds_from_sweeps() {
        let dir = std::env::temp_dir().join("repro-bench-fig8-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let f8 = run(&ctx);
        assert_eq!(f8.series.len(), 5);
        for s in &f8.series {
            assert_eq!(s.windows.len(), 5);
            let total: usize = s.windows.iter().map(|w| w.count).sum();
            assert!(total > 0, "{:?} has no points", s.agent);
        }
        let text = format!("{f8}");
        assert!(text.contains("0.8+"));
        assert_eq!(f8.to_csv().len(), 25);
        // The derived run reuses the memoized sweeps: deriving again from
        // the context's fig5/fig7 yields the same windows.
        let f5 = crate::experiments::fig5::run(&ctx);
        let f7 = crate::experiments::fig7::run(&ctx);
        let direct = derive(&f5, &f7);
        assert_eq!(direct.to_csv().to_csv_string(), f8.to_csv().to_csv_string());
    }
}
