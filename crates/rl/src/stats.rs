//! Streaming statistics for training loops: numerically stable running
//! mean/variance (Welford) and an exponential moving average — the
//! bookkeeping every RL training loop needs without ever materializing the
//! full return history.

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The raw accumulator fields `(n, mean, m2, min, max)`, for
    /// checkpointing. Pair with [`RunningStats::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from fields captured with
    /// [`RunningStats::raw_parts`].
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        RunningStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for RunningStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// Exponential moving average with configurable smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha in (0, 1]` (larger =
    /// faster tracking).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ema { alpha, value: None }
    }

    /// Adds one sample, returning the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            Some(v) => v + self.alpha * (x - v),
            None => x,
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before any sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for x in data {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.std_dev() - 2.138).abs() < 0.01);
        assert_eq!(rs.min(), Some(2.0));
        assert_eq!(rs.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_sane() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.min(), None);
        assert_eq!(rs.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..17] {
            a.push(x);
        }
        for &x in &data[17..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ema_tracks_towards_input() {
        let mut ema = Ema::new(0.5);
        assert_eq!(ema.value(), None);
        assert_eq!(ema.push(10.0), 10.0);
        assert_eq!(ema.push(0.0), 5.0);
        assert_eq!(ema.push(0.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ema_rejects_bad_alpha() {
        let _ = Ema::new(0.0);
    }

    #[test]
    fn display_is_readable() {
        let mut rs = RunningStats::new();
        rs.push(1.0);
        assert!(format!("{rs}").contains("n=1"));
    }
}
