//! Training of the end-to-end victim policy.
//!
//! Mirrors Section III-C: the policy is trained "with the knowledge of a
//! privileged agent" — here, behaviour cloning of the modular pipeline's
//! demonstrations — and then refined with SAC on the shaped nominal reward.
//! The SAC stage keeps the best-evaluating checkpoint, so refinement can
//! only improve on the clone.

use crate::driving_env::DrivingEnv;
use crate::e2e::E2eAgent;
use crate::modular::{ModularAgent, ModularConfig};
use crate::runner::run_episodes;
use crate::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_rl::bc::{clone_policy, BcConfig, Demonstrations};
use drive_rl::env::Env;
use drive_rl::replay::{ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_seed::SeedTree;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the victim training pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimTrainConfig {
    /// Demonstration episodes collected from the modular teacher.
    pub demo_episodes: usize,
    /// Uniform steering noise injected while collecting demonstrations
    /// (teacher labels stay clean), covering recovery states.
    pub demo_noise: f64,
    /// Behaviour-cloning gradient steps.
    pub bc_steps: usize,
    /// SAC environment steps after cloning (0 skips refinement).
    pub sac_steps: usize,
    /// Gradient updates happen every this many environment steps.
    pub update_every: usize,
    /// Hidden sizes of actor and critics.
    pub hidden: Vec<usize>,
    /// Evaluation episodes per checkpoint during refinement.
    pub eval_episodes: usize,
    /// Checkpoint / evaluation period in environment steps.
    pub eval_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for VictimTrainConfig {
    fn default() -> Self {
        VictimTrainConfig {
            demo_episodes: 80,
            demo_noise: 0.2,
            bc_steps: 10_000,
            sac_steps: 20_000,
            update_every: 2,
            hidden: vec![128, 128],
            eval_episodes: 5,
            eval_every: 4_000,
            seed: 0,
        }
    }
}

/// Collects `(stacked features, (nu, gamma))` demonstration pairs from the
/// modular pipeline over jittered episodes.
///
/// `exec_noise` adds uniform noise to the *executed* steering while the
/// stored label stays the teacher's clean command (DART-style noise
/// injection), so the clone sees recovery states instead of only the
/// teacher's narrow on-path distribution. Odd episodes run noise-free.
pub fn collect_demonstrations(
    scenario: &Scenario,
    features: &FeatureConfig,
    episodes: usize,
    base_seed: u64,
    exec_noise: f64,
) -> Demonstrations {
    use drive_sim::vehicle::Actuation;
    let mut demos = Demonstrations::new();
    for e in 0..episodes {
        let mut rng = StdRng::seed_from_u64(base_seed + e as u64);
        let episode = scenario.jittered(&mut rng);
        let mut world = World::new(episode);
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let mut extractor = FeatureExtractor::new(features.clone());
        agent.reset(&world);
        extractor.reset();
        let noisy = e % 2 == 0 && exec_noise > 0.0;
        while !world.is_done() {
            let obs = extractor.observe(&world);
            let a = agent.act(&world);
            demos.push(obs, vec![a.steer as f32, a.thrust as f32]);
            let executed = if noisy {
                Actuation::new(a.steer + rng.gen_range(-exec_noise..=exec_noise), a.thrust)
            } else {
                a
            };
            world.step(executed);
        }
    }
    demos
}

/// Mean nominal return and mean passed-count of a policy over deterministic
/// evaluation episodes.
pub fn evaluate_policy(
    policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    episodes: usize,
    base_seed: u64,
) -> (f64, f64) {
    let mut agent = E2eAgent::new(policy.clone(), features.clone(), base_seed, true);
    let records = run_episodes(&mut agent, scenario, episodes, base_seed);
    let n = episodes.max(1) as f64;
    let mean_return = records.iter().map(|r| r.nominal_return).sum::<f64>() / n;
    let mean_passed = records.iter().map(|r| r.passed as f64).sum::<f64>() / n;
    (mean_return, mean_passed)
}

/// Trains the end-to-end victim policy: behaviour cloning of the modular
/// teacher followed by best-checkpoint SAC refinement on the shaped reward.
pub fn train_victim(
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &VictimTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("victim-bc").seed());
    let demos = collect_demonstrations(
        scenario,
        features,
        config.demo_episodes,
        config.seed,
        config.demo_noise,
    );
    let mut policy = GaussianPolicy::new(features.observation_dim(), &config.hidden, 2, &mut rng);
    clone_policy(
        &mut policy,
        &demos,
        BcConfig {
            steps: config.bc_steps,
            batch_size: 128,
            lr: 1e-3,
        },
        &mut rng,
    );
    if config.sac_steps == 0 {
        return policy;
    }
    refine_with_sac(policy, scenario, features, config)
}

/// SAC refinement with best-checkpoint selection.
fn refine_with_sac(
    policy: GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &VictimTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("victim-sac").seed());
    let eval_seed = 90_000 + config.seed;
    let mut best = policy.clone();
    let (mut best_score, _) =
        evaluate_policy(&best, scenario, features, config.eval_episodes, eval_seed);

    let sac_config = SacConfig {
        init_alpha: 0.02,
        actor_delay: 1000,
        batch_size: 128,
        ..SacConfig::default()
    };
    let mut sac = Sac::with_actor(policy, &config.hidden, sac_config, &mut rng);
    let mut env = DrivingEnv::new(scenario.clone(), features.clone());
    let mut buffer = ReplayBuffer::new(100_000, env.obs_dim(), env.action_dim());

    let mut episode_seed = config.seed.wrapping_mul(1000) + 1;
    let mut obs = env.reset(episode_seed);
    for step in 0..config.sac_steps {
        let action = sac.act(&obs, &mut rng, false);
        let s = env.step(&action);
        buffer.push(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: s.reward,
            next_obs: s.obs.clone(),
            terminal: s.done,
        });
        let finished = s.finished();
        obs = s.obs;
        if finished {
            episode_seed += 1;
            obs = env.reset(episode_seed);
        }
        if buffer.len() >= 1000 && step % config.update_every.max(1) == 0 {
            sac.update(&buffer, &mut rng);
        }
        if (step + 1) % config.eval_every == 0 {
            let (score, _) = evaluate_policy(
                &sac.actor,
                scenario,
                features,
                config.eval_episodes,
                eval_seed,
            );
            if score > best_score {
                best_score = score;
                best = sac.actor.clone();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_features() -> FeatureConfig {
        FeatureConfig::default()
    }

    #[test]
    fn demonstrations_have_consistent_shapes() {
        let scenario = Scenario::default();
        let features = quick_features();
        let demos = collect_demonstrations(&scenario, &features, 2, 0, 0.0);
        // Two full episodes of 180 steps each.
        assert_eq!(demos.len(), 2 * scenario.max_steps);
        let mut rng = StdRng::seed_from_u64(0);
        let (o, a) = demos.sample_batch(4, &mut rng);
        assert_eq!(o.cols(), features.observation_dim());
        assert_eq!(a.cols(), 2);
    }

    #[test]
    fn bc_clone_drives_respectably() {
        // Cloning alone should reproduce most of the teacher's behaviour:
        // positive return and several NPCs passed, no barrier crash.
        let scenario = Scenario::default();
        let features = quick_features();
        let config = VictimTrainConfig {
            demo_episodes: 40,
            bc_steps: 6000,
            sac_steps: 0,
            ..VictimTrainConfig::default()
        };
        let policy = train_victim(&scenario, &features, &config);
        let (ret, passed) = evaluate_policy(&policy, &scenario, &features, 5, 777);
        assert!(ret > 100.0, "mean return {ret}");
        assert!(passed >= 4.0, "mean passed {passed}");
    }

    #[test]
    fn evaluate_policy_is_deterministic() {
        let scenario = Scenario::default();
        let features = quick_features();
        let mut rng = StdRng::seed_from_u64(5);
        let policy = GaussianPolicy::new(features.observation_dim(), &[16], 2, &mut rng);
        let a = evaluate_policy(&policy, &scenario, &features, 3, 11);
        let b = evaluate_policy(&policy, &scenario, &features, 3, 11);
        assert_eq!(a, b);
    }
}
