//! Regenerates the paper's fig4 report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("fig4");
}
