//! Criterion micro-benchmarks of the substrate hot paths: simulator
//! stepping, collision detection, sensor rendering, policy inference, and
//! SAC updates.

use criterion::{criterion_group, criterion_main, Criterion};
use drive_agents::modular::{ModularAgent, ModularConfig};
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_rl::replay::{ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_sim::geometry::{Obb, Vec2};
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor, Imu, ImuConfig, SemanticCamera};
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_world_step(c: &mut Criterion) {
    c.bench_function("world_step", |b| {
        let mut world = World::new(Scenario::default());
        b.iter(|| {
            if world.is_done() {
                world = World::new(Scenario::default());
            }
            black_box(world.step(Actuation::new(0.0, 0.1)));
        });
    });
}

fn bench_full_episode_modular(c: &mut Criterion) {
    c.bench_function("full_episode_modular_180_steps", |b| {
        b.iter(|| {
            let mut world = World::new(Scenario::default());
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            agent.reset(&world);
            while !world.is_done() {
                let a = agent.act(&world);
                world.step(a);
            }
            black_box(world.passed_count())
        });
    });
}

fn bench_obb_intersection(c: &mut Criterion) {
    c.bench_function("obb_sat_intersection", |b| {
        let x = Obb::new(Vec2::new(0.0, 0.0), 4.5, 1.9, 0.2);
        let y = Obb::new(Vec2::new(3.0, 1.0), 4.5, 1.9, -0.3);
        b.iter(|| black_box(x.intersects(black_box(&y))));
    });
}

fn bench_semantic_camera(c: &mut Criterion) {
    c.bench_function("semantic_camera_render", |b| {
        let world = World::new(Scenario::default());
        let cam = SemanticCamera::default();
        b.iter(|| black_box(cam.render(&world)));
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    c.bench_function("feature_extraction", |b| {
        let world = World::new(Scenario::default());
        let mut fx = FeatureExtractor::new(FeatureConfig::default());
        b.iter(|| black_box(fx.observe(&world)));
    });
}

fn bench_imu_window(c: &mut Criterion) {
    c.bench_function("imu_record_and_window", |b| {
        let mut world = World::new(Scenario::default());
        world.step(Actuation::new(0.1, 0.5));
        let mut imu = Imu::new(ImuConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            imu.record(&world, &mut rng);
            black_box(imu.window())
        });
    });
}

fn bench_policy_inference(c: &mut Criterion) {
    c.bench_function("policy_inference_60d", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let policy = GaussianPolicy::new(dim, &[128, 128], 2, &mut rng);
        let obs = vec![0.1f32; dim];
        b.iter(|| black_box(policy.act(&obs, &mut rng, true)));
    });
}

fn bench_sac_update(c: &mut Criterion) {
    c.bench_function("sac_update_batch128", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let mut sac = Sac::new(dim, 2, &[128, 128], SacConfig::default(), &mut rng);
        let mut buffer = ReplayBuffer::new(10_000, dim, 2);
        for i in 0..2000 {
            buffer.push(Transition {
                obs: vec![(i % 17) as f32 * 0.05; dim],
                action: vec![0.1, -0.2],
                reward: (i % 5) as f32,
                next_obs: vec![(i % 13) as f32 * 0.05; dim],
                terminal: i % 50 == 0,
            });
        }
        b.iter(|| black_box(sac.update(&buffer, &mut rng)));
    });
}

criterion_group!(
    benches,
    bench_world_step,
    bench_full_episode_modular,
    bench_obb_intersection,
    bench_semantic_camera,
    bench_feature_extraction,
    bench_imu_window,
    bench_policy_inference,
    bench_sac_update,
);
criterion_main!(benches);
