#![warn(missing_docs)]

//! # ad-action-attacks
//!
//! A complete Rust reproduction of *"Susceptibility of Autonomous Driving
//! Agents to Learning-Based Action-Space Attacks"* (DSN 2023): a
//! deterministic freeway driving simulator, a from-scratch SAC deep-RL
//! stack, the two driving agents the paper studies (modular planner+PID
//! pipeline and end-to-end DRL), learned camera/IMU action-space attack
//! policies, and the fine-tuning / progressive-neural-network defenses —
//! plus harnesses regenerating every figure of the paper's evaluation.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`seed`] — hierarchical seed derivation ([`drive_seed`])
//! * [`sim`] — simulator substrate ([`drive_sim`])
//! * [`nn`] — neural networks ([`drive_nn`])
//! * [`rl`] — soft actor-critic ([`drive_rl`])
//! * [`agents`] — driving agents ([`drive_agents`])
//! * [`attacks`] — attacks & defenses ([`attack_core`])
//! * [`metrics`] — evaluation metrics ([`drive_metrics`])
//!
//! ```
//! use ad_action_attacks::prelude::*;
//!
//! // Drive the paper's freeway scenario with the modular pipeline.
//! let mut agent = ModularAgent::new(ModularConfig::default(), 1);
//! let record = run_episode(&mut agent, &Scenario::default(), 42, None, |_, _, _| {});
//! assert!(record.collision.is_none());
//! ```

pub use attack_core as attacks;
pub use drive_agents as agents;
pub use drive_metrics as metrics;
pub use drive_nn as nn;
pub use drive_rl as rl;
pub use drive_seed as seed;
pub use drive_sim as sim;

/// One prelude across the whole stack.
pub mod prelude {
    pub use attack_core::prelude::*;
    pub use drive_agents::prelude::*;
    pub use drive_metrics::prelude::*;
    pub use drive_nn::prelude::*;
    pub use drive_rl::prelude::*;
    pub use drive_sim::prelude::*;
}
