//! The end-to-end driving agent: a learned policy mapping semantic
//! observations directly to actuation variations (Section III-C).

use crate::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::pnn::PnnPolicy;
use drive_nn::scratch::ActScratch;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Anything that maps an observation vector to a bounded action vector.
///
/// Implemented for [`GaussianPolicy`] and [`PnnPolicy`]; the defense
/// switcher in `attack-core` adds its own implementation.
pub trait Policy {
    /// Observation dimensionality this policy expects.
    fn obs_dim(&self) -> usize;
    /// Action dimensionality this policy produces.
    fn action_dim(&self) -> usize;
    /// Computes an action in `[-1, 1]^action_dim`.
    fn action(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32>;

    /// Computes an action into a caller-provided buffer, optionally using
    /// a reusable [`ActScratch`] to avoid per-step allocations.
    ///
    /// The default implementation falls back to the allocating
    /// [`Policy::action`]; implementations with an allocation-free path
    /// (e.g. [`GaussianPolicy`]) override it. Overrides must produce
    /// bit-identical actions and identical RNG consumption to `action`.
    fn action_into(
        &self,
        obs: &[f32],
        rng: &mut StdRng,
        deterministic: bool,
        scratch: &mut ActScratch,
        out: &mut Vec<f32>,
    ) {
        let _ = scratch;
        *out = self.action(obs, rng, deterministic);
    }
}

impl Policy for GaussianPolicy {
    fn obs_dim(&self) -> usize {
        GaussianPolicy::obs_dim(self)
    }
    fn action_dim(&self) -> usize {
        GaussianPolicy::action_dim(self)
    }
    fn action(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        self.act(obs, rng, deterministic)
    }
    fn action_into(
        &self,
        obs: &[f32],
        rng: &mut StdRng,
        deterministic: bool,
        scratch: &mut ActScratch,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend_from_slice(self.act_with(obs, rng, deterministic, scratch));
    }
}

impl Policy for PnnPolicy {
    fn obs_dim(&self) -> usize {
        PnnPolicy::obs_dim(self)
    }
    fn action_dim(&self) -> usize {
        PnnPolicy::action_dim(self)
    }
    fn action(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        self.act(obs, rng, deterministic)
    }
}

/// An end-to-end agent: semantic feature extractor + learned policy.
#[derive(Debug, Clone)]
pub struct E2eAgent<P: Policy> {
    policy: P,
    extractor: FeatureExtractor,
    rng: StdRng,
    deterministic: bool,
    scratch: ActScratch,
    action_buf: Vec<f32>,
}

impl<P: Policy> E2eAgent<P> {
    /// Wraps a policy for driving. `deterministic` selects `tanh(mean)`
    /// actions (evaluation) versus sampled actions.
    ///
    /// # Panics
    ///
    /// Panics if the policy's dims do not match the feature configuration
    /// (observation) and the 2-D actuation.
    pub fn new(policy: P, features: FeatureConfig, seed: u64, deterministic: bool) -> Self {
        assert_eq!(
            policy.obs_dim(),
            features.observation_dim(),
            "policy obs dim must match feature extractor"
        );
        assert_eq!(
            policy.action_dim(),
            2,
            "driving actions are (steer, thrust)"
        );
        E2eAgent {
            policy,
            extractor: FeatureExtractor::new(features),
            rng: StdRng::seed_from_u64(seed),
            deterministic,
            scratch: ActScratch::default(),
            action_buf: Vec::new(),
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Consumes the agent, returning the policy.
    pub fn into_policy(self) -> P {
        self.policy
    }
}

impl<P: Policy> Agent for E2eAgent<P> {
    fn reset(&mut self, _world: &World) {
        self.extractor.reset();
    }

    fn act(&mut self, world: &World) -> Actuation {
        let obs = self.extractor.observe(world);
        self.policy.action_into(
            &obs,
            &mut self.rng,
            self.deterministic,
            &mut self.scratch,
            &mut self.action_buf,
        );
        Actuation::new(self.action_buf[0] as f64, self.action_buf[1] as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::Scenario;

    fn policy() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        GaussianPolicy::new(dim, &[16], 2, &mut rng)
    }

    #[test]
    fn produces_bounded_actuation() {
        let mut agent = E2eAgent::new(policy(), FeatureConfig::default(), 1, false);
        let mut world = World::new(Scenario::default());
        agent.reset(&world);
        for _ in 0..5 {
            let a = agent.act(&world);
            assert!(a.steer.abs() <= 1.0 && a.thrust.abs() <= 1.0);
            world.step(a);
        }
    }

    #[test]
    fn deterministic_agent_is_reproducible() {
        let run = || {
            let mut agent = E2eAgent::new(policy(), FeatureConfig::default(), 1, true);
            let mut world = World::new(Scenario::default());
            agent.reset(&world);
            let mut actions = Vec::new();
            for _ in 0..10 {
                let a = agent.act(&world);
                actions.push(a);
                world.step(a);
            }
            actions
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "obs dim")]
    fn dim_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let bad = GaussianPolicy::new(7, &[8], 2, &mut rng);
        let _ = E2eAgent::new(bad, FeatureConfig::default(), 0, true);
    }
}
