//! Bounded MPMC queue with deadline-window batch pops.
//!
//! The admission point of the threaded server: capacity is enforced at
//! `push` (excess load is *shed*, typed and counted by the caller — never
//! silently dropped), and workers pop micro-batches: block for the first
//! item, then hold the batch open for the configured window (or until it
//! fills) so concurrent requests share one GEMM pass.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: shed for backpressure.
    Full,
    /// Closed for draining: no new admissions.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closable MPMC queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A worker panicking while holding this lock is handled by the
        // supervisor (requeue + respawn); the queue data itself is always
        // consistent, so poisoning is ignorable.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Admits `item`, or returns it with the typed refusal.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] once [`BoundedQueue::close`] was called,
    /// [`PushError::Full`] at capacity. The item always comes back to the
    /// caller for outcome accounting.
    pub fn push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut g = self.lock();
        if g.closed {
            return Err((item, PushError::Closed));
        }
        if g.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Returns previously-popped items to the FRONT of the queue (used by
    /// the supervisor to rescue a dead worker's in-flight batch). Ignores
    /// capacity — the items were already admitted once — and works on a
    /// closed queue so drains can still rescue.
    pub fn requeue_front(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut g = self.lock();
        for item in items.into_iter().rev() {
            g.items.push_front(item);
        }
        drop(g);
        self.not_empty.notify_all();
    }

    /// Pops a micro-batch: blocks up to `first_wait` for the first item,
    /// then keeps the batch open until `window` elapses or `max` items
    /// are in hand. Returns an empty vec on timeout with nothing queued;
    /// returns `None` when the queue is closed **and** empty (the drain
    /// is complete — the worker should exit).
    pub fn pop_batch(&self, max: usize, first_wait: Duration, window: Duration) -> Option<Vec<T>> {
        let deadline = Instant::now() + first_wait;
        let mut g = self.lock();
        while g.items.is_empty() {
            if g.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Vec::new());
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
        // First item in hand: hold the batch open for the window.
        let close_at = Instant::now() + window;
        loop {
            if g.items.len() >= max {
                break;
            }
            let now = Instant::now();
            if now >= close_at || g.closed {
                break;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(g, close_at - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
        let take = g.items.len().min(max);
        Some(g.items.drain(..take).collect())
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and blocked poppers drain what remains, then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_typed_at_capacity_and_when_closed() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let (item, err) = q.push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        q.close();
        let (item, err) = q.push(4).unwrap_err();
        assert_eq!((item, err), (4, PushError::Closed));
        // Drain still proceeds after close.
        assert_eq!(
            q.pop_batch(10, Duration::from_millis(1), Duration::ZERO),
            Some(vec![1, 2])
        );
        assert_eq!(
            q.pop_batch(10, Duration::from_millis(1), Duration::ZERO),
            None
        );
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let batch = q
            .pop_batch(4, Duration::from_millis(1), Duration::ZERO)
            .unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn empty_timeout_returns_empty_batch() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let batch = q
            .pop_batch(4, Duration::from_millis(5), Duration::ZERO)
            .unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn requeue_front_preserves_order_and_ignores_capacity() {
        let q = BoundedQueue::new(2);
        q.push(3).unwrap();
        q.requeue_front(vec![1, 2]);
        assert_eq!(q.len(), 3, "capacity bypassed for rescue");
        let batch = q
            .pop_batch(8, Duration::from_millis(1), Duration::ZERO)
            .unwrap();
        assert_eq!(batch, vec![1, 2, 3]);
    }

    #[test]
    fn window_waits_for_stragglers() {
        let q = Arc::new(BoundedQueue::new(16));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(1).unwrap();
        });
        // Window long enough to catch the straggler.
        let batch = q
            .pop_batch(4, Duration::from_millis(100), Duration::from_millis(300))
            .unwrap();
        t.join().unwrap();
        assert_eq!(batch, vec![0, 1], "straggler joined the batch");
    }

    #[test]
    fn full_batch_closes_the_window_early() {
        let q = BoundedQueue::new(16);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        let start = Instant::now();
        let batch = q
            .pop_batch(4, Duration::from_millis(100), Duration::from_secs(5))
            .unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "no window wait when full"
        );
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t =
            std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(30), Duration::ZERO));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None, "popper saw the drain end");
    }
}
