#![warn(missing_docs)]

//! # drive-agents — the two autonomous driving agents under study
//!
//! The paper compares a **modular driving pipeline** (waypoint planner +
//! behaviour layer + PID feedback control, Section III-B) against an
//! **end-to-end DRL agent** (SAC over semantic observations, Section
//! III-C). Both live here, behind the common [`Agent`] trait, together with
//! the shaped nominal driving reward, the RL environment used to train the
//! end-to-end policy, and the episode runner used by every experiment.

use drive_sim::vehicle::Actuation;
use drive_sim::world::World;

pub mod behavior;
pub mod driving_env;
pub mod e2e;
pub mod fallback;
pub mod modular;
pub mod pid;
pub mod reward;
pub mod runner;
pub mod training;

/// A driving agent: maps the world state to actuation-variation commands
/// `(nu, gamma)` that feed the Eq. (1) actuator smoothing.
pub trait Agent {
    /// Called at episode start.
    fn reset(&mut self, world: &World);
    /// Computes this step's actuation variation.
    fn act(&mut self, world: &World) -> Actuation;
}

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::behavior::{BehaviorConfig, BehaviorPlanner, Maneuver};
    pub use crate::driving_env::{DrivingEnv, SteerAttack};
    pub use crate::e2e::{E2eAgent, Policy};
    pub use crate::fallback::{SafetyConfig, SafetyController};
    pub use crate::modular::{ModularAgent, ModularConfig};
    pub use crate::pid::{Pid, PidConfig};
    pub use crate::reward::{RewardConfig, RewardShaper};
    pub use crate::runner::{run_episode, run_episode_with_faults, run_episodes, SteerAttacker};
    pub use crate::training::{
        collect_demonstrations, evaluate_policy, train_victim, VictimTrainConfig,
    };
    pub use crate::Agent;
}
