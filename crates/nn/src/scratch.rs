//! Reusable workspaces for allocation-free network evaluation.
//!
//! The hot paths in this repo call tiny networks once per simulated
//! control step (batch size 1), so per-call `Mat` allocations dominate
//! the cost of the arithmetic. A [`Scratch`] is a ping-pong buffer pair
//! that a chained layer evaluation bounces between; an [`ActScratch`]
//! bundles everything a single-observation `act` call needs. Both start
//! empty and warm up to the right shapes on first use, after which
//! repeated calls are allocation-free.
//!
//! Scratch buffers hold no learned state — they are pure workspaces, so
//! cloning an agent clones only buffer capacity, never behaviour.

use crate::mat::Mat;

/// Ping-pong buffer pair for chained layer evaluation (see
/// [`crate::mlp::Mlp::forward_with`]).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pub(crate) a: Mat,
    pub(crate) b: Mat,
}

/// Workspace for a single-observation policy `act` call: the 1-row
/// observation matrix, the trunk's ping-pong buffers, and the action
/// output vector.
#[derive(Debug, Clone, Default)]
pub struct ActScratch {
    pub(crate) obs: Mat,
    pub(crate) trunk: Scratch,
    pub(crate) action: Vec<f32>,
}

/// Workspace for a micro-batched deterministic `act` call: the
/// `(batch, obs_dim)` stacked observation matrix, the trunk's ping-pong
/// buffers, and the `(batch, action_dim)` action output (see
/// `GaussianPolicy::act_batch_with`). Reused across batches of varying
/// size without reallocation once warmed to the largest batch seen.
#[derive(Debug, Clone, Default)]
pub struct BatchActScratch {
    pub(crate) obs: Mat,
    pub(crate) trunk: Scratch,
    pub(crate) actions: Mat,
}

/// Workspace for a policy backward pass through a sampled head: the
/// `(batch, 2 * action_dim)` raw-head gradient and the trunk's ping-pong
/// buffers (see `GaussianPolicy::backward_sample_with`).
#[derive(Debug, Clone, Default)]
pub struct SampleBackScratch {
    pub(crate) grad_raw: Mat,
    pub(crate) trunk: Scratch,
}
