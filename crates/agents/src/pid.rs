//! Proportional–integral–derivative controller with output clamping and
//! anti-windup, as used by the modular driving pipeline's longitudinal and
//! lateral control (Section III-B of the paper).

use serde::{Deserialize, Serialize};

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric output clamp (`|out| <= limit`).
    pub limit: f64,
    /// Symmetric clamp on the integral term's contribution (anti-windup).
    pub integral_limit: f64,
}

impl PidConfig {
    /// A purely proportional controller.
    pub fn p(kp: f64, limit: f64) -> Self {
        PidConfig {
            kp,
            ki: 0.0,
            kd: 0.0,
            limit,
            integral_limit: limit,
        }
    }
}

/// A discrete PID controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with zeroed state.
    pub fn new(config: PidConfig) -> Self {
        Pid {
            config,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Resets integral and derivative memory (call at episode start).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Advances the controller by one step of `dt` seconds with the given
    /// error, returning the clamped output.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let c = self.config;
        self.integral =
            (self.integral + error * dt).clamp(-c.integral_limit.abs(), c.integral_limit.abs());
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        let out = c.kp * error + c.ki * self.integral + c.kd * derivative;
        out.clamp(-c.limit.abs(), c.limit.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only() {
        let mut pid = Pid::new(PidConfig::p(2.0, 10.0));
        assert_eq!(pid.step(1.5, 0.1), 3.0);
        assert_eq!(pid.step(-1.0, 0.1), -2.0);
    }

    #[test]
    fn output_clamped() {
        let mut pid = Pid::new(PidConfig::p(100.0, 1.0));
        assert_eq!(pid.step(5.0, 0.1), 1.0);
        assert_eq!(pid.step(-5.0, 0.1), -1.0);
    }

    #[test]
    fn integral_accumulates_and_saturates() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 1.0,
            kd: 0.0,
            limit: 100.0,
            integral_limit: 0.5,
        });
        let mut out = 0.0;
        for _ in 0..100 {
            out = pid.step(1.0, 0.1);
        }
        // Anti-windup keeps the integral contribution at the limit.
        assert!((out - 0.5).abs() < 1e-9);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 0.0,
            kd: 1.0,
            limit: 100.0,
            integral_limit: 1.0,
        });
        // First step: no derivative (no history).
        assert_eq!(pid.step(1.0, 0.1), 0.0);
        // Error jumped by 1 over dt 0.1 → derivative 10.
        assert!((pid.step(2.0, 0.1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_memory() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 1.0,
            kd: 1.0,
            limit: 100.0,
            integral_limit: 10.0,
        });
        pid.step(1.0, 0.1);
        pid.step(2.0, 0.1);
        pid.reset();
        // After reset, behaves like a fresh controller.
        assert_eq!(pid.step(1.0, 0.1), 0.1); // integral only: 1.0 * 0.1
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: y' = u; PI controller tracking setpoint 1.
        let mut pid = Pid::new(PidConfig {
            kp: 2.0,
            ki: 0.5,
            kd: 0.0,
            limit: 5.0,
            integral_limit: 2.0,
        });
        let mut y = 0.0;
        for _ in 0..300 {
            let u = pid.step(1.0 - y, 0.05);
            y += u * 0.05;
        }
        assert!((y - 1.0).abs() < 0.02, "y = {y}");
    }
}
