//! The attack budget `epsilon` (Section IV-C).
//!
//! The attacker's raw policy output lies in `[-1, 1]`; the budget scales it
//! to the injected perturbation `delta in [-epsilon, epsilon]`. The paper
//! sweeps budgets from 0 (no attack) up to 1.2 (beyond the mechanical
//! variation limit — excess is absorbed by the simulator's clamp).

use serde::{Deserialize, Serialize};

/// A non-negative attack budget.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct AttackBudget(f64);

impl AttackBudget {
    /// Zero budget: the nominal, unattacked case.
    pub const ZERO: AttackBudget = AttackBudget(0.0);

    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "attack budget must be a non-negative finite number, got {epsilon}"
        );
        AttackBudget(epsilon)
    }

    /// The raw `epsilon` value.
    pub fn epsilon(self) -> f64 {
        self.0
    }

    /// Whether this is the nominal (no-attack) case.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scales a raw policy output in `[-1, 1]` to a perturbation
    /// `delta in [-epsilon, epsilon]`.
    pub fn scale(self, raw: f64) -> f64 {
        self.0 * raw.clamp(-1.0, 1.0)
    }

    /// The paper's Fig. 4 budget grid: `{0, 0.25, 0.5, 0.75, 1.0}`.
    pub fn fig4_grid() -> Vec<AttackBudget> {
        [0.0, 0.25, 0.5, 0.75, 1.0]
            .into_iter()
            .map(AttackBudget::new)
            .collect()
    }

    /// The paper's Fig. 5 budget sweep: `0.0..=1.2` in steps of `0.1`.
    pub fn fig5_grid() -> Vec<AttackBudget> {
        (0..=12)
            .map(|i| AttackBudget::new(i as f64 * 0.1))
            .collect()
    }

    /// The adversarial-training grid of Section VI-A: `0.0..=1.0` in steps
    /// of `0.1`.
    pub fn training_grid() -> Vec<AttackBudget> {
        (0..=10)
            .map(|i| AttackBudget::new(i as f64 * 0.1))
            .collect()
    }
}

impl std::fmt::Display for AttackBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_clamps_and_scales() {
        let b = AttackBudget::new(0.5);
        assert_eq!(b.scale(1.0), 0.5);
        assert_eq!(b.scale(2.0), 0.5);
        assert_eq!(b.scale(-0.5), -0.25);
        assert_eq!(AttackBudget::ZERO.scale(1.0), 0.0);
    }

    #[test]
    fn grids_match_paper() {
        assert_eq!(AttackBudget::fig4_grid().len(), 5);
        assert_eq!(AttackBudget::fig5_grid().len(), 13);
        assert!((AttackBudget::fig5_grid()[12].epsilon() - 1.2).abs() < 1e-12);
        assert_eq!(AttackBudget::training_grid().len(), 11);
    }

    #[test]
    fn zero_detection() {
        assert!(AttackBudget::ZERO.is_zero());
        assert!(!AttackBudget::new(0.1).is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_rejected() {
        let _ = AttackBudget::new(-0.1);
    }
}
