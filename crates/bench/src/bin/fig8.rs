//! Regenerates the paper's fig8 report via the experiment registry. See `repro_bench::cli`.

fn main() {
    std::process::exit(repro_bench::cli::main_for("fig8"));
}
