//! Sharded multi-process runs: crash-safe journal leases + work stealing.
//!
//! PR 5's journal made one process crash-safe; this module makes N of
//! them *coordinate*. Any number of `repro_bench shard <dir>` workers
//! (potentially on different machines, via a shared directory) race to
//! claim grid cells, compute them, and publish the same checksummed
//! sidecars a single-process journal would — then `repro_bench merge
//! <dir>` ([`crate::merge`]) assembles CSVs and manifests byte-identical
//! to a single-process golden run, because every cell is a pure function
//! of its seed namespace and output ordering is defined by the grid, not
//! by completion time.
//!
//! ## Shared-directory layout
//!
//! * `shard.header` — immutable run header (seed, config hash, scale,
//!   experiment selection), written once via atomic rename; every worker
//!   verifies it before touching anything else, so two differently
//!   configured runs can never interleave in one directory.
//! * `leases/cell-<key>.lease` — one claim per in-flight cell, taken by
//!   atomically creating the file (`O_EXCL`). The body carries the owner
//!   id and an FNV checksum; the file mtime is the owner's heartbeat,
//!   renewed by a background thread while the cell computes.
//! * `cells/cell-<key>-<owner>.ckpt` — completed, checksummed episode
//!   sidecars (exactly PR 5's format, owner-tagged so the merge can
//!   attribute — and cross-check — every result).
//! * `workers/<owner>/wal.bin` + `progress.csv` — a per-worker WAL of
//!   `cell` records (the journal frame format) and flush-per-row
//!   progress events ([`drive_metrics::progress`]).
//!
//! ## Work stealing & crash safety
//!
//! A worker that reaches a cell someone else holds waits on a seeded,
//! jittered backoff ([`RetryPolicy::lease_contention`]); when the
//! lease's heartbeat goes older than the TTL the waiter *steals* it: the
//! stale lease is atomically renamed to a per-stealer tombstone (two
//! racing stealers, one `rename` winner), removed, and re-claimed with
//! `O_EXCL`. The victim's partial work is simply ignored — sidecars are
//! written via atomic rename, so there are no partials on disk, and the
//! cell re-runs from its journaled seed. A SIGKILL therefore costs
//! latency, never correctness. If the slow owner was merely stalled and
//! later publishes too, both sidecars carry the same checksum (cells are
//! deterministic) and the merge dedupes them; differing checksums are a
//! hard merge error naming both owners.
//!
//! A polite SIGTERM latches [`drive_core::shutdown`]; the worker unwinds
//! at the next cell boundary and a registered drain hook releases every
//! held lease so peers do not wait out the TTL.

use crate::cli::{CliArgs, CliError};
use crate::engine::{Experiment, RunContext};
use crate::journal::{encode_frame, scan_frames, RunHeader, MAGIC};
use drive_core::retry::RetryPolicy;
use drive_core::shutdown;
use drive_metrics::progress::WorkerProgress;
use drive_seed::fnv1a_64;
use drive_sim::record::{decode_records, encode_records, EpisodeRecord};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default lease TTL: a heartbeat older than this is stealable.
pub const DEFAULT_TTL: Duration = Duration::from_secs(30);

/// First line of the shared `shard.header` file.
const HEADER_MAGIC: &str = "shard-v1";

/// The immutable header of a sharded run: PR 5's [`RunHeader`] plus the
/// experiment selection, so every worker provably runs the same grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHeader {
    /// Seed / config-hash / scale pinning (shared with the journal).
    pub run: RunHeader,
    /// Registry names of the experiments in the run, in order.
    pub selection: Vec<String>,
}

impl ShardHeader {
    fn encode(&self) -> String {
        let mut body = format!("{HEADER_MAGIC}\n{}\nsel", self.run.encode());
        for name in &self.selection {
            body.push(' ');
            body.push_str(name);
        }
        body.push('\n');
        let sum = fnv1a_64(body.as_bytes());
        format!("{body}sum {sum:016x}\n")
    }

    fn decode(text: &str) -> Result<ShardHeader, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER_MAGIC) {
            return Err(format!("not a {HEADER_MAGIC} header"));
        }
        let run_line = lines.next().ok_or("missing run line")?;
        let run = RunHeader::decode(run_line).map_err(|e| e.to_string())?;
        let sel_line = lines.next().ok_or("missing sel line")?;
        let selection: Vec<String> = sel_line
            .strip_prefix("sel")
            .ok_or("missing sel line")?
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let sum_line = lines.next().ok_or("missing sum line")?;
        let recorded = sum_line
            .strip_prefix("sum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("bad sum line")?;
        let body_len = text.rfind("sum ").ok_or("bad sum line")?;
        if fnv1a_64(&text.as_bytes()[..body_len]) != recorded {
            return Err("header checksum mismatch".to_string());
        }
        Ok(ShardHeader { run, selection })
    }

    /// Publishes this header at `<dir>/shard.header` (atomic rename), or
    /// verifies the one already there. The first worker to arrive writes
    /// it; every later worker — and the merge — must match it exactly.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory already belongs to a
    /// differently configured run, or on I/O failure.
    pub fn write_or_verify(&self, dir: &Path) -> Result<(), String> {
        let path = dir.join("shard.header");
        if !path.exists() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let tmp = dir.join(format!("shard.header.tmp-{}", std::process::id()));
            std::fs::write(&tmp, self.encode()).map_err(|e| e.to_string())?;
            std::fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
        }
        // Read back what actually landed: under a racing first-write the
        // rename winner is arbitrary, but all correctly configured
        // workers write identical bytes, so any mismatch is a real
        // configuration conflict.
        let on_disk = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
        let decoded = ShardHeader::decode(&on_disk)
            .map_err(|e| format!("{} is unreadable: {e}", path.display()))?;
        if &decoded != self {
            return Err(format!(
                "{} belongs to a different run (on disk: seed {:016x}, config {:016x}, \
                 scale {}x{}, sel [{}]; this worker: seed {:016x}, config {:016x}, \
                 scale {}x{}, sel [{}])",
                path.display(),
                decoded.run.seed,
                decoded.run.config_hash,
                decoded.run.box_episodes,
                decoded.run.scatter_rounds,
                decoded.selection.join(" "),
                self.run.seed,
                self.run.config_hash,
                self.run.box_episodes,
                self.run.scatter_rounds,
                self.selection.join(" "),
            ));
        }
        Ok(())
    }

    /// Loads and verifies the header of an existing shard directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the header is absent or corrupt.
    pub fn load(dir: &Path) -> Result<ShardHeader, String> {
        let path = dir.join("shard.header");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ShardHeader::decode(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Knobs of one shard worker.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// The shared run directory.
    pub dir: PathBuf,
    /// This worker's id (lease bodies, sidecar tags, WAL/progress paths).
    pub owner: String,
    /// Heartbeats older than this are stealable.
    pub ttl: Duration,
    /// How often the heartbeat thread renews held leases.
    pub heartbeat: Duration,
    /// Seed for the contention-backoff jitter stream (derived from the
    /// run's `SeedTree` per worker, so waits are deterministic per worker
    /// yet decorrelated across workers).
    pub backoff_seed: u64,
}

impl ShardConfig {
    /// A config with the default TTL and a heartbeat at TTL/10.
    pub fn new(dir: impl Into<PathBuf>, owner: impl Into<String>) -> Self {
        let ttl = DEFAULT_TTL;
        ShardConfig {
            dir: dir.into(),
            owner: owner.into(),
            ttl,
            heartbeat: heartbeat_for(ttl),
            backoff_seed: 0,
        }
    }
}

/// The conventional heartbeat period for a TTL: a tenth, floored at
/// 50 ms, so several renewals fit inside any steal window.
pub fn heartbeat_for(ttl: Duration) -> Duration {
    (ttl / 10).max(Duration::from_millis(50))
}

/// Whether `owner` is safe to embed in file names.
pub fn valid_owner(owner: &str) -> bool {
    !owner.is_empty()
        && owner.len() <= 64
        && owner
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Per-worker WAL: PR 5's frame format (`MAGIC`, header record, `cell`
/// records), one file per worker so multi-process appends never
/// interleave. Re-opened (torn tail truncated) when a killed worker
/// restarts under the same id.
struct WorkerWal {
    file: std::fs::File,
}

impl WorkerWal {
    fn open(path: &Path, header: &RunHeader) -> std::io::Result<WorkerWal> {
        if let Ok(bytes) = std::fs::read(path) {
            if bytes.starts_with(MAGIC) {
                let (records, valid_len) = scan_frames(&bytes[MAGIC.len()..]);
                let matches = records
                    .first()
                    .and_then(|line| RunHeader::decode(line).ok())
                    .is_some_and(|h| &h == header);
                if matches {
                    let file = std::fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len((MAGIC.len() + valid_len) as u64)?;
                    let mut file = file;
                    use std::io::Seek as _;
                    file.seek(std::io::SeekFrom::End(0))?;
                    return Ok(WorkerWal { file });
                }
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&encode_frame(&header.encode()))?;
        file.sync_data()?;
        Ok(WorkerWal { file })
    }

    fn append_cell(
        &mut self,
        key: u64,
        digest: u64,
        episodes: usize,
        label: &str,
    ) -> std::io::Result<()> {
        self.file.write_all(&encode_frame(&format!(
            "cell {key:016x} {digest:016x} {episodes} {label}"
        )))?;
        self.file.sync_data()
    }
}

/// The in-process side of one shard worker: lease acquisition, sidecar
/// publication, and the wait/steal loop. Shared via `Arc` between the
/// harness (through [`RunContext::shard`](crate::engine::RunContext)),
/// the heartbeat thread, and the shutdown drain hook.
pub struct ShardState {
    config: ShardConfig,
    backoff: RetryPolicy,
    held: Mutex<HashSet<u64>>,
    wal: Mutex<WorkerWal>,
    progress: Mutex<WorkerProgress>,
    heartbeat_stop: Arc<AtomicBool>,
    opportunistic: AtomicBool,
}

/// A held lease, released on drop (so an unwinding cell — panic or
/// graceful shutdown — frees its claim immediately).
struct LeaseGuard<'a> {
    state: &'a ShardState,
    key: u64,
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        self.state.release(self.key);
    }
}

impl ShardState {
    /// Opens (or re-opens) this worker's slice of the shard directory:
    /// lease/cell areas, the per-worker WAL (torn tail truncated on
    /// restart), and a fresh progress log.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; rejects invalid owner ids.
    pub fn open(config: ShardConfig, header: &RunHeader) -> std::io::Result<ShardState> {
        if !valid_owner(&config.owner) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "invalid worker id '{}' (use [A-Za-z0-9._-], max 64 chars)",
                    config.owner
                ),
            ));
        }
        std::fs::create_dir_all(config.dir.join("leases"))?;
        std::fs::create_dir_all(config.dir.join("cells"))?;
        let worker_dir = config.dir.join("workers").join(&config.owner);
        std::fs::create_dir_all(&worker_dir)?;
        let wal = WorkerWal::open(&worker_dir.join("wal.bin"), header)?;
        let progress = WorkerProgress::create(worker_dir.join("progress.csv"), &config.owner)?;
        Ok(ShardState {
            config,
            backoff: RetryPolicy::lease_contention(),
            held: Mutex::new(HashSet::new()),
            wal: Mutex::new(wal),
            progress: Mutex::new(progress),
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            opportunistic: AtomicBool::new(false),
        })
    }

    /// Switches between the two sweep modes. Every worker traverses the
    /// grid in the same order, so a worker that *waited* on every busy
    /// cell would stay in lockstep behind whoever claimed the first cell
    /// — N processes, single-process wall clock. Instead the driver runs
    /// each experiment twice: an **opportunistic** pass (busy cells are
    /// skipped with placeholder records, so workers divide the grid
    /// ~evenly and compute in parallel; the pass's aggregate output is
    /// discarded — workers never sink outputs), then a **completing**
    /// pass in which every cell loads from a published sidecar, is
    /// computed under a fresh claim, or is block-waited on (steals
    /// included) until its owner publishes.
    pub fn set_opportunistic(&self, on: bool) {
        self.opportunistic.store(on, Ordering::SeqCst);
    }

    /// This worker's id.
    pub fn owner(&self) -> &str {
        &self.config.owner
    }

    /// The `event=count` progress summary (see
    /// [`WorkerProgress::summary`]).
    pub fn summary(&self) -> String {
        self.progress.lock().expect("progress lock").summary()
    }

    /// Count of one progress event kind (test/observability hook).
    pub fn event_count(&self, event: &str) -> u64 {
        self.progress.lock().expect("progress lock").count(event)
    }

    /// Number of leases currently held (test/observability hook).
    pub fn held_count(&self) -> usize {
        self.held.lock().expect("held lock").len()
    }

    fn lease_path(&self, key: u64) -> PathBuf {
        self.config
            .dir
            .join("leases")
            .join(format!("cell-{key:016x}.lease"))
    }

    fn sidecar_path(&self, key: u64) -> PathBuf {
        self.config
            .dir
            .join("cells")
            .join(format!("cell-{key:016x}-{}.ckpt", self.config.owner))
    }

    fn log(&self, event: &'static str, cell: &str, detail: &str) {
        let _ = self
            .progress
            .lock()
            .expect("progress lock")
            .event(event, cell, detail);
    }

    /// Runs one grid cell under the lease protocol: load a published
    /// sidecar if any worker already finished it, otherwise claim the
    /// cell (stealing a stale claim if needed) and compute it, otherwise
    /// wait out the current owner on the jittered backoff — or, in an
    /// opportunistic sweep (see [`ShardState::set_opportunistic`]),
    /// return placeholder records immediately so the worker moves on to
    /// unclaimed work. `compute` returns the records plus a clean flag;
    /// only clean, complete cells publish (mirroring the single-process
    /// journal's rule), so placeholders can never leak into a sidecar.
    pub fn run_cell(
        &self,
        key: u64,
        label: &str,
        episodes: usize,
        compute: impl FnOnce() -> (Vec<EpisodeRecord>, bool),
    ) -> Vec<EpisodeRecord> {
        let mut attempt = 0usize;
        loop {
            if let Some(records) = self.try_load(key, episodes) {
                if attempt > 0 {
                    self.log("waited", label, &format!("{attempt} poll(s)"));
                }
                self.log("loaded", label, "");
                return records;
            }
            // Graceful-shutdown safe point: between cells (and between
            // polls of a contended cell) nothing is held.
            if shutdown::requested() {
                std::panic::panic_any(shutdown::ShutdownRequested);
            }
            if self.try_acquire(key, label) {
                let guard = LeaseGuard { state: self, key };
                let (records, clean) = compute();
                if clean && records.len() == episodes {
                    if let Err(e) = self.publish(key, label, episodes, &records) {
                        eprintln!(
                            "warning: worker {} could not publish cell {label}: {e}",
                            self.config.owner
                        );
                    }
                } else {
                    eprintln!(
                        "warning: worker {} leaves cell {label} unpublished \
                         ({} of {episodes} episode(s), clean={clean})",
                        self.config.owner,
                        records.len()
                    );
                }
                drop(guard);
                return records;
            }
            // Contended. Opportunistic sweep: skip it — another worker
            // owns it, our aggregate is discarded anyway, and there is
            // unclaimed work further along the grid.
            if self.opportunistic.load(Ordering::SeqCst) {
                self.log("deferred", label, "");
                return vec![EpisodeRecord::default(); episodes];
            }
            // Completing sweep: wait on this worker's deterministic
            // jitter stream, decorrelated per cell so parked workers do
            // not re-poll in lockstep.
            let pause = self.backoff.backoff_for(
                attempt.min(self.backoff.max_attempts),
                self.config.backoff_seed ^ key,
            );
            attempt += 1;
            std::thread::sleep(pause.max(Duration::from_millis(1)));
        }
    }

    /// Loads any published sidecar for `key` (whoever computed it):
    /// checkpoint checksum verified, records decoded, episode count
    /// checked. Every failure degrades to "not published yet".
    fn try_load(&self, key: u64, episodes: usize) -> Option<Vec<EpisodeRecord>> {
        let prefix = format!("cell-{key:016x}-");
        let entries = std::fs::read_dir(self.config.dir.join("cells")).ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with(&prefix) || !name.ends_with(".ckpt") {
                continue;
            }
            let Ok(text) = drive_nn::checkpoint::load_from_file(entry.path()) else {
                continue; // mid-write or corrupt: treat as unpublished
            };
            match decode_records(&text) {
                Ok(records) if records.len() == episodes => return Some(records),
                _ => continue,
            }
        }
        None
    }

    /// Tries to claim `key`: `O_EXCL` create first, stale-steal second.
    /// Public for the `lease_claim_ns` micro-bench; experiments go
    /// through [`ShardState::run_cell`], which drives this internally.
    pub fn try_acquire(&self, key: u64, label: &str) -> bool {
        let path = self.lease_path(key);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                let body = format!("lease {key:016x} {}\n", self.config.owner);
                let sum = fnv1a_64(body.as_bytes());
                let _ = file.write_all(format!("{body}sum {sum:016x}\n").as_bytes());
                let _ = file.sync_data();
                self.held.lock().expect("held lock").insert(key);
                self.log("claimed", label, "");
                true
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => self.try_steal(key, label),
            Err(e) => {
                eprintln!(
                    "warning: worker {} lease create failed for {label}: {e}",
                    self.config.owner
                );
                false
            }
        }
    }

    /// Steals `key`'s lease if its heartbeat is older than the TTL. The
    /// rename-to-tombstone is the atomic arbiter: of two racing
    /// stealers exactly one `rename` succeeds, the loser re-polls.
    fn try_steal(&self, key: u64, label: &str) -> bool {
        let path = self.lease_path(key);
        let stale = match std::fs::metadata(&path) {
            Ok(meta) => meta
                .modified()
                .ok()
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age > self.config.ttl),
            // Vanished between the failed create and here: the owner
            // released it. Report busy; the next poll re-tries the
            // create path.
            Err(_) => false,
        };
        if !stale {
            return false;
        }
        let tomb = self
            .config
            .dir
            .join("leases")
            .join(format!("cell-{key:016x}.steal-{}", self.config.owner));
        if std::fs::rename(&path, &tomb).is_err() {
            return false; // another stealer won the rename
        }
        let prev_owner = std::fs::read_to_string(&tomb)
            .ok()
            .and_then(|text| {
                text.lines()
                    .next()
                    .and_then(|l| l.split_whitespace().nth(2).map(str::to_string))
            })
            .unwrap_or_else(|| "(unreadable)".to_string());
        let _ = std::fs::remove_file(&tomb);
        self.log("stolen", label, &format!("from {prev_owner}"));
        // The slot is free now, but a third worker may legitimately take
        // it first — stealing guarantees progress, not that *we* win.
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                let body = format!("lease {key:016x} {}\n", self.config.owner);
                let sum = fnv1a_64(body.as_bytes());
                let _ = file.write_all(format!("{body}sum {sum:016x}\n").as_bytes());
                let _ = file.sync_data();
                self.held.lock().expect("held lock").insert(key);
                self.log("claimed", label, "post-steal");
                true
            }
            Err(_) => false,
        }
    }

    /// Publishes a completed cell: atomic checksummed sidecar first, WAL
    /// record second (sidecar-first ordering, as PR 5), progress row
    /// last.
    fn publish(
        &self,
        key: u64,
        label: &str,
        episodes: usize,
        records: &[EpisodeRecord],
    ) -> std::io::Result<()> {
        let text = encode_records(records);
        let digest = fnv1a_64(text.as_bytes());
        drive_nn::checkpoint::save_to_file(self.sidecar_path(key), &text)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.wal
            .lock()
            .expect("wal lock")
            .append_cell(key, digest, episodes, label)?;
        self.log("computed", label, &format!("{digest:016x}"));
        Ok(())
    }

    /// Releases `key` if this worker still owns it (a thief may have
    /// taken a stalled lease; unlinking someone else's claim would let a
    /// third worker double-acquire).
    pub fn release(&self, key: u64) {
        self.held.lock().expect("held lock").remove(&key);
        let path = self.lease_path(key);
        let ours = std::fs::read_to_string(&path).is_ok_and(|text| {
            text.lines()
                .next()
                .and_then(|l| l.split_whitespace().nth(2))
                == Some(self.config.owner.as_str())
        });
        if ours {
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Releases every held lease (drain hook / end-of-run cleanup).
    pub fn release_all(&self) {
        let keys: Vec<u64> = self
            .held
            .lock()
            .expect("held lock")
            .iter()
            .copied()
            .collect();
        for key in keys {
            self.release(key);
            self.log("released", &format!("{key:016x}"), "drain");
        }
    }

    /// Spawns the heartbeat thread: every `config.heartbeat`, bump the
    /// mtime of every held lease (owner-checked, so a stolen lease is
    /// never resurrected). Returns a handle that stops the thread when
    /// dropped.
    pub fn spawn_heartbeat(self: &Arc<Self>) -> HeartbeatHandle {
        let state = Arc::clone(self);
        let stop = Arc::clone(&self.heartbeat_stop);
        let handle = std::thread::spawn(move || loop {
            if state.heartbeat_stop.load(Ordering::SeqCst) {
                return;
            }
            state.renew_held();
            std::thread::sleep(state.config.heartbeat);
        });
        HeartbeatHandle {
            stop,
            handle: Some(handle),
        }
    }

    /// One heartbeat pass (also callable directly from tests).
    pub fn renew_held(&self) {
        let keys: Vec<u64> = self
            .held
            .lock()
            .expect("held lock")
            .iter()
            .copied()
            .collect();
        for key in keys {
            let path = self.lease_path(key);
            let ours = std::fs::read_to_string(&path).is_ok_and(|text| {
                text.lines()
                    .next()
                    .and_then(|l| l.split_whitespace().nth(2))
                    == Some(self.config.owner.as_str())
            });
            if !ours {
                // Stolen out from under us: stop renewing (and never
                // unlink — it belongs to the thief now).
                self.held.lock().expect("held lock").remove(&key);
                continue;
            }
            if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
                let _ = file.set_modified(std::time::SystemTime::now());
            }
        }
    }
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("dir", &self.config.dir)
            .field("owner", &self.config.owner)
            .field("ttl", &self.config.ttl)
            .finish_non_exhaustive()
    }
}

/// Stops the heartbeat thread when dropped.
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Parsed `repro_bench shard` command line: the shared directory, worker
/// identity/TTL knobs, and the standard experiment-selection flags.
#[derive(Debug)]
pub struct ShardCli {
    /// The shared run directory (first positional argument).
    pub dir: PathBuf,
    /// Worker id (`--worker`, default `w<pid>`).
    pub worker: String,
    /// Lease TTL (`--ttl-ms`).
    pub ttl: Duration,
    /// Heartbeat period (`--heartbeat-ms`, default TTL/10).
    pub heartbeat: Duration,
    /// Everything else: selection, scale, pipeline, fleet flags.
    pub cli: CliArgs,
}

impl ShardCli {
    /// Parses `repro_bench shard <dir> [--worker <id>] [--ttl-ms <n>]
    /// [--heartbeat-ms <n>] [<experiment>...] [standard flags]`.
    ///
    /// # Errors
    ///
    /// [`CliError`] for malformed flags or a missing directory operand.
    pub fn parse(args: &[String]) -> Result<ShardCli, CliError> {
        let mut rest: Vec<String> = Vec::new();
        let mut dir: Option<PathBuf> = None;
        let mut worker: Option<String> = None;
        let mut ttl = DEFAULT_TTL;
        let mut heartbeat: Option<Duration> = None;
        let mut it = args.iter().peekable();
        let millis = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
         -> Result<Duration, CliError> {
            let raw = it
                .next()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))?;
            let ms: u64 = raw
                .parse()
                .ok()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| CliError::InvalidValue(flag.to_string(), raw.clone()))?;
            Ok(Duration::from_millis(ms))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--worker" => {
                    let raw = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue("--worker".to_string()))?;
                    if !valid_owner(raw) {
                        return Err(CliError::InvalidValue("--worker".to_string(), raw.clone()));
                    }
                    worker = Some(raw.clone());
                }
                "--ttl-ms" => ttl = millis(&mut it, "--ttl-ms")?,
                "--heartbeat-ms" => heartbeat = Some(millis(&mut it, "--heartbeat-ms")?),
                other if dir.is_none() && !other.starts_with("--") => {
                    dir = Some(PathBuf::from(other));
                }
                other => rest.push(other.to_string()),
            }
        }
        let dir = dir.ok_or_else(|| CliError::MissingValue("shard <dir>".to_string()))?;
        let mut cli = CliArgs::parse(&rest)?;
        if !cli.selects_anything() {
            cli.all = true;
        }
        Ok(ShardCli {
            dir,
            worker: worker.unwrap_or_else(|| format!("w{}", std::process::id())),
            ttl,
            heartbeat: heartbeat.unwrap_or_else(|| heartbeat_for(ttl)),
            cli,
        })
    }
}

/// Entry point for the `repro_bench shard` subcommand: parse, prepare
/// artifacts, publish/verify the shared header, then run every selected
/// experiment under the lease protocol (discarding experiment output —
/// `repro_bench merge` assembles the artifacts).
pub fn main(args: &[String]) -> i32 {
    let parsed = match ShardCli::parse(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return crate::cli::exit_code(&e);
        }
    };
    let experiments = match parsed.cli.select() {
        Ok(experiments) => experiments,
        Err(e) => {
            eprintln!("error: {e}");
            return crate::cli::exit_code(&e);
        }
    };
    match run_worker(&parsed, &experiments) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            crate::cli::exit_code(&e)
        }
    }
}

/// Runs one worker over `experiments` (see [`main`]).
///
/// # Errors
///
/// [`CliError::Resume`] for header conflicts and shard I/O failures,
/// [`CliError::Interrupted`] after a graceful SIGTERM/Ctrl-C drain.
pub fn run_worker(
    parsed: &ShardCli,
    experiments: &[&'static dyn Experiment],
) -> Result<(), CliError> {
    let config = parsed.cli.pipeline_config();
    let scale = parsed.cli.scale();
    eprintln!(
        "[shard] worker {} joining {} ({} experiment(s), ttl {:?})",
        parsed.worker,
        parsed.dir.display(),
        experiments.len(),
        parsed.ttl
    );
    let artifacts = attack_core::pipeline::prepare(&config);
    let header = ShardHeader {
        run: RunHeader::for_run(&config, scale),
        selection: experiments.iter().map(|e| e.name().to_string()).collect(),
    };
    header
        .write_or_verify(&parsed.dir)
        .map_err(CliError::Resume)?;
    let backoff_seed = drive_seed::SeedTree::root(scale.seed)
        .child("shard")
        .child(&parsed.worker)
        .seed();
    let state = Arc::new(
        ShardState::open(
            ShardConfig {
                dir: parsed.dir.clone(),
                owner: parsed.worker.clone(),
                ttl: parsed.ttl,
                heartbeat: parsed.heartbeat,
                backoff_seed,
            },
            &header.run,
        )
        .map_err(|e| CliError::Resume(e.to_string()))?,
    );
    // A polite SIGTERM unwinds at the next safe point; the drain hook
    // frees this worker's claims so peers never wait out the TTL.
    let drain_state = Arc::clone(&state);
    shutdown::register_drain(move || drain_state.release_all());
    let _heartbeat = state.spawn_heartbeat();

    // Pass 1 — opportunistic: claim-or-skip divides the grid between
    // workers near-evenly, which is where the multi-process scaling comes
    // from. The pass's aggregate output is discarded (placeholders stand
    // in for busy cells), so even a panic in some experiment's
    // aggregation over placeholder data costs nothing: everything this
    // worker computed is already published, and pass 2 fills the rest.
    // Pass 2 — completing: every cell loads, computes, or block-waits;
    // afterwards this worker has seen a complete, real result set.
    for (pass, opportunistic) in [(1, true), (2, false)] {
        state.set_opportunistic(opportunistic);
        for exp in experiments {
            let mut ctx = RunContext::new(&artifacts, &config, scale);
            ctx.shard = Some(Arc::clone(&state));
            ctx.fleet = parsed.cli.fleet;
            ctx.precision = parsed.cli.precision;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exp.run(&ctx)));
            match outcome {
                Ok(_) => eprintln!(
                    "[shard] worker {} pass {pass} finished {}",
                    parsed.worker,
                    exp.name()
                ),
                Err(payload) => {
                    if payload.is::<shutdown::ShutdownRequested>() {
                        shutdown::drain();
                        return Err(CliError::Interrupted(Some(parsed.dir.clone())));
                    }
                    if opportunistic {
                        eprintln!(
                            "[shard] worker {} pass 1 aggregation of {} panicked over \
                             placeholder cells (harmless; pass 2 completes it)",
                            parsed.worker,
                            exp.name()
                        );
                    } else {
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }
    state.release_all();
    eprintln!("[shard] worker {} done: {}", parsed.worker, state.summary());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> RunHeader {
        RunHeader {
            seed: 10_000,
            config_hash: 0x1234,
            box_episodes: 4,
            scatter_rounds: 2,
        }
    }

    fn state(dir: &Path, owner: &str, ttl: Duration) -> ShardState {
        let mut config = ShardConfig::new(dir, owner);
        config.ttl = ttl;
        config.heartbeat = heartbeat_for(ttl);
        ShardState::open(config, &header()).unwrap()
    }

    fn records(n: usize) -> Vec<EpisodeRecord> {
        (0..n)
            .map(|i| EpisodeRecord {
                steps: 5 + i,
                dt: 0.1,
                ..EpisodeRecord::default()
            })
            .collect()
    }

    #[test]
    fn shard_header_round_trips_and_rejects_tampering() {
        let h = ShardHeader {
            run: header(),
            selection: vec!["fig4".into(), "scenario-matrix".into()],
        };
        let text = h.encode();
        assert_eq!(ShardHeader::decode(&text).unwrap(), h);
        let tampered = text.replace("fig4", "fig5");
        assert!(ShardHeader::decode(&tampered)
            .unwrap_err()
            .contains("checksum"));
        assert!(ShardHeader::decode("nonsense").is_err());
    }

    #[test]
    fn shard_header_write_once_then_verify() {
        let dir = temp("repro-shard-header");
        let h = ShardHeader {
            run: header(),
            selection: vec!["fig4".into()],
        };
        h.write_or_verify(&dir).unwrap();
        h.write_or_verify(&dir).unwrap();
        assert_eq!(ShardHeader::load(&dir).unwrap(), h);
        let other = ShardHeader {
            run: RunHeader {
                seed: 9,
                ..header()
            },
            selection: vec!["fig4".into()],
        };
        let err = other.write_or_verify(&dir).unwrap_err();
        assert!(err.contains("different run"), "{err}");
    }

    #[test]
    fn first_worker_computes_second_loads() {
        let dir = temp("repro-shard-basic");
        let a = state(&dir, "wa", DEFAULT_TTL);
        let b = state(&dir, "wb", DEFAULT_TTL);
        let recs = records(4);
        let expected = recs.clone();
        let got = a.run_cell(7, "cell-7", 4, move || (recs, true));
        assert_eq!(got, expected);
        assert_eq!(a.event_count("computed"), 1);
        assert_eq!(a.held_count(), 0, "lease released after publish");
        assert!(!dir
            .join("leases")
            .join(format!("cell-{:016x}.lease", 7))
            .exists());

        // Worker B never computes: the published sidecar satisfies it.
        let loaded = b.run_cell(7, "cell-7", 4, || unreachable!("must load, not compute"));
        assert_eq!(loaded, expected);
        assert_eq!(b.event_count("loaded"), 1);

        // An episode-count mismatch is a different cell shape: recompute.
        let recs3 = records(3);
        let got3 = b.run_cell(7, "cell-7x3", 3, move || (recs3.clone(), true));
        assert_eq!(got3.len(), 3);
    }

    #[test]
    fn unclean_cells_do_not_publish() {
        let dir = temp("repro-shard-unclean");
        let a = state(&dir, "wa", DEFAULT_TTL);
        let recs = records(4);
        let _ = a.run_cell(9, "cell-9", 4, move || (recs, false));
        assert_eq!(a.event_count("computed"), 0);
        assert!(a.try_load(9, 4).is_none());
        // The lease was still released, so another worker can claim it.
        let b = state(&dir, "wb", DEFAULT_TTL);
        let recs = records(4);
        let got = b.run_cell(9, "cell-9", 4, move || (recs, true));
        assert_eq!(got.len(), 4);
        assert_eq!(b.event_count("computed"), 1);
    }

    #[test]
    fn stale_heartbeat_is_stolen_fresh_is_not() {
        let dir = temp("repro-shard-steal");
        let ttl = Duration::from_millis(100);
        let a = state(&dir, "wa", ttl);
        let b = state(&dir, "wb", ttl);
        // A claims and then "dies" (no heartbeat, never releases).
        assert!(a.try_acquire(11, "cell-11"));
        // Fresh heartbeat: B cannot steal yet.
        assert!(!b.try_acquire(11, "cell-11"));
        // Age the heartbeat past the TTL and B steals.
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            b.try_acquire(11, "cell-11"),
            "stale lease must be stealable"
        );
        assert_eq!(b.event_count("stolen"), 1);
        // The lease now belongs to B: A's owner-checked release must not
        // unlink it.
        a.release(11);
        assert!(dir
            .join("leases")
            .join(format!("cell-{:016x}.lease", 11))
            .exists());
        // And A's heartbeat must not resurrect it as A's.
        a.renew_held();
        assert_eq!(a.held_count(), 0);
        b.release(11);
        assert!(!dir
            .join("leases")
            .join(format!("cell-{:016x}.lease", 11))
            .exists());
    }

    #[test]
    fn heartbeat_renewal_prevents_stealing() {
        let dir = temp("repro-shard-heartbeat");
        let ttl = Duration::from_millis(120);
        let a = state(&dir, "wa", ttl);
        let b = state(&dir, "wb", ttl);
        assert!(a.try_acquire(13, "cell-13"));
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(60));
            a.renew_held();
            assert!(
                !b.try_acquire(13, "cell-13"),
                "a renewed lease must never be stolen"
            );
        }
    }

    #[test]
    fn steal_race_has_exactly_one_winner() {
        let dir = temp("repro-shard-steal-race");
        let ttl = Duration::from_millis(50);
        let a = state(&dir, "wa", ttl);
        assert!(a.try_acquire(17, "cell-17"));
        std::thread::sleep(Duration::from_millis(80));
        // Two stealers race the same stale lease; O_EXCL + the tombstone
        // rename guarantee exactly one winner per round.
        let dir2 = dir.clone();
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let dir = dir2.clone();
                    scope.spawn(move || {
                        let s = state(&dir, &format!("thief{i}"), Duration::from_millis(50));
                        s.try_acquire(17, "cell-17")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            winners.iter().filter(|&&w| w).count(),
            1,
            "exactly one stealer must win: {winners:?}"
        );
    }

    /// Satellite property: N contending workers never double-acquire.
    /// Every round, all workers race for the same fresh key; exactly one
    /// may hold it at a time, and after its release exactly one of the
    /// rest claims it next — counted over many seeded rounds.
    #[test]
    fn contending_workers_never_double_acquire() {
        let dir = temp("repro-shard-contention-prop");
        const WORKERS: usize = 6;
        const ROUNDS: u64 = 25;
        for round in 0..ROUNDS {
            let key = 1000 + round;
            let acquired: Vec<bool> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..WORKERS)
                    .map(|i| {
                        let dir = dir.clone();
                        scope.spawn(move || {
                            let s = state(&dir, &format!("w{i}"), DEFAULT_TTL);
                            s.try_acquire(key, "prop-cell")
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                acquired.iter().filter(|&&a| a).count(),
                1,
                "round {round}: exactly one winner, got {acquired:?}"
            );
        }
    }

    #[test]
    fn opportunistic_sweep_defers_busy_cells_and_computes_free_ones() {
        let dir = temp("repro-shard-opportunistic");
        let a = state(&dir, "wa", DEFAULT_TTL);
        let b = state(&dir, "wb", DEFAULT_TTL);
        assert!(a.try_acquire(31, "cell-31"));
        b.set_opportunistic(true);
        // Busy cell: skipped with placeholders instead of waiting.
        let got = b.run_cell(31, "cell-31", 4, || unreachable!("busy cell must defer"));
        assert_eq!(got, vec![EpisodeRecord::default(); 4]);
        assert_eq!(b.event_count("deferred"), 1);
        assert_eq!(b.event_count("computed"), 0, "placeholders never publish");
        // Unclaimed cell: computed and published as normal.
        let recs = records(4);
        let expected = recs.clone();
        let got = b.run_cell(32, "cell-32", 4, move || (recs, true));
        assert_eq!(got, expected);
        assert_eq!(b.event_count("computed"), 1);
        // Completing mode sees the published result, not the placeholder.
        b.set_opportunistic(false);
        let reloaded = b.run_cell(32, "cell-32", 4, || unreachable!("must load"));
        assert_eq!(reloaded, expected);
        a.release(31);
    }

    #[test]
    fn shutdown_latch_releases_held_leases_via_run_cell() {
        let dir = temp("repro-shard-shutdown");
        let a = Arc::new(state(&dir, "wa", DEFAULT_TTL));
        // A cell whose compute latches shutdown mid-flight: the unwind
        // must release the lease on the way out.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.run_cell(21, "cell-21", 4, || {
                shutdown::trigger();
                std::panic::panic_any(shutdown::ShutdownRequested)
            })
        }));
        shutdown::clear_for_test();
        assert!(result.is_err());
        assert_eq!(a.held_count(), 0, "unwinding compute releases the lease");
        assert!(
            !dir.join("leases")
                .join(format!("cell-{:016x}.lease", 21))
                .exists(),
            "lease file removed on unwind"
        );
        // And a latched shutdown observed while *waiting* unwinds too.
        let b = state(&dir, "wb", DEFAULT_TTL);
        assert!(b.try_acquire(22, "cell-22"));
        shutdown::trigger();
        let waiting = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.run_cell(22, "cell-22", 4, || (records(4), true))
        }));
        shutdown::clear_for_test();
        assert!(waiting.is_err(), "waiter must honor the shutdown latch");
        // Drain-hook path: release_all frees everything still held.
        assert!(a.try_acquire(23, "cell-23"));
        a.release_all();
        assert_eq!(a.held_count(), 0);
        assert!(!dir
            .join("leases")
            .join(format!("cell-{:016x}.lease", 23))
            .exists());
    }

    #[test]
    fn shard_cli_parses_dir_worker_and_forwards_flags() {
        let args: Vec<String> = [
            "/tmp/shared",
            "fig4",
            "--worker",
            "w1",
            "--ttl-ms",
            "2000",
            "--quick",
            "--smoke",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = ShardCli::parse(&args).unwrap();
        assert_eq!(parsed.dir, PathBuf::from("/tmp/shared"));
        assert_eq!(parsed.worker, "w1");
        assert_eq!(parsed.ttl, Duration::from_millis(2000));
        assert_eq!(parsed.heartbeat, heartbeat_for(parsed.ttl));
        assert_eq!(parsed.cli.names, ["fig4"]);
        assert!(parsed.cli.quick && parsed.cli.smoke);

        // No selection → --all; no dir → usage error; bad ids rejected.
        let bare: Vec<String> = vec!["/tmp/shared".into()];
        assert!(ShardCli::parse(&bare).unwrap().cli.all);
        assert!(matches!(
            ShardCli::parse(&[]),
            Err(CliError::MissingValue(_))
        ));
        let bad: Vec<String> = vec!["/tmp/x".into(), "--worker".into(), "a/b".into()];
        assert!(matches!(
            ShardCli::parse(&bad),
            Err(CliError::InvalidValue(..))
        ));
    }
}
