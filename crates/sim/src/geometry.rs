//! Planar geometry primitives used across the simulator.
//!
//! Everything here is deliberately small and allocation-free: [`Vec2`],
//! [`Pose`], and oriented bounding boxes ([`Obb`]) with a separating-axis
//! intersection test. These are the building blocks of vehicle kinematics,
//! collision detection, and sensor rendering.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in meters.
///
/// ```
/// use drive_sim::geometry::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x component (longitudinal along the road by convention).
    pub x: f64,
    /// y component (lateral, positive to the left of travel direction).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector pointing along `angle` radians (measured from +x, CCW).
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (cheaper than [`Vec2::norm`]).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn try_normalize(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Unit vector in the same direction; the zero vector normalizes to +x.
    ///
    /// Use [`Vec2::try_normalize`] when the degenerate case must be handled
    /// explicitly.
    pub fn normalize_or_x(self) -> Vec2 {
        self.try_normalize().unwrap_or(Vec2::new(1.0, 0.0))
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotate(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The vector rotated +90 degrees (left-hand perpendicular).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle of the vector from the +x axis, in `(-pi, pi]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Component-wise linear interpolation: `self * (1 - t) + other * t`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self * (1.0 - t) + other * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        *self = *self + o;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, o: Vec2) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// Normalizes an angle to the half-open interval `[-pi, pi)`.
///
/// ```
/// use drive_sim::geometry::normalize_angle;
/// use std::f64::consts::PI;
/// assert!((normalize_angle(3.0 * PI) - (-PI)).abs() < 1e-12);
/// assert_eq!(normalize_angle(0.5), 0.5);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    // `fmod` is exact, so for |a| < 2π it returns `a` unchanged; skipping
    // the libm call on that (overwhelmingly common) range is bit-identical
    // and keeps it off the per-substep integration path.
    let mut r = if a > -two_pi && a < two_pi {
        a
    } else {
        a % two_pi
    };
    if r >= std::f64::consts::PI {
        r -= two_pi;
    } else if r < -std::f64::consts::PI {
        r += two_pi;
    }
    r
}

/// Smallest signed difference `a - b` between two angles, in `[-pi, pi)`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(a - b)
}

/// A position plus heading: the configuration of a rigid body in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// World-frame position of the body origin, meters.
    pub position: Vec2,
    /// Heading angle in radians, measured CCW from the +x axis.
    pub heading: f64,
}

impl Pose {
    /// Creates a pose from position components and heading.
    pub fn new(x: f64, y: f64, heading: f64) -> Self {
        Pose {
            position: Vec2::new(x, y),
            heading,
        }
    }

    /// Transforms a point given in this pose's local frame into world frame.
    pub fn local_to_world(&self, local: Vec2) -> Vec2 {
        self.position + local.rotate(self.heading)
    }

    /// Transforms a world-frame point into this pose's local frame.
    ///
    /// Local +x points along the heading, +y to the left.
    pub fn world_to_local(&self, world: Vec2) -> Vec2 {
        (world - self.position).rotate(-self.heading)
    }

    /// Unit vector pointing along the heading.
    pub fn forward(&self) -> Vec2 {
        Vec2::from_angle(self.heading)
    }

    /// Unit vector pointing 90 degrees left of the heading.
    pub fn left(&self) -> Vec2 {
        self.forward().perp()
    }
}

/// An oriented bounding box: rectangle with arbitrary heading.
///
/// Used as the collision footprint of every vehicle and road barrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obb {
    /// Center of the box in world frame.
    pub center: Vec2,
    /// Half of (length, width): extents along the local x / y axes.
    pub half_extents: Vec2,
    /// Heading of the local +x axis, radians CCW from world +x.
    pub heading: f64,
}

impl Obb {
    /// Creates an OBB from its center, full length, full width and heading.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is not strictly positive and finite.
    pub fn new(center: Vec2, length: f64, width: f64, heading: f64) -> Self {
        assert!(
            length > 0.0 && width > 0.0 && length.is_finite() && width.is_finite(),
            "OBB dimensions must be positive and finite (length={length}, width={width})"
        );
        Obb {
            center,
            half_extents: Vec2::new(length / 2.0, width / 2.0),
            heading,
        }
    }

    /// The four corners in CCW order, world frame.
    pub fn corners(&self) -> [Vec2; 4] {
        let fwd = Vec2::from_angle(self.heading) * self.half_extents.x;
        let left = Vec2::from_angle(self.heading).perp() * self.half_extents.y;
        [
            self.center + fwd + left,
            self.center - fwd + left,
            self.center - fwd - left,
            self.center + fwd - left,
        ]
    }

    /// The two local axes (forward, left) as world-frame unit vectors.
    pub fn axes(&self) -> [Vec2; 2] {
        let fwd = Vec2::from_angle(self.heading);
        [fwd, fwd.perp()]
    }

    /// Projects the box onto a unit axis, returning `(min, max)` scalars.
    fn project(&self, axis: Vec2) -> (f64, f64) {
        let c = self.center.dot(axis);
        let [ax, ay] = self.axes();
        let r =
            (ax.dot(axis) * self.half_extents.x).abs() + (ay.dot(axis) * self.half_extents.y).abs();
        (c - r, c + r)
    }

    /// Tests intersection with another OBB using the separating-axis theorem.
    ///
    /// ```
    /// use drive_sim::geometry::{Obb, Vec2};
    /// let a = Obb::new(Vec2::ZERO, 4.0, 2.0, 0.0);
    /// let b = Obb::new(Vec2::new(3.0, 0.0), 4.0, 2.0, 0.0);
    /// assert!(a.intersects(&b));
    /// let c = Obb::new(Vec2::new(10.0, 0.0), 4.0, 2.0, 0.0);
    /// assert!(!a.intersects(&c));
    /// ```
    pub fn intersects(&self, other: &Obb) -> bool {
        self.penetration(other).is_some()
    }

    /// Returns the minimum translation depth if the boxes overlap, `None`
    /// otherwise. The depth is the smallest overlap across all four SAT axes.
    pub fn penetration(&self, other: &Obb) -> Option<f64> {
        let mut min_overlap = f64::INFINITY;
        for axis in self.axes().into_iter().chain(other.axes()) {
            let (amin, amax) = self.project(axis);
            let (bmin, bmax) = other.project(axis);
            let overlap = amax.min(bmax) - amin.max(bmin);
            if overlap <= 0.0 {
                return None;
            }
            min_overlap = min_overlap.min(overlap);
        }
        Some(min_overlap)
    }

    /// Whether a world-frame point lies inside (or on the edge of) the box.
    pub fn contains(&self, point: Vec2) -> bool {
        let local = (point - self.center).rotate(-self.heading);
        local.x.abs() <= self.half_extents.x && local.y.abs() <= self.half_extents.y
    }

    /// Axis-aligned bounds `(min, max)` enclosing the box (cheap broad phase).
    pub fn aabb(&self) -> (Vec2, Vec2) {
        let cs = self.corners();
        let mut min = cs[0];
        let mut max = cs[0];
        for c in &cs[1..] {
            min.x = min.x.min(c.x);
            min.y = min.y.min(c.y);
            max.x = max.x.max(c.x);
            max.y = max.y.max(c.y);
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn vec2_basic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn vec2_rotation_and_perp() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotate(FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
        assert!((Vec2::from_angle(FRAC_PI_4).angle() - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn vec2_normalize() {
        assert_eq!(Vec2::ZERO.try_normalize(), None);
        assert_eq!(Vec2::ZERO.normalize_or_x(), Vec2::new(1.0, 0.0));
        let n = Vec2::new(0.0, -3.0).try_normalize().unwrap();
        assert!((n.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_lerp_endpoints() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(3.0, -1.0));
    }

    #[test]
    fn angle_normalization() {
        assert!((normalize_angle(2.0 * PI) - 0.0).abs() < 1e-12);
        assert!((normalize_angle(PI) - (-PI)).abs() < 1e-12);
        assert!((normalize_angle(-PI) - (-PI)).abs() < 1e-12);
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(-3.1, 3.1) - (2.0 * PI - 6.2)).abs() < 1e-9);
    }

    #[test]
    fn pose_round_trip() {
        let p = Pose::new(5.0, -2.0, 0.7);
        let local = Vec2::new(1.5, -0.5);
        let w = p.local_to_world(local);
        let back = p.world_to_local(w);
        assert!((back - local).norm() < 1e-12);
    }

    #[test]
    fn pose_axes() {
        let p = Pose::new(0.0, 0.0, FRAC_PI_2);
        assert!((p.forward() - Vec2::new(0.0, 1.0)).norm() < 1e-12);
        assert!((p.left() - Vec2::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn obb_corners_axis_aligned() {
        let b = Obb::new(Vec2::new(1.0, 1.0), 4.0, 2.0, 0.0);
        let cs = b.corners();
        assert!(cs.contains(&Vec2::new(3.0, 2.0)));
        assert!(cs.contains(&Vec2::new(-1.0, 0.0)));
    }

    #[test]
    fn obb_intersection_rotated() {
        // Diamond overlapping a square only because of rotation.
        let a = Obb::new(Vec2::ZERO, 2.0, 2.0, 0.0);
        let b = Obb::new(Vec2::new(1.9, 0.0), 2.0, 2.0, FRAC_PI_4);
        assert!(a.intersects(&b));
        // Moved away along x, no longer overlapping.
        let c = Obb::new(Vec2::new(2.5, 0.0), 2.0, 2.0, FRAC_PI_4);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn obb_contains_point() {
        let b = Obb::new(Vec2::ZERO, 4.0, 2.0, FRAC_PI_2);
        // Rotated 90 degrees: length is now along y.
        assert!(b.contains(Vec2::new(0.0, 1.9)));
        assert!(!b.contains(Vec2::new(1.9, 0.0)));
    }

    #[test]
    fn obb_penetration_depth_monotone() {
        let a = Obb::new(Vec2::ZERO, 4.0, 2.0, 0.0);
        let close = Obb::new(Vec2::new(3.0, 0.0), 4.0, 2.0, 0.0);
        let closer = Obb::new(Vec2::new(2.0, 0.0), 4.0, 2.0, 0.0);
        let p1 = a.penetration(&close).unwrap();
        let p2 = a.penetration(&closer).unwrap();
        assert!(p2 > p1);
    }

    #[test]
    fn obb_aabb_encloses_corners() {
        let b = Obb::new(Vec2::new(2.0, -1.0), 5.0, 2.0, 0.3);
        let (min, max) = b.aabb();
        for c in b.corners() {
            assert!(c.x >= min.x - 1e-12 && c.x <= max.x + 1e-12);
            assert!(c.y >= min.y - 1e-12 && c.y <= max.y + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "OBB dimensions must be positive")]
    fn obb_rejects_zero_size() {
        let _ = Obb::new(Vec2::ZERO, 0.0, 1.0, 0.0);
    }
}
