//! Deterministic virtual-time serving simulator.
//!
//! The threaded server ([`crate::server`]) is faithful but nondeterministic:
//! thread scheduling decides batch composition. This module is its
//! deterministic twin — the same [`Pipeline`], [`Ladder`], fault plans, and
//! outcome accounting driven by an integer-microsecond event loop instead of
//! threads, so a fixed seed reproduces the whole run **byte for byte**
//! (compare [`ServeReport::render`] strings). CI gates on that property: the
//! simulator proves the control logic (admission, batching, expiry, ladder,
//! fault recovery) is correct, and the threaded server reuses the proven
//! logic verbatim.
//!
//! The request stream is closed-loop: each observation's steering readback
//! (`obs[STEER_FEATURE]`) follows the vehicle's Eq. (1) actuator lag around
//! the actions the service returns, so the full rung's detector stays quiet
//! on clean runs — and an injected action-space delta ([`AttackWindow`])
//! shows up in the readback exactly as the paper's attacks do, tripping the
//! detector and dropping the ladder to the fallback rung.

use crate::config::ServeConfig;
use crate::faults::{FaultPlan, FaultPlanConfig, WorkerFault};
use crate::ladder::{Ladder, Pressure, Rung};
use crate::pipeline::{DetectorStream, Pipeline, PipelineStats, STEER_FEATURE};
use crate::report::ServeReport;
use crate::request::{Counters, Outcome, Request, ShedReason};
use drive_metrics::histo::LatencyHistogram;
use drive_nn::gaussian::GaussianPolicy;
use drive_seed::{splitmix64, SeedTree};
use std::collections::VecDeque;
use std::sync::Arc;

/// Modeled virtual-time costs. Inference itself runs for real (the actions
/// are genuine policy outputs); only the *clock* charged for it is modeled,
/// which keeps the event loop deterministic and host-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost per batch dispatch, µs.
    pub batch_fixed_us: u64,
    /// Per-request cost at [`Rung::Full`] (detector + policy), µs.
    pub per_item_full_us: u64,
    /// Per-request cost at [`Rung::NoDetector`], µs.
    pub per_item_nodet_us: u64,
    /// Per-request cost at [`Rung::Fallback`] (PID only), µs.
    pub per_item_fallback_us: u64,
    /// Time to respawn a killed worker, µs.
    pub respawn_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            batch_fixed_us: 200,
            per_item_full_us: 150,
            per_item_nodet_us: 100,
            per_item_fallback_us: 20,
            respawn_us: 20_000,
        }
    }
}

impl CostModel {
    fn service_us(&self, rung: Rung, batch: usize) -> u64 {
        let per = match rung {
            Rung::Full => self.per_item_full_us,
            Rung::NoDetector => self.per_item_nodet_us,
            Rung::Fallback => self.per_item_fallback_us,
        };
        self.batch_fixed_us + per * batch as u64
    }
}

/// A simulated action-space attack: from `start_us` on, every realized
/// steering value is the commanded one plus `delta` — the readback the next
/// observations carry no longer matches Eq. (1) around the served commands,
/// which is precisely the signature the detector inverts for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackWindow {
    /// Attack start, virtual µs.
    pub start_us: u64,
    /// Constant steering perturbation added to every actuation.
    pub delta: f64,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Shared serving configuration (also used by the threaded server).
    pub serve: ServeConfig,
    /// Master seed: arrivals, observation noise, and fault plans all derive
    /// from it through [`SeedTree`].
    pub seed: u64,
    /// Requests in the run.
    pub requests: u64,
    /// Mean open-loop interarrival gap, µs (jittered ±50% per gap).
    pub interarrival_us: u64,
    /// Virtual-time costs.
    pub cost: CostModel,
    /// Seeded fault plan shape.
    pub faults: FaultPlanConfig,
    /// Optional action-space attack.
    pub attack: Option<AttackWindow>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            serve: ServeConfig::default(),
            seed: 42,
            requests: 400,
            interarrival_us: 1_000,
            cost: CostModel::default(),
            faults: FaultPlanConfig::none(),
            attack: None,
        }
    }
}

struct VirtualWorker {
    free_at_us: u64,
    cursor: crate::faults::FaultCursor,
    pipeline: Pipeline,
    generation: u32,
}

/// Runs the simulator to completion and returns the reconciled report.
///
/// # Panics
///
/// Panics on an invalid [`ServeConfig`], on a policy whose observation
/// dimension lacks the steering-readback feature, or — the invariant this
/// layer exists for — if any request fails to resolve exactly once.
pub fn run_sim(policy: &Arc<GaussianPolicy>, config: &SimConfig) -> ServeReport {
    config.serve.validate().expect("serve config");
    assert!(
        policy.obs_dim() > STEER_FEATURE,
        "serving at the full rung needs obs[{STEER_FEATURE}] (the steer readback)"
    );
    let tree = SeedTree::root(config.seed).child("serve-sim");
    let arr_seed = tree.child("arrivals").seed();
    let obs_seed = tree.child("obs").seed();

    // Open-loop arrival times: mean `interarrival_us`, ±50% deterministic
    // jitter per gap.
    let n = config.requests as usize;
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0u64;
    for i in 0..n as u64 {
        let jitter = splitmix64(arr_seed.wrapping_add(i)) % config.interarrival_us.max(1);
        t += config.interarrival_us / 2 + jitter;
        arrivals.push(t);
    }
    // Fault events land inside the arrival span (the plan keeps them in
    // its middle 80%), so every scheduled fault strikes while the service
    // is actually busy.
    let horizon_us = arrivals.last().copied().unwrap_or(0);
    let plan = FaultPlan::seeded(
        config.seed,
        config.serve.workers,
        horizon_us,
        &config.faults,
    );

    let alpha = config.serve.detector.alpha;
    let mut realized_steer = 0.0f64;
    let obs_dim = policy.obs_dim();
    let gen_obs = |id: u64, realized: f64| -> Vec<f32> {
        (0..obs_dim)
            .map(|j| {
                if j == STEER_FEATURE {
                    realized as f32
                } else {
                    let x = splitmix64(obs_seed.wrapping_add(id * obs_dim as u64 + j as u64));
                    ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32
                }
            })
            .collect()
    };

    let make_pipeline = |worker: usize, generation: u32| {
        let stream = worker as u64 * 1_000 + u64::from(generation);
        Pipeline::new(
            Arc::clone(policy),
            &config.serve,
            Some(plan.corruption_injector(stream)),
        )
    };
    let mut workers: Vec<VirtualWorker> = (0..config.serve.workers)
        .map(|w| VirtualWorker {
            free_at_us: 0,
            cursor: plan.cursor(w),
            pipeline: make_pipeline(w, 0),
            generation: 0,
        })
        .collect();

    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut next_arr = 0usize;
    let mut counters = Counters::default();
    let mut latency = LatencyHistogram::new();
    let mut ladder = Ladder::new(config.serve.ladder);
    let mut stream = DetectorStream::new(&config.serve);
    let mut retired = PipelineStats::default();
    let mut corrupted_retired = 0u64;
    let mut respawns = 0u32;
    let mut stalls = 0u32;

    macro_rules! admit {
        ($realized:expr) => {{
            let at = arrivals[next_arr];
            counters.submitted += 1;
            if queue.len() >= config.serve.queue_capacity {
                counters.record(&Outcome::Shed {
                    reason: ShedReason::QueueFull,
                });
            } else {
                queue.push_back(Request {
                    id: next_arr as u64,
                    obs: gen_obs(next_arr as u64, $realized),
                    enqueued_at_us: at,
                    deadline_us: config.serve.deadline_us,
                });
            }
            next_arr += 1;
        }};
    }

    'outer: loop {
        // The worker that frees up first serves the next batch.
        let w = (0..workers.len())
            .min_by_key(|&i| workers[i].free_at_us)
            .expect("at least one worker");
        let now = workers[w].free_at_us;
        while next_arr < n && arrivals[next_arr] <= now {
            admit!(realized_steer);
        }
        if queue.is_empty() {
            if next_arr >= n {
                break;
            }
            // Idle until the next arrival lands.
            let t_next = arrivals[next_arr];
            while next_arr < n && arrivals[next_arr] <= t_next {
                admit!(realized_steer);
            }
            continue;
        }

        // Batch formation: start when both the worker and the first request
        // are ready, then hold the window open (closing early when full).
        let head_at = queue.front().expect("non-empty").enqueued_at_us;
        let t0 = now.max(head_at);
        let mut close = t0 + config.serve.batch_window_us;
        if queue.len() >= config.serve.max_batch {
            close = t0;
        } else {
            while queue.len() < config.serve.max_batch
                && next_arr < n
                && arrivals[next_arr] <= close
            {
                let at = arrivals[next_arr];
                admit!(realized_steer);
                if queue.len() >= config.serve.max_batch {
                    close = at.max(t0);
                }
            }
        }

        // Worker faults strike at dispatch time.
        let mut t_d = close;
        while let Some(fault) = workers[w].cursor.due(t_d) {
            match fault {
                WorkerFault::Kill { .. } => {
                    // The batch was not yet taken: nothing is lost, the
                    // queue just ages while the worker respawns.
                    respawns += 1;
                    retired.absorb(workers[w].pipeline.stats());
                    corrupted_retired += workers[w].pipeline.corrupted_values();
                    workers[w].generation += 1;
                    workers[w].pipeline = make_pipeline(w, workers[w].generation);
                    workers[w].free_at_us = t_d + config.cost.respawn_us;
                    continue 'outer;
                }
                WorkerFault::Stall { dur_us, .. } => {
                    stalls += 1;
                    t_d += dur_us;
                }
            }
        }
        while next_arr < n && arrivals[next_arr] <= t_d {
            admit!(realized_steer);
        }

        // Take the batch — only requests that have actually arrived by the
        // dispatch time (another worker's stall may have admitted later
        // arrivals into the shared queue already).
        let mut batch: Vec<Request> = Vec::new();
        while batch.len() < config.serve.max_batch
            && queue.front().is_some_and(|r| r.enqueued_at_us <= t_d)
        {
            batch.push(queue.pop_front().expect("front checked"));
        }
        let mut misses = 0u32;
        batch.retain(|r| {
            if r.expires_at_us() < t_d {
                counters.record(&Outcome::TimedOut {
                    waited_us: t_d - r.enqueued_at_us,
                });
                misses += 1;
                false
            } else {
                true
            }
        });
        if batch.is_empty() {
            workers[w].free_at_us = t_d;
            let next = ladder.observe(
                t_d,
                Pressure {
                    queue_depth: queue.len(),
                    queue_capacity: config.serve.queue_capacity,
                    deadline_misses: misses,
                    alarm: false,
                },
            );
            for vw in &mut workers {
                vw.pipeline.on_rung_change(next);
            }
            continue;
        }

        let rung = ladder.rung();
        let mut obs: Vec<Vec<f32>> = batch.iter().map(|r| r.obs.clone()).collect();
        let detector = (rung == Rung::Full).then_some(&mut stream);
        let result = workers[w].pipeline.process(rung, &mut obs, detector);
        let finish = t_d + config.cost.service_us(rung, batch.len());
        workers[w].free_at_us = finish;

        let attack_delta = match config.attack {
            Some(a) if finish >= a.start_us => a.delta,
            _ => 0.0,
        };
        for (req, action) in batch.iter().zip(&result.actions) {
            let latency_us = finish - req.enqueued_at_us;
            latency.record(latency_us);
            let outcome = if rung == Rung::Full {
                Outcome::Served {
                    action: *action,
                    latency_us,
                }
            } else {
                Outcome::Degraded {
                    rung,
                    action: *action,
                    latency_us,
                }
            };
            counters.record(&outcome);
            // Closed loop: the vehicle realizes the (possibly attacked)
            // command through the Eq. (1) actuator lag; the next generated
            // observations carry this readback.
            realized_steer = (1.0 - alpha) * (action.steer + attack_delta) + alpha * realized_steer;
        }

        // Arrivals that landed during the service interval are part of the
        // pressure the ladder should see (the threaded server's queue
        // depth is live in exactly this way).
        while next_arr < n && arrivals[next_arr] <= finish {
            admit!(realized_steer);
        }
        let next = ladder.observe(
            finish,
            Pressure {
                queue_depth: queue.len(),
                queue_capacity: config.serve.queue_capacity,
                deadline_misses: misses,
                alarm: result.alarm,
            },
        );
        if next != rung {
            for vw in &mut workers {
                vw.pipeline.on_rung_change(next);
            }
        }
    }

    let mut stats = retired;
    let mut corrupted = corrupted_retired;
    for vw in &workers {
        stats.absorb(vw.pipeline.stats());
        corrupted += vw.pipeline.corrupted_values();
    }
    counters
        .reconcile()
        .expect("simulator broke the exactly-once outcome invariant");
    ServeReport {
        counters,
        latency,
        transitions: ladder.transitions().to_vec(),
        respawns,
        stalls,
        corrupted_values: corrupted,
        nonfinite_frames: stats.nonfinite_frames,
        batches: stats.batches,
        max_batch: stats.max_batch,
    }
}

/// Finds the highest candidate QPS the simulated service sustains at an SLO:
/// p99 latency within `slo_p99_us`, nothing shed, nothing timed out.
/// Candidates are tried in the order given; returns the best passing one.
pub fn max_qps_at_slo(
    policy: &Arc<GaussianPolicy>,
    base: &SimConfig,
    slo_p99_us: u64,
    candidates: &[u64],
) -> Option<u64> {
    let mut best = None;
    for &qps in candidates {
        if qps == 0 {
            continue;
        }
        let config = SimConfig {
            interarrival_us: (1_000_000 / qps).max(1),
            ..base.clone()
        };
        let report = run_sim(policy, &config);
        let ok = report.latency.p99() <= slo_p99_us
            && report.counters.shed() == 0
            && report.counters.timed_out == 0;
        if ok && best.is_none_or(|b| qps > b) {
            best = Some(qps);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy() -> Arc<GaussianPolicy> {
        let mut rng = StdRng::seed_from_u64(11);
        Arc::new(GaussianPolicy::new(6, &[16], 2, &mut rng))
    }

    #[test]
    fn clean_low_load_serves_everything_at_full_rung() {
        let report = run_sim(&policy(), &SimConfig::default());
        assert_eq!(report.counters.submitted, 400);
        assert_eq!(report.counters.served, 400, "{}", report.render());
        assert_eq!(report.counters.shed(), 0);
        assert_eq!(report.counters.timed_out, 0);
        assert_eq!(report.counters.degraded, 0);
        assert!(report.transitions.is_empty(), "{}", report.render());
        assert!(report.respawns == 0 && report.stalls == 0);
        // Lone requests pay roughly the batch window + service.
        assert!(report.latency.p50() >= 1_000, "{}", report.render());
        assert!(report.latency.max() < 50_000, "{}", report.render());
    }

    #[test]
    fn fixed_seed_reports_are_byte_identical() {
        let config = SimConfig {
            faults: FaultPlanConfig {
                kills: 2,
                stalls: 3,
                stall_us: 30_000,
                corrupt_rate: 0.05,
            },
            attack: Some(AttackWindow {
                start_us: 150_000,
                delta: 0.5,
            }),
            ..SimConfig::default()
        };
        let p = policy();
        let a = run_sim(&p, &config).render();
        let b = run_sim(&p, &config).render();
        assert_eq!(a, b, "virtual-time runs must replay byte-for-byte");
        let other = run_sim(&p, &SimConfig { seed: 43, ..config }).render();
        assert_ne!(a, other, "different seeds explore different runs");
    }

    #[test]
    fn action_space_attack_trips_detector_and_ladder_degrades() {
        let config = SimConfig {
            attack: Some(AttackWindow {
                start_us: 100_000,
                delta: 0.6,
            }),
            ..SimConfig::default()
        };
        let report = run_sim(&policy(), &config);
        assert!(
            report.transitions.iter().any(|t| t.to == Rung::Fallback
                && t.reason == crate::ladder::TransitionReason::DetectorAlarm),
            "{}",
            report.render()
        );
        assert!(report.counters.degraded > 0, "{}", report.render());
        report.counters.reconcile().expect("books balance");
    }

    #[test]
    fn kills_and_stalls_are_survived_without_losing_requests() {
        let config = SimConfig {
            requests: 600,
            faults: FaultPlanConfig {
                kills: 3,
                stalls: 3,
                stall_us: 40_000,
                corrupt_rate: 0.0,
            },
            ..SimConfig::default()
        };
        let report = run_sim(&policy(), &config);
        assert!(report.respawns >= 1, "{}", report.render());
        assert!(report.stalls >= 1, "{}", report.render());
        // Exactly-once accounting holds even across kills (reconcile already
        // ran inside run_sim; restate the partition explicitly here).
        let c = report.counters;
        assert_eq!(
            c.submitted,
            c.served + c.degraded + c.shed() + c.timed_out,
            "{}",
            report.render()
        );
        assert!(c.served + c.degraded > 0);
    }

    #[test]
    fn saturating_load_sheds_typed_not_silently() {
        let config = SimConfig {
            requests: 500,
            interarrival_us: 20,
            serve: ServeConfig {
                workers: 1,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
            ..SimConfig::default()
        };
        let report = run_sim(&policy(), &config);
        assert!(report.counters.shed_queue_full > 0, "{}", report.render());
        assert!(
            report
                .transitions
                .iter()
                .any(|t| t.from == Rung::Full && t.to == Rung::NoDetector),
            "overload must engage the ladder in order: {}",
            report.render()
        );
        report.counters.reconcile().expect("books balance");
    }

    #[test]
    fn corruption_alarms_into_fallback() {
        let config = SimConfig {
            faults: FaultPlanConfig {
                kills: 0,
                stalls: 0,
                stall_us: 0,
                corrupt_rate: 0.4,
            },
            ..SimConfig::default()
        };
        let report = run_sim(&policy(), &config);
        assert!(report.corrupted_values > 0, "{}", report.render());
        assert!(report.nonfinite_frames > 0, "{}", report.render());
        assert!(
            report
                .transitions
                .iter()
                .any(|t| t.reason == crate::ladder::TransitionReason::DetectorAlarm),
            "{}",
            report.render()
        );
    }

    #[test]
    fn qps_search_finds_a_sustainable_rate() {
        let p = policy();
        let base = SimConfig {
            requests: 200,
            ..SimConfig::default()
        };
        let best = max_qps_at_slo(&p, &base, 20_000, &[100, 400, 1_600, 6_400]);
        assert!(best.is_some(), "a 20ms SLO is generous at low rates");
        // An impossible SLO yields nothing.
        assert_eq!(max_qps_at_slo(&p, &base, 1, &[100]), None);
    }
}
