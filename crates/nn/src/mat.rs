//! A minimal dense `f32` matrix for batched neural-network math.
//!
//! Row-major storage; rows index batch elements, columns index features.
//! Only the operations the training stack needs are provided — this is not a
//! general linear-algebra library.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a 1-row matrix from a slice (a single observation/action).
    pub fn from_row(row: &[f32]) -> Self {
        Mat::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Replaces every non-finite entry (NaN, ±∞) with zero and returns how
    /// many entries were replaced. A no-op scan on healthy data — used as a
    /// numeric guard at network entry points so one poisoned sensor value
    /// cannot propagate through a forward or backward pass.
    pub fn sanitize_nonfinite(&mut self) -> usize {
        let mut replaced = 0;
        for v in &mut self.data {
            if !v.is_finite() {
                *v = 0.0;
                replaced += 1;
            }
        }
        replaced
    }

    /// Reshapes the matrix in place to `rows x cols`, reusing the existing
    /// allocation where possible. Element contents are unspecified after the
    /// call — callers are expected to overwrite every entry (or use
    /// [`Mat::fill`] first). Intended for scratch buffers on hot paths.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Makes `self` an element-wise copy of `other`, reusing the existing
    /// allocation where possible.
    pub fn copy_from(&mut self, other: &Mat) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Makes `self` a 1-row copy of `row` (allocation-free [`Mat::from_row`]).
    pub fn copy_from_row(&mut self, row: &[f32]) {
        self.resize(1, row.len());
        self.data.copy_from_slice(row);
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — standard matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into `out` (resized and overwritten) —
    /// allocation-free when `out`'s buffer is already large enough.
    ///
    /// Backed by the register-tiled kernel ([`gemm_acc`]): independent
    /// accumulators per output tile break the FP latency chain while every
    /// output element still folds its products in ascending-`k` order with
    /// one fused multiply-add per product, so results are independent of
    /// tiling and repeated calls are exactly deterministic. Note
    /// non-finite inputs propagate: `0.0 * NaN` is `NaN` here (use
    /// [`Mat::sanitize_nonfinite`] to guard entry points).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.cols);
        out.fill(0.0);
        gemm_acc(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// `self @ other^T` — product with the transpose of `other`, the common
    /// shape for `x @ W^T` linear layers without materializing a transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self @ other^T` written into `out` via a thread-local pack buffer —
    /// see [`Mat::matmul_nt_into_with`] for the caller-owned-scratch form.
    /// Allocation-free once the thread's pack buffer has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt_into(&self, other: &Mat, out: &mut Mat) {
        PACK.with(|p| self.matmul_nt_into_with(other, &mut p.borrow_mut(), out));
    }

    /// `self @ other^T` written into `out` (resized and overwritten),
    /// packing `other^T` into the caller-owned `pack` scratch so the one
    /// register-tiled row-major kernel does all the work. The transposed
    /// dot-product loop this replaces was latency-bound on a single
    /// accumulator chain (~3x slower than the plain layout at 64x64).
    ///
    /// Per output element the products still accumulate in ascending
    /// shared-dimension order, so results are bit-identical to the explicit
    /// `self @ transpose(other)` product. Batches of fewer than [`TILE`]
    /// rows skip the pack (it cannot amortize) and use a direct dot-product
    /// sweep with the same accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt_into_with(&self, other: &Mat, pack: &mut Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dims: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.rows);
        if self.rows < TILE {
            nt_dot(self, other, out);
            return;
        }
        other.transpose_into(pack);
        out.fill(0.0);
        gemm_acc(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &pack.data,
            &mut out.data,
        );
    }

    /// `self^T @ other` — used for weight-gradient accumulation
    /// (`x^T @ grad_out`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `acc += self^T @ other` via a thread-local pack buffer — see
    /// [`Mat::matmul_tn_acc_with`] for the caller-owned-scratch form.
    /// Allocation-free once the thread's pack buffer has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `acc` is not
    /// `self.cols x other.cols`.
    pub fn matmul_tn_acc(&self, other: &Mat, acc: &mut Mat) {
        PACK.with(|p| self.matmul_tn_acc_with(other, &mut p.borrow_mut(), acc));
    }

    /// `acc += self^T @ other` — accumulates the weight-gradient product
    /// directly into an existing matrix (e.g. `grad_w`), packing `self^T`
    /// into the caller-owned `pack` scratch and reusing the register-tiled
    /// kernel. Avoids the temporary that `add_assign(&a.matmul_tn(b))`
    /// would allocate.
    ///
    /// Per output element the batch-row products accumulate in ascending
    /// order into a register before one add folds them into `acc`, so the
    /// result matches the naive loop bit-for-bit when `acc` starts at zero.
    /// Outputs narrower than [`TILE`] rows skip the pack and use a direct
    /// broadcast sweep with the same accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `acc` is not
    /// `self.cols x other.cols`.
    pub fn matmul_tn_acc_with(&self, other: &Mat, pack: &mut Mat, acc: &mut Mat) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dims: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (acc.rows, acc.cols),
            (self.cols, other.cols),
            "matmul_tn_acc accumulator shape"
        );
        if self.cols < TILE {
            tn_broadcast(self, other, acc);
            return;
        }
        self.transpose_into(pack);
        gemm_acc(
            self.cols,
            self.rows,
            other.cols,
            &pack.data,
            &other.data,
            &mut acc.data,
        );
    }

    /// Writes `self^T` into `out` (resized; reuses `out`'s buffer). This is
    /// the pack step that lets the transposed products share the plain
    /// row-major kernel. Walked in 32x32 blocks so the strided side stays
    /// cache-resident — the naive row sweep thrashed one cache line per
    /// element once the matrix outgrew L1 and cost more than the GEMM it
    /// fed at inference shapes.
    pub fn transpose_into(&self, out: &mut Mat) {
        out.resize(self.cols, self.rows);
        const BT: usize = 32;
        let mut rb = 0;
        while rb < self.rows {
            let rend = (rb + BT).min(self.rows);
            let mut cb = 0;
            while cb < self.cols {
                let cend = (cb + BT).min(self.cols);
                for r in rb..rend {
                    let row = &self.data[r * self.cols..(r + 1) * self.cols];
                    for (c, &v) in row.iter().enumerate().take(cend).skip(cb) {
                        out.data[c * self.rows + r] = v;
                    }
                }
                cb = cend;
            }
            rb = rend;
        }
    }

    /// `self @ other^T + bias` (row broadcast) with a caller-supplied
    /// pre-packed transpose of `other` — the inference fast path behind
    /// [`crate::batch::BatchPolicy`]. `other_t` must be `other^T` (pack it
    /// once with [`Mat::transpose_into`] while the weights are frozen);
    /// skipping the per-call pack is what makes wide batched inference
    /// amortize.
    ///
    /// Bit-identical to `matmul_nt_into` followed by `add_row_broadcast`:
    /// inside the tiled interior the bias seeds the output and the tile
    /// fold lands on top (`bias + acc` vs `acc + bias` — IEEE addition
    /// commutes bitwise), while remainder rows/columns and the small-batch
    /// `nt_dot` path accumulate from zero and add the bias afterwards,
    /// exactly as the unpacked pipeline does.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch between `self`, `other`, `other_t`, or
    /// `bias`.
    pub fn matmul_nt_prepacked_bias_into(
        &self,
        other: &Mat,
        other_t: &Mat,
        bias: &[f32],
        out: &mut Mat,
    ) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dims: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (other_t.rows, other_t.cols),
            (other.cols, other.rows),
            "other_t is not other transposed"
        );
        assert_eq!(bias.len(), other.rows, "bias length");
        out.resize(self.rows, other.rows);
        if self.rows < TILE {
            nt_dot(self, other, out);
            out.add_row_broadcast(bias);
            return;
        }
        let (m, n) = (self.rows, other.rows);
        // Tiled interior: seed with the bias so the tile fold adds on top.
        // Remainder rows/columns start at zero (the row-tail kernel folds
        // products straight into the output, so a bias seed there would
        // sit under the accumulation chain instead of on top of it) and
        // get the bias in a second pass below. `j_main` is the column
        // extent the wide + narrow tile tiers cover (see [`gemm_acc`]).
        let i_main = m - m % TILE;
        let j_wide = n - n % NTILE;
        let j_main = j_wide + (n - j_wide) / NTILE_NARROW * NTILE_NARROW;
        for r in 0..m {
            let dst = &mut out.data[r * n..(r + 1) * n];
            if r < i_main {
                dst[..j_main].copy_from_slice(&bias[..j_main]);
                dst[j_main..].iter_mut().for_each(|v| *v = 0.0);
            } else {
                dst.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        gemm_acc(m, self.cols, n, &self.data, &other_t.data, &mut out.data);
        for r in 0..m {
            let dst = &mut out.data[r * n..(r + 1) * n];
            if r < i_main {
                for (o, &b) in dst[j_main..].iter_mut().zip(&bias[j_main..]) {
                    *o += b;
                }
            } else {
                for (o, &b) in dst.iter_mut().zip(bias) {
                    *o += b;
                }
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds `row` to every row of the matrix (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Sum over rows, returning a `cols`-length vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.hcat_into(other, &mut out);
        out
    }

    /// Horizontal concatenation `[self | other]` written into `out`
    /// (resized and overwritten) — allocation-free [`Mat::hcat`] once the
    /// buffer has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.rows, other.rows, "hcat needs equal row counts");
        out.resize(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Splits columns at `at`, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.cols`.
    pub fn split_cols(&self, at: usize) -> (Mat, Mat) {
        assert!(at <= self.cols);
        let mut left = Mat::zeros(self.rows, at);
        let mut right = Mat::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Mean of all elements (e.g. of a column of losses).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

/// An empty `0x0` matrix — the natural seed for scratch buffers that are
/// resized on first use.
impl Default for Mat {
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

/// Row height of the register-blocked GEMM output tile (also the
/// minimum operand extent for the pack-and-tile paths to pay off).
pub const TILE: usize = 4;

thread_local! {
    /// Pack buffer behind the scratch-free [`Mat::matmul_nt_into`] /
    /// [`Mat::matmul_tn_acc`] entry points. Thread-local so parallel
    /// experiment workers never contend; its capacity persists across
    /// calls, so steady-state packing allocates nothing.
    static PACK: RefCell<Mat> = const {
        RefCell::new(Mat {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        })
    };
}

/// Column width of the GEMM micro-kernel (two 16-lane vectors per row).
const NTILE: usize = 32;

/// Column width of the narrow middle tier of [`gemm_acc`], covering
/// outputs (and column remainders) too narrow for a full [`NTILE`] strip —
/// e.g. the `(batch, 2*action_dim)` policy head. Without it those columns
/// fall to the row-tail sweep, whose per-`k` store/reload of the output
/// row serializes on store-forwarding latency (~6 cycles per step) and
/// made the 4-wide head layer cost as much as the 128-wide hidden layer.
const NTILE_NARROW: usize = 4;

/// `out += a @ b` for row-major `m x k` / `k x n` / `m x n` slices — the
/// one hot GEMM kernel every matmul variant funnels into.
///
/// The output is walked in 4x32 tiles ([`TILE`] rows by [`NTILE`]
/// columns); each tile keeps 128 independent register accumulators (eight
/// 16-lane AVX-512 vectors when the target has them), so the per-element
/// FP latency chain never serializes across tile lanes, and the inner
/// loop is written as a zip over `b`'s rows with fixed-size
/// `[f32; NTILE]` loads so the compiler can keep it branch- and
/// bounds-check-free. Each element's products are folded in ascending-`k`
/// order into its own accumulator with an explicit `f32::mul_add` — one
/// rounding per product, the same on every ISA (hardware FMA where
/// available, exact software fallback otherwise) — then one add folds the
/// tile into `out`. Every kernel in this module uses the same fused
/// ascending-`k` fold, which keeps results independent of tiling and
/// batch width and bit-identical run to run. Shape checks are
/// `debug_assert!` only — the public `Mat` methods have already validated
/// dimensions.
fn gemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "gemm_acc: a is not m x k");
    debug_assert_eq!(b.len(), k * n, "gemm_acc: b is not k x n");
    debug_assert_eq!(out.len(), m * n, "gemm_acc: out is not m x n");
    if k == 0 || n == 0 {
        return;
    }
    let mut i = 0;
    while i + TILE <= m {
        // Four A-row slices of exactly k elements: in-bounds by
        // construction, so the zipped loads below need no checks.
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut j = 0;
        while j + NTILE <= n {
            let mut c0 = [0.0f32; NTILE];
            let mut c1 = [0.0f32; NTILE];
            let mut c2 = [0.0f32; NTILE];
            let mut c3 = [0.0f32; NTILE];
            for ((((brow, &x0), &x1), &x2), &x3) in
                b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3)
            {
                let bp: &[f32; NTILE] = brow[j..j + NTILE].try_into().expect("NTILE-wide strip");
                for t in 0..NTILE {
                    c0[t] = x0.mul_add(bp[t], c0[t]);
                    c1[t] = x1.mul_add(bp[t], c1[t]);
                    c2[t] = x2.mul_add(bp[t], c2[t]);
                    c3[t] = x3.mul_add(bp[t], c3[t]);
                }
            }
            for (r, acc) in [c0, c1, c2, c3].iter().enumerate() {
                let dst = &mut out[(i + r) * n + j..(i + r) * n + j + NTILE];
                for t in 0..NTILE {
                    dst[t] += acc[t];
                }
            }
            j += NTILE;
        }
        while j + NTILE_NARROW <= n {
            let mut c0 = [0.0f32; NTILE_NARROW];
            let mut c1 = [0.0f32; NTILE_NARROW];
            let mut c2 = [0.0f32; NTILE_NARROW];
            let mut c3 = [0.0f32; NTILE_NARROW];
            for ((((brow, &x0), &x1), &x2), &x3) in
                b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3)
            {
                let bp: &[f32; NTILE_NARROW] =
                    brow[j..j + NTILE_NARROW].try_into().expect("narrow strip");
                for t in 0..NTILE_NARROW {
                    c0[t] = x0.mul_add(bp[t], c0[t]);
                    c1[t] = x1.mul_add(bp[t], c1[t]);
                    c2[t] = x2.mul_add(bp[t], c2[t]);
                    c3[t] = x3.mul_add(bp[t], c3[t]);
                }
            }
            for (r, acc) in [c0, c1, c2, c3].iter().enumerate() {
                let dst = &mut out[(i + r) * n + j..(i + r) * n + j + NTILE_NARROW];
                for t in 0..NTILE_NARROW {
                    dst[t] += acc[t];
                }
            }
            j += NTILE_NARROW;
        }
        if j < n {
            for (r, a_row) in [a0, a1, a2, a3].iter().enumerate() {
                gemm_acc_row_tail(k, n, a_row, b, &mut out[(i + r) * n..(i + r + 1) * n], j);
            }
        }
        i += TILE;
    }
    while i < m {
        gemm_acc_row_tail(
            k,
            n,
            &a[i * k..(i + 1) * k],
            b,
            &mut out[i * n..(i + 1) * n],
            0,
        );
        i += 1;
    }
}

/// Remainder path of [`gemm_acc`]: one output row, columns `j0..n`, as a
/// plain i-k-j sweep with the same fused ascending-`k` accumulation order.
fn gemm_acc_row_tail(k: usize, n: usize, a_row: &[f32], b: &[f32], out_row: &mut [f32], j0: usize) {
    for (p, &av) in a_row.iter().enumerate().take(k) {
        let b_row = &b[p * n + j0..(p + 1) * n];
        for (o, &bv) in out_row[j0..].iter_mut().zip(b_row) {
            *o = av.mul_add(bv, *o);
        }
    }
}

/// Small-batch `self @ other^T`: direct dot products, single accumulator
/// per element with the same fused ascending-order fold as [`gemm_acc`] —
/// this is what keeps 1-row serial inference bit-identical to the wide
/// batched path. Used when there are too few rows for the pack-and-tile
/// path to pay for the transpose.
fn nt_dot(a: &Mat, other: &Mat, out: &mut Mat) {
    for i in 0..a.rows {
        let a_row = a.row(i);
        for j in 0..other.rows {
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(other.row(j)) {
                acc = x.mul_add(*y, acc);
            }
            out.data[i * other.rows + j] = acc;
        }
    }
}

/// Narrow-output `acc += self^T @ other`: fused ascending batch-row
/// broadcast, used when the transposed output has fewer than [`TILE`]
/// rows (e.g. the `(batch, 1)` critic-head gradients).
fn tn_broadcast(a: &Mat, other: &Mat, acc: &mut Mat) {
    for b in 0..a.rows {
        let a_row = a.row(b);
        let o_row = other.row(b);
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut acc.data[i * other.cols..(i + 1) * other.cols];
            for (o, &g) in out_row.iter_mut().zip(o_row) {
                *o = av.mul_add(g, *o);
            }
        }
    }
}

/// Naive reference kernels the fast paths are property-tested against.
#[cfg(test)]
pub(crate) mod reference {
    use super::Mat;

    /// Textbook `a @ b` triple loop.
    pub fn matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Textbook `a @ b^T`.
    pub fn matmul_nt(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(j, p);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Textbook `acc + a^T @ b`.
    pub fn matmul_tn_acc(a: &Mat, b: &Mat, acc: &Mat) -> Mat {
        let mut out = acc.clone();
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut sum = 0.0f32;
                for p in 0..a.rows() {
                    sum += a.get(p, i) * b.get(p, j);
                }
                out.set(i, j, out.get(i, j) + sum);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let bt = {
            let mut t = Mat::zeros(3, 4);
            for r in 0..4 {
                for c in 0..3 {
                    t.set(c, r, b.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Mat::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        let b = Mat::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.5).collect());
        let at = {
            let mut t = Mat::zeros(2, 4);
            for r in 0..4 {
                for c in 0..2 {
                    t.set(c, r, a.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_ish() {
        let mut m = Mat::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.sum_rows(), vec![3.0, -6.0]);
    }

    #[test]
    fn hcat_and_split_round_trip() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Mat::from_vec(2, 1, vec![5., 6.]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 5.]);
        let (l, r) = c.split_cols(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn map_and_mean() {
        let mut m = Mat::from_vec(1, 4, vec![1., 2., 3., 4.]);
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_row_is_single_row() {
        let m = Mat::from_row(&[1.0, 2.0]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
    }

    /// Regression for the removed zero-skip: IEEE-754 says `0.0 * NaN` is
    /// `NaN`, but the old `if a == 0.0 { continue }` branch silently
    /// dropped the product, masking poisoned operands. The kernels must
    /// surface the NaN so `sanitize_nonfinite` can catch it downstream.
    #[test]
    fn matmul_propagates_nan_through_zero_coefficients() {
        let a = Mat::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Mat::from_vec(2, 1, vec![f32::NAN, 2.0]);
        let mut c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0.0 * NaN must propagate in matmul");

        let t = Mat::from_vec(2, 1, vec![0.0, 1.0]);
        let g = Mat::from_vec(2, 1, vec![f32::NAN, 3.0]);
        let d = t.matmul_tn(&g);
        assert!(
            d.get(0, 0).is_nan(),
            "0.0 * NaN must propagate in matmul_tn"
        );

        // The numeric guard then catches what the kernel surfaced.
        assert_eq!(c.sanitize_nonfinite(), 1);
        assert_eq!(c.data(), &[0.0]);
    }

    #[test]
    fn into_variants_match_allocating_kernels_after_reuse() {
        let a = Mat::from_vec(3, 5, (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect());
        let b = Mat::from_vec(5, 4, (0..20).map(|i| (i as f32) * -0.21 + 1.5).collect());
        let bt = Mat::from_vec(4, 5, (0..20).map(|i| (i as f32) * 0.11).collect());

        // Deliberately mis-shaped, dirty scratch buffers: `_into` must
        // resize and fully overwrite them.
        let mut out = Mat::from_vec(1, 2, vec![9.9, -9.9]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        a.matmul_nt_into(&bt, &mut out);
        assert_eq!(out, a.matmul_nt(&bt));
    }

    #[test]
    fn matmul_tn_acc_accumulates_on_top() {
        let a = Mat::from_vec(3, 2, (0..6).map(|i| i as f32).collect());
        let g = Mat::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.5).collect());
        let mut acc = a.matmul_tn(&g);
        let once = acc.clone();
        a.matmul_tn_acc(&g, &mut acc);
        for (twice, one) in acc.data().iter().zip(once.data()) {
            assert_eq!(*twice, one * 2.0);
        }
    }

    #[test]
    fn resize_and_copy_helpers_reuse_buffers() {
        let mut m = Mat::zeros(2, 3);
        m.resize(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        m.fill(7.0);
        assert!(m.data().iter().all(|&v| v == 7.0));

        let src = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        m.copy_from(&src);
        assert_eq!(m, src);
        m.copy_from_row(&[4.0, 5.0]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
        assert_eq!(m.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn transpose_into_round_trips() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let mut t = Mat::from_vec(1, 1, vec![9.9]); // dirty, mis-shaped
        a.transpose_into(&mut t);
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        let mut back = Mat::default();
        t.transpose_into(&mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn hcat_into_matches_hcat_on_dirty_buffer() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Mat::from_vec(2, 1, vec![5., 6.]);
        let mut out = Mat::from_vec(3, 3, vec![7.0; 9]);
        a.hcat_into(&b, &mut out);
        assert_eq!(out, a.hcat(&b));
    }

    #[test]
    fn with_variants_match_thread_local_pack_paths() {
        let a = Mat::from_vec(6, 5, (0..30).map(|i| (i as f32) * 0.3 - 4.0).collect());
        let b = Mat::from_vec(7, 5, (0..35).map(|i| (i as f32) * -0.17 + 2.0).collect());
        let mut pack = Mat::default();
        let mut out = Mat::default();
        a.matmul_nt_into_with(&b, &mut pack, &mut out);
        assert_eq!(out, a.matmul_nt(&b));

        let g = Mat::from_vec(6, 4, (0..24).map(|i| (i as f32) * 0.09).collect());
        let mut acc_with = Mat::zeros(5, 4);
        let mut acc_tl = Mat::zeros(5, 4);
        a.matmul_tn_acc_with(&g, &mut pack, &mut acc_with);
        a.matmul_tn_acc(&g, &mut acc_tl);
        assert_eq!(acc_with, acc_tl);
    }

    /// Repeated calls that reuse the same scratch buffers must be exactly
    /// deterministic: the blocked kernels' FP accumulation order depends
    /// only on shapes, never on buffer history.
    #[test]
    fn repeated_calls_with_same_scratch_are_bit_identical() {
        let a = Mat::from_vec(
            9,
            13,
            (0..117).map(|i| ((i * 37) % 19) as f32 - 9.0).collect(),
        );
        let b = Mat::from_vec(
            13,
            6,
            (0..78).map(|i| ((i * 11) % 23) as f32 * 0.25).collect(),
        );
        let bt = {
            let mut t = Mat::default();
            b.transpose_into(&mut t);
            t
        };
        let mut pack = Mat::default();
        let mut out = Mat::default();
        a.matmul_into(&b, &mut out);
        let first = out.clone();
        let mut nt_out = Mat::default();
        a.matmul_nt_into_with(&bt, &mut pack, &mut nt_out);
        let nt_first = nt_out.clone();
        let mut acc = Mat::zeros(13, 6);
        a.matmul_tn_acc_with(&nt_out, &mut pack, &mut acc);
        let acc_first = acc.clone();
        for _ in 0..3 {
            a.matmul_into(&b, &mut out);
            assert_eq!(out, first);
            a.matmul_nt_into_with(&bt, &mut pack, &mut nt_out);
            assert_eq!(nt_out, nt_first);
            acc.fill(0.0);
            a.matmul_tn_acc_with(&nt_out, &mut pack, &mut acc);
            assert_eq!(acc, acc_first);
        }
    }

    /// The pre-packed bias-fused product must be bit-identical to the
    /// unpacked pipeline (`matmul_nt_into` + `add_row_broadcast`) across
    /// the kernel's regimes: small-batch `nt_dot` (m < TILE), the tiled
    /// interior, and row/column remainders (m % TILE, n % NTILE, n < NTILE).
    #[test]
    fn prepacked_bias_matches_unpacked_pipeline_bit_exactly() {
        for &(m, k, n) in &[
            (1usize, 13usize, 7usize), // nt_dot path
            (3, 60, 128),              // nt_dot path, wide
            (4, 60, 128),              // pure tiled interior
            (128, 60, 128),            // inference layer shape
            (128, 128, 4),             // n < NTILE: all row-tail
            (6, 17, 37),               // row and column remainders
            (5, 1, 33),                // k = 1, column remainder
        ] {
            let a = Mat::from_vec(
                m,
                k,
                (0..m * k)
                    .map(|i| ((i * 29) % 41) as f32 * 0.173 - 3.0)
                    .collect(),
            );
            let b = Mat::from_vec(
                n,
                k,
                (0..n * k)
                    .map(|i| ((i * 17) % 31) as f32 * -0.091 + 1.2)
                    .collect(),
            );
            let bias: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 5.0).collect();
            let mut bt = Mat::default();
            b.transpose_into(&mut bt);

            let mut want = Mat::default();
            a.matmul_nt_into(&b, &mut want);
            want.add_row_broadcast(&bias);

            let mut got = Mat::from_vec(1, 2, vec![9.9, -9.9]); // dirty scratch
            a.matmul_nt_prepacked_bias_into(&b, &bt, &bias, &mut got);
            assert_eq!((got.rows(), got.cols()), (m, n));
            for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "({m}x{k}x{n})[{i}]: prepacked {g} vs unpacked {w}"
                );
            }
        }
    }

    #[test]
    fn sanitize_nonfinite_zeroes_only_bad_entries() {
        let mut m = Mat::from_vec(
            1,
            5,
            vec![1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -2.0],
        );
        assert_eq!(m.sanitize_nonfinite(), 3);
        assert_eq!(m.data(), &[1.0, 0.0, 0.0, 0.0, -2.0]);
        // Healthy data is untouched.
        assert_eq!(m.sanitize_nonfinite(), 0);
    }

    mod properties {
        use super::super::{reference, Mat};
        use proptest::prelude::*;

        /// A random matrix with dimensions in `1..=96` — spans everything
        /// from pure-remainder shapes to multi-tile interiors.
        fn mat(rows: usize, cols: usize, seed: &[f32]) -> Mat {
            let data = (0..rows * cols)
                .map(|i| seed[i % seed.len()])
                .collect::<Vec<_>>();
            Mat::from_vec(rows, cols, data)
        }

        fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
            (1usize..=96, 1usize..=96, 1usize..=96)
        }

        fn values() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
            (
                proptest::collection::vec(-8.0f32..8.0, 7..=31),
                proptest::collection::vec(-8.0f32..8.0, 7..=31),
            )
        }

        fn assert_close(fast: &Mat, naive: &Mat, what: &str) {
            assert_eq!((fast.rows(), fast.cols()), (naive.rows(), naive.cols()));
            for (i, (&f, &n)) in fast.data().iter().zip(naive.data()).enumerate() {
                let tol = 1e-4 * n.abs().max(1.0);
                assert!((f - n).abs() <= tol, "{what}[{i}]: fast {f} vs naive {n}");
            }
        }

        proptest! {
            /// The tiled kernel matches the naive triple loop. The fast
            /// kernels fold per element in ascending-k order but with fused
            /// multiply-adds (one rounding per product), so they agree with
            /// the unfused naive loops within the 1e-4 relative tolerance
            /// rather than bit-exactly; bit-identity across the fast paths
            /// themselves is asserted separately.
            #[test]
            fn tiled_matmul_matches_naive((m, k, n) in dims(), (sa, sb) in values()) {
                let a = mat(m, k, &sa);
                let b = mat(k, n, &sb);
                let mut out = Mat::default();
                a.matmul_into(&b, &mut out);
                assert_close(&out, &reference::matmul(&a, &b), "matmul");
            }

            /// The packed NT product matches the naive transposed product,
            /// including the small-batch direct path (`m < TILE`).
            #[test]
            fn packed_matmul_nt_matches_naive((m, k, n) in dims(), (sa, sb) in values()) {
                let a = mat(m, k, &sa);
                let b = mat(n, k, &sb);
                let mut pack = Mat::default();
                let mut out = Mat::default();
                a.matmul_nt_into_with(&b, &mut pack, &mut out);
                assert_close(&out, &reference::matmul_nt(&a, &b), "matmul_nt");
            }

            /// The packed TN accumulation matches the naive version on top
            /// of a non-zero accumulator.
            #[test]
            fn packed_matmul_tn_acc_matches_naive((m, k, n) in dims(), (sa, sb) in values()) {
                let a = mat(k, m, &sa);
                let b = mat(k, n, &sb);
                let base = mat(m, n, &sb);
                let mut pack = Mat::default();
                let mut acc = base.clone();
                a.matmul_tn_acc_with(&b, &mut pack, &mut acc);
                assert_close(&acc, &reference::matmul_tn_acc(&a, &b, &base), "matmul_tn_acc");
            }
        }
    }
}
