//! Graceful-shutdown latching for SIGTERM / SIGINT.
//!
//! A polite `kill` (or Ctrl-C) should never cost a long run its flushed
//! state: the handler installed here only latches a process-wide atomic
//! flag, and cooperative code polls [`requested`] at safe points — the
//! harness between grid cells, the serving loop between batches — then
//! drains, flushes, and exits cleanly. (SIGKILL remains the crash-safety
//! journal's problem; this module covers the *polite* signals.)
//!
//! The flag is a latch: once set it stays set, and a second signal does
//! not escalate (the default disposition is replaced for the process
//! lifetime). [`trigger`] sets the same latch programmatically so tests
//! and embedders can drive the drain path without real signals.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// A registered drain callback (boxed so hooks of any closure type share
/// one list).
type DrainHook = Box<dyn FnOnce() + Send>;

/// Cleanup callbacks run by [`drain`] when a latched shutdown unwinds to
/// the top-level driver. Signal handlers cannot run arbitrary code
/// (async-signal-safety), so hooks execute cooperatively, on the normal
/// control path, exactly once each.
static DRAIN_HOOKS: OnceLock<Mutex<Vec<DrainHook>>> = OnceLock::new();

fn hooks() -> &'static Mutex<Vec<DrainHook>> {
    DRAIN_HOOKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a cleanup hook to run when the process drains after a
/// latched SIGTERM/SIGINT (see [`drain`]). Used by holders of shared
/// on-disk state — the shard coordinator registers one that releases its
/// held cell leases, so a politely-killed worker never forces peers to
/// wait out the lease TTL.
///
/// Hooks run in registration order, at most once; registering after a
/// drain runs the hook only on a subsequent [`drain`] call.
pub fn register_drain(hook: impl FnOnce() + Send + 'static) {
    hooks()
        .lock()
        .expect("drain hooks lock")
        .push(Box::new(hook));
}

/// Runs (and consumes) every registered drain hook. Called by top-level
/// drivers after catching the [`ShutdownRequested`] unwind — idempotent,
/// since each hook is taken out of the registry before it runs.
pub fn drain() {
    // Take the hooks out under the lock, run them outside it: a hook may
    // itself register further hooks without deadlocking.
    let pending: Vec<_> = std::mem::take(&mut *hooks().lock().expect("drain hooks lock"));
    for hook in pending {
        hook();
    }
}

/// Panic payload used to unwind out of deep work loops once shutdown is
/// requested. Layers that `catch_unwind` for *fault isolation* (retry,
/// resilience) must not treat this as a recoverable failure; the
/// top-level driver catches it and exits cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownRequested;

impl std::fmt::Display for ShutdownRequested {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shutdown requested (SIGTERM/SIGINT)")
    }
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The platform C library is already linked by std on unix; binding
    // `signal` directly keeps this crate dependency-free. The handler
    // body is a single atomic store — async-signal-safe by construction.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT latch handlers (idempotent). Call once
/// near the top of `main` in any binary that wants graceful drains.
pub fn install() {
    INSTALL.call_once(imp::install);
}

/// Whether a shutdown signal (or [`trigger`]) has been latched.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Latches the shutdown flag programmatically (tests, embedders).
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the latch. Test hook only: real shutdowns never un-request.
#[doc(hidden)]
pub fn clear_for_test() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trip() {
        clear_for_test();
        assert!(!requested());
        trigger();
        assert!(requested());
        trigger();
        assert!(requested(), "latch stays set");
        clear_for_test();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }

    #[test]
    fn drain_hooks_run_once_in_order() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = log.clone();
            register_drain(move || log.lock().unwrap().push(i));
        }
        drain();
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
        // Consumed: a second drain is a no-op for already-run hooks.
        drain();
        assert_eq!(log.lock().unwrap().len(), 3);
        // A hook registered later runs on the next drain only.
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        register_drain(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        drain();
        drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
