//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access and no crates-io mirror, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong for simulation workloads and fully
//! deterministic per seed, which is all this repository requires (the
//! experiments never depended on the exact ChaCha stream of upstream
//! `StdRng`, only on seed-reproducibility).

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's "standard" distribution:
/// floats in `[0, 1)`, full-range integers, fair booleans.
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against floating-point rounding landing on `end`.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// User-facing sampling interface (the `rand` 0.8 surface this workspace
/// uses).
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state, so checkpointing code can
        /// capture a generator mid-stream and later resume it exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`StdRng::state`]. The next draw continues the original stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is a fixed point of xoshiro256++ and is
            // never produced by `state()` (seeding guards against it);
            // fall back to a seeded generator rather than freezing.
            if s == [0, 0, 0, 0] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let y: f32 = rng.gen();
        assert!((0.0..1.0).contains(&y));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let j = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&j));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..37 {
            let _: u64 = rng.gen();
        }
        let captured = rng.state();
        let tail: Vec<u64> = (0..16).map(|_| rng.gen()).collect();
        let mut resumed = StdRng::from_state(captured);
        let replayed: Vec<u64> = (0..16).map(|_| resumed.gen()).collect();
        assert_eq!(tail, replayed);
        // The zero-state guard never freezes the generator.
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.gen::<u64>(), z.gen::<u64>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
