//! Scenario configuration: the Town-4-like freeway episode of the paper.
//!
//! The ego vehicle starts in the middle lane at a 16 m/s reference speed and
//! must pass six NPC vehicles cruising at 6 m/s within 180 control steps of
//! 0.1 s each (Section III-A). Spawn positions can be jittered per episode
//! seed for training/evaluation variety.
//!
//! All named scenarios — the paper's freeway plus topology variants — are
//! constructed through [`ScenarioSpec`], the single validated construction
//! path; `Scenario::{dense_traffic, sparse_traffic, two_lane}` remain as
//! thin compatibility wrappers over the specs of the same name.

use crate::road::Road;
use crate::vehicle::VehicleParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spawn description for one NPC vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpcSpawn {
    /// Lane index (0 = rightmost).
    pub lane: usize,
    /// Longitudinal start position, meters.
    pub x: f64,
    /// Cruise speed, m/s.
    pub speed: f64,
}

/// Full episode configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Road geometry.
    pub road: Road,
    /// Control period, seconds (0.1 s in the paper).
    pub dt: f64,
    /// Integration substeps per control period.
    pub substeps: usize,
    /// Episode length in control steps (180 in the paper).
    pub max_steps: usize,
    /// Ego spawn lane.
    pub ego_lane: usize,
    /// Ego spawn longitudinal position, meters.
    pub ego_x: f64,
    /// Ego spawn speed, m/s.
    pub ego_speed: f64,
    /// Ego reference (desired cruise) speed, m/s.
    pub ego_ref_speed: f64,
    /// NPC spawns.
    pub npcs: Vec<NpcSpawn>,
    /// Max longitudinal jitter applied per episode, meters.
    pub spawn_jitter_x: f64,
    /// Max speed jitter applied per episode, m/s.
    pub spawn_jitter_speed: f64,
}

impl Default for Scenario {
    /// The paper's freeway overtaking scenario: six 6 m/s NPCs spread over
    /// the three lanes ahead of a 16 m/s ego vehicle.
    fn default() -> Self {
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 55.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 85.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 1,
                x: 110.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 135.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 160.0,
                speed: 6.0,
            },
        ];
        Scenario {
            road: Road::default(),
            dt: 0.1,
            substeps: 5,
            max_steps: 180,
            ego_lane: 1,
            ego_x: 0.0,
            ego_speed: 16.0,
            ego_ref_speed: 16.0,
            npcs,
            spawn_jitter_x: 3.0,
            spawn_jitter_speed: 0.5,
        }
    }
}

impl Scenario {
    /// A denser variant: eight NPCs with tighter spacing. Overtaking
    /// requires more lane changes and offers the attacker more critical
    /// windows.
    pub fn dense_traffic() -> Self {
        ScenarioSpec::dense_traffic().into_scenario()
    }

    /// A sparse variant: three NPCs far apart. Fewer critical windows, so
    /// a lurking attacker must stay quiet longer.
    pub fn sparse_traffic() -> Self {
        ScenarioSpec::sparse_traffic().into_scenario()
    }

    /// A two-lane variant (no middle escape lane): lane changes are
    /// all-or-nothing, which favors the attacker.
    pub fn two_lane() -> Self {
        ScenarioSpec::two_lane().into_scenario()
    }

    /// Returns a copy with per-NPC spawn jitter drawn from `rng`.
    ///
    /// Jitter keeps ordering gaps sane: positions move by at most
    /// `spawn_jitter_x` and speeds by at most `spawn_jitter_speed`.
    pub fn jittered<R: Rng>(&self, rng: &mut R) -> Scenario {
        let mut s = self.clone();
        for npc in &mut s.npcs {
            npc.x += rng.gen_range(-self.spawn_jitter_x..=self.spawn_jitter_x);
            npc.speed = (npc.speed
                + rng.gen_range(-self.spawn_jitter_speed..=self.spawn_jitter_speed))
            .max(0.5);
        }
        s
    }

    /// Episode duration in seconds.
    pub fn duration(&self) -> f64 {
        self.max_steps as f64 * self.dt
    }

    /// Validates internal consistency (lanes in range, positive timing).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dt <= 0.0 {
            return Err(format!("dt must be positive, got {}", self.dt));
        }
        if self.substeps == 0 {
            return Err("substeps must be at least 1".into());
        }
        if self.max_steps == 0 {
            return Err("max_steps must be at least 1".into());
        }
        if self.ego_lane >= self.road.num_lanes {
            return Err(format!(
                "ego lane {} out of range for {}-lane road",
                self.ego_lane, self.road.num_lanes
            ));
        }
        for (i, n) in self.npcs.iter().enumerate() {
            if n.lane >= self.road.total_lanes() {
                return Err(format!("npc {i} lane {} out of range", n.lane));
            }
            if !self.road.lane_open_at(n.lane, n.x) {
                return Err(format!(
                    "npc {i} spawns at x={} where lane {} is not drivable",
                    n.x, n.lane
                ));
            }
            if n.speed < 0.0 {
                return Err(format!("npc {i} has negative speed"));
            }
        }
        // No two NPCs may spawn overlapping in the same lane.
        let car_length = VehicleParams::default().length;
        for (i, a) in self.npcs.iter().enumerate() {
            for (j, b) in self.npcs.iter().enumerate().skip(i + 1) {
                if a.lane == b.lane && (a.x - b.x).abs() < car_length {
                    return Err(format!(
                        "npcs {i} and {j} overlap in lane {}: |{} - {}| < car length {}",
                        a.lane, a.x, b.x, car_length
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A named, validated scenario: the single construction path for every
/// preset and generated scenario in the workspace.
///
/// The `name` is a stable label used in artifact file names, manifests and
/// journal keys; the wrapped [`Scenario`] is guaranteed to pass
/// [`Scenario::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Stable label (lowercase, underscore-separated).
    pub name: String,
    scenario: Scenario,
}

impl ScenarioSpec {
    /// Wraps and validates a scenario under a stable name.
    ///
    /// # Errors
    ///
    /// Returns the [`Scenario::validate`] error when the scenario is
    /// inconsistent.
    pub fn new(name: impl Into<String>, scenario: Scenario) -> Result<Self, String> {
        scenario.validate()?;
        Ok(ScenarioSpec {
            name: name.into(),
            scenario,
        })
    }

    /// The validated scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Consumes the spec, returning the validated scenario.
    pub fn into_scenario(self) -> Scenario {
        self.scenario
    }

    /// Stable content fingerprint (FNV-1a over the debug encoding), used to
    /// count distinct scenarios and key per-cell artifacts.
    pub fn fingerprint(&self) -> u64 {
        drive_seed::fnv1a_64(format!("{:?}", self.scenario).as_bytes())
    }

    fn preset(name: &str, scenario: Scenario) -> Self {
        ScenarioSpec::new(name, scenario).expect("preset scenario must validate")
    }

    /// The paper's freeway overtaking scenario (`Scenario::default`).
    pub fn freeway() -> Self {
        ScenarioSpec::preset("freeway", Scenario::default())
    }

    /// Eight NPCs with tighter spacing on the default freeway.
    pub fn dense_traffic() -> Self {
        let npcs = [
            (1, 28.0),
            (0, 46.0),
            (2, 66.0),
            (1, 88.0),
            (0, 108.0),
            (2, 128.0),
            (1, 148.0),
            (0, 168.0),
        ]
        .into_iter()
        .map(|(lane, x)| NpcSpawn {
            lane,
            x,
            speed: 6.0,
        })
        .collect();
        ScenarioSpec::preset(
            "dense_traffic",
            Scenario {
                npcs,
                ..Scenario::default()
            },
        )
    }

    /// Three NPCs far apart on the default freeway.
    pub fn sparse_traffic() -> Self {
        let npcs = [(1, 40.0), (2, 110.0), (0, 180.0)]
            .into_iter()
            .map(|(lane, x)| NpcSpawn {
                lane,
                x,
                speed: 6.0,
            })
            .collect();
        ScenarioSpec::preset(
            "sparse_traffic",
            Scenario {
                npcs,
                ..Scenario::default()
            },
        )
    }

    /// Two-lane freeway: no middle escape lane.
    pub fn two_lane() -> Self {
        let npcs = [(0, 35.0), (1, 70.0), (0, 105.0), (1, 140.0)]
            .into_iter()
            .map(|(lane, x)| NpcSpawn {
                lane,
                x,
                speed: 6.0,
            })
            .collect();
        ScenarioSpec::preset(
            "two_lane",
            Scenario {
                road: Road::new(2, 3.5, 1500.0),
                ego_lane: 0,
                npcs,
                ..Scenario::default()
            },
        )
    }

    /// On-ramp merge: two faster NPCs enter from an acceleration lane and
    /// must merge into lane 0 across the ego's path.
    pub fn on_ramp_merge() -> Self {
        let road = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        let ramp = road.ramp_lane().expect("on-ramp road has a ramp lane");
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 35.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 70.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 100.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: ramp,
                x: 20.0,
                speed: 9.0,
            },
            NpcSpawn {
                lane: ramp,
                x: 60.0,
                speed: 9.0,
            },
        ];
        ScenarioSpec::preset(
            "on_ramp_merge",
            Scenario {
                road,
                npcs,
                ..Scenario::default()
            },
        )
    }

    /// Lane drop: the leftmost lane ends mid-episode, squeezing its
    /// traffic (and any overtaking ego) into the middle lane.
    pub fn lane_drop() -> Self {
        let road = Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0);
        let npcs = vec![
            NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 65.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 90.0,
                speed: 8.0,
            },
            NpcSpawn {
                lane: 2,
                x: 150.0,
                speed: 8.0,
            },
            NpcSpawn {
                lane: 1,
                x: 130.0,
                speed: 6.0,
            },
        ];
        ScenarioSpec::preset(
            "lane_drop",
            Scenario {
                road,
                npcs,
                ..Scenario::default()
            },
        )
    }

    /// Every named preset, in a stable order.
    pub fn all_presets() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::freeway(),
            ScenarioSpec::dense_traffic(),
            ScenarioSpec::sparse_traffic(),
            ScenarioSpec::two_lane(),
            ScenarioSpec::on_ramp_merge(),
            ScenarioSpec::lane_drop(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_scenario_is_valid() {
        let s = Scenario::default();
        assert!(s.validate().is_ok());
        assert_eq!(s.npcs.len(), 6);
        assert!((s.duration() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let s = Scenario::default();
        let mut rng = StdRng::seed_from_u64(7);
        let j1 = s.jittered(&mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let j2 = s.jittered(&mut rng);
        assert_eq!(j1, j2, "same seed must give same jitter");
        for (orig, jit) in s.npcs.iter().zip(&j1.npcs) {
            assert!((orig.x - jit.x).abs() <= s.spawn_jitter_x + 1e-12);
            assert!((orig.speed - jit.speed).abs() <= s.spawn_jitter_speed + 1e-12);
            assert_eq!(orig.lane, jit.lane);
        }
    }

    #[test]
    fn preset_scenarios_are_valid() {
        for s in [
            Scenario::dense_traffic(),
            Scenario::sparse_traffic(),
            Scenario::two_lane(),
        ] {
            assert!(s.validate().is_ok(), "{s:?}");
        }
        assert_eq!(Scenario::dense_traffic().npcs.len(), 8);
        assert_eq!(Scenario::sparse_traffic().npcs.len(), 3);
        assert_eq!(Scenario::two_lane().road.num_lanes, 2);
    }

    #[test]
    fn validate_rejects_overlapping_spawns() {
        let mut s = Scenario::default();
        // Two NPCs in the same lane closer than one car length.
        s.npcs[0] = NpcSpawn {
            lane: 1,
            x: 30.0,
            speed: 6.0,
        };
        s.npcs[3] = NpcSpawn {
            lane: 1,
            x: 33.0,
            speed: 6.0,
        };
        let err = s.validate().unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        // Same |Δx| in different lanes is fine.
        s.npcs[3].lane = 2;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_spawns_on_closed_lanes() {
        let mut s = ScenarioSpec::on_ramp_merge().into_scenario();
        // A ramp spawn past the merge deadline is not drivable.
        s.npcs.push(NpcSpawn {
            lane: 3,
            x: 260.0,
            speed: 8.0,
        });
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::lane_drop().into_scenario();
        s.npcs.push(NpcSpawn {
            lane: 2,
            x: 500.0,
            speed: 8.0,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn specs_are_the_single_construction_path() {
        // The compatibility wrappers must match their specs exactly.
        assert_eq!(
            Scenario::dense_traffic(),
            *ScenarioSpec::dense_traffic().scenario()
        );
        assert_eq!(
            Scenario::sparse_traffic(),
            *ScenarioSpec::sparse_traffic().scenario()
        );
        assert_eq!(Scenario::two_lane(), *ScenarioSpec::two_lane().scenario());
        assert_eq!(Scenario::default(), *ScenarioSpec::freeway().scenario());
    }

    #[test]
    fn all_presets_validate_with_distinct_fingerprints() {
        let presets = ScenarioSpec::all_presets();
        assert!(presets.len() >= 6);
        let mut fps: Vec<u64> = presets.iter().map(ScenarioSpec::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), presets.len(), "fingerprints must be distinct");
        for p in &presets {
            assert!(p.scenario().validate().is_ok(), "{}", p.name);
        }
        // Topology presets actually carry their topologies.
        assert_eq!(
            ScenarioSpec::on_ramp_merge()
                .scenario()
                .road
                .topology
                .label(),
            "on_ramp"
        );
        assert_eq!(
            ScenarioSpec::lane_drop().scenario().road.topology.label(),
            "lane_drop"
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let s = Scenario {
            dt: 0.0,
            ..Default::default()
        };
        assert!(s.validate().is_err());

        let s = Scenario {
            ego_lane: 3,
            ..Default::default()
        };
        assert!(s.validate().is_err());

        let mut s = Scenario::default();
        s.npcs[0].lane = 9;
        assert!(s.validate().is_err());
    }
}
