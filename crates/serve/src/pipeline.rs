//! The per-worker processing core shared by the threaded server and the
//! deterministic simulator.
//!
//! One [`Pipeline`] owns the worker-local pieces needed to turn a batch
//! of observations into actions at any ladder rung: the micro-batched
//! policy entry ([`BatchPolicy`], the same weight-prepacked batched head
//! the fleet evaluation engine uses), the PID fallback, and
//! an optional mid-flight observation corruptor. The perturbation
//! detector is deliberately *not* worker-local: it watches the vehicle's
//! single realized-action stream, so the engine owns one
//! [`DetectorStream`] (behind a lock in the threaded server, plain in the
//! simulator) and lends it to whichever worker is serving the
//! [`Rung::Full`] rung.
//!
//! Keeping this logic in one place is what lets the simulator's
//! byte-identical runs vouch for the threaded server's behaviour — both
//! call exactly this code; only the clock and the threads differ.

use crate::config::ServeConfig;
use crate::ladder::Rung;
use attack_core::detector::PerturbationDetector;
use drive_agents::fallback::SafetyController;
use drive_nn::batch::BatchPolicy;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::scratch::BatchActScratch;
use drive_sim::faults::FaultInjector;
use drive_sim::vehicle::Actuation;
use std::sync::Arc;

/// Feature-frame index of the realized steering readback (see
/// `drive_sim::sensors`): the detector inverts Eq. (1) around it.
pub const STEER_FEATURE: usize = 3;

/// What one batch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One action per request, in batch order.
    pub actions: Vec<Actuation>,
    /// Whether this batch should alarm the ladder (detector residual over
    /// budget, or non-finite observations at the [`Rung::Full`] rung).
    pub alarm: bool,
}

/// Running totals a pipeline accumulates across batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Batches processed.
    pub batches: u64,
    /// Requests processed (any rung).
    pub processed: u64,
    /// Observation frames containing at least one non-finite value when
    /// they reached inference.
    pub nonfinite_frames: u64,
    /// Largest batch seen.
    pub max_batch: usize,
}

impl PipelineStats {
    /// Folds another worker's totals into this one (retiring a pipeline).
    pub fn absorb(&mut self, other: &PipelineStats) {
        self.batches += other.batches;
        self.processed += other.processed;
        self.nonfinite_frames += other.nonfinite_frames;
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

/// The serving-side view of the paper's perturbation detector: one per
/// *vehicle stream*, fed the realized steering readback (`obs[3]`) of
/// every frame served at the full rung and the steering command of every
/// action returned. Alarms when the estimated attack budget crosses the
/// ladder's threshold or when frames arrive non-finite.
#[derive(Debug, Clone)]
pub struct DetectorStream {
    detector: PerturbationDetector,
    alarm_budget: f64,
    last_cmd_steer: Option<f64>,
    last_obs_steer: f64,
}

impl DetectorStream {
    /// Builds the stream detector from the serve config.
    pub fn new(config: &ServeConfig) -> Self {
        DetectorStream {
            detector: PerturbationDetector::new(config.detector),
            alarm_budget: config.ladder.alarm_budget,
            last_cmd_steer: None,
            last_obs_steer: 0.0,
        }
    }

    /// Feeds the frames of one batch (before inference), returning
    /// whether the residual history now alarms. Non-finite readbacks
    /// alarm immediately.
    pub fn observe_frames(&mut self, obs: &[Vec<f32>]) -> bool {
        let mut nonfinite = false;
        for frame in obs {
            match frame.get(STEER_FEATURE).copied() {
                Some(v) if v.is_finite() => {
                    let a_now = f64::from(v);
                    if let Some(nu) = self.last_cmd_steer {
                        self.detector.observe(nu, self.last_obs_steer, a_now);
                    }
                    self.last_obs_steer = a_now;
                }
                _ => nonfinite = true,
            }
        }
        nonfinite || self.detector.estimated_budget() > self.alarm_budget
    }

    /// Records the last steering command served (the detector's `nu` for
    /// the next frame).
    pub fn note_served(&mut self, actions: &[Actuation]) {
        if let Some(last) = actions.last() {
            self.last_cmd_steer = Some(last.steer);
        }
    }

    /// The current estimated attack budget.
    pub fn estimated_budget(&self) -> f64 {
        self.detector.estimated_budget()
    }
}

/// Worker-local inference state. Not `Sync` — each worker owns one.
#[derive(Debug)]
pub struct Pipeline {
    head: BatchPolicy,
    scratch: BatchActScratch,
    fallback: SafetyController,
    injector: Option<FaultInjector>,
    stats: PipelineStats,
}

impl Pipeline {
    /// Builds a pipeline for one worker.
    ///
    /// # Panics
    ///
    /// Panics if the policy's observation dimension is below 3 — the
    /// fallback rung needs lane offset, heading, and speed.
    pub fn new(
        policy: Arc<GaussianPolicy>,
        config: &ServeConfig,
        injector: Option<FaultInjector>,
    ) -> Self {
        assert!(
            policy.obs_dim() >= 3,
            "serving needs >= 3 observation features for the fallback rung"
        );
        Pipeline {
            fallback: SafetyController::new(config.safety),
            scratch: BatchActScratch::default(),
            injector,
            head: BatchPolicy::new(policy),
            stats: PipelineStats::default(),
        }
    }

    /// Totals so far.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// What the injector has corrupted so far (0 without an injector).
    pub fn corrupted_values(&self) -> u64 {
        self.injector
            .as_ref()
            .map_or(0, |i| i.stats().corrupted_values as u64)
    }

    /// Tells the pipeline the ladder moved. Entering the fallback rung
    /// clears PID memory so a stale integral cannot jerk the wheel.
    pub fn on_rung_change(&mut self, to: Rung) {
        if to == Rung::Fallback {
            self.fallback.reset();
        }
    }

    /// Processes one batch at the given rung, corrupting observations
    /// first when an injector is installed (that is where a mid-flight
    /// fault strikes a real service: after admission, before inference).
    /// The engine lends its [`DetectorStream`] when serving
    /// [`Rung::Full`]; at lower rungs the detector cost is shed and
    /// `detector` is ignored.
    pub fn process(
        &mut self,
        rung: Rung,
        obs: &mut [Vec<f32>],
        detector: Option<&mut DetectorStream>,
    ) -> BatchResult {
        if let Some(inj) = self.injector.as_mut() {
            inj.begin_step();
            for frame in obs.iter_mut() {
                inj.corrupt_observation(frame);
            }
        }
        self.stats.batches += 1;
        self.stats.processed += obs.len() as u64;
        self.stats.max_batch = self.stats.max_batch.max(obs.len());
        self.stats.nonfinite_frames += obs
            .iter()
            .filter(|frame| frame.iter().any(|v| !v.is_finite()))
            .count() as u64;

        match rung {
            Rung::Fallback => {
                let actions = obs.iter().map(|frame| self.fallback.act(frame)).collect();
                BatchResult {
                    actions,
                    alarm: false,
                }
            }
            Rung::NoDetector => BatchResult {
                actions: self.infer(obs),
                alarm: false,
            },
            Rung::Full => {
                let alarm = match detector {
                    Some(stream) => {
                        let alarm = stream.observe_frames(obs);
                        let actions = self.infer(obs);
                        stream.note_served(&actions);
                        return BatchResult { actions, alarm };
                    }
                    None => false,
                };
                BatchResult {
                    actions: self.infer(obs),
                    alarm,
                }
            }
        }
    }

    /// Micro-batched deterministic policy inference; one GEMM pass for
    /// the whole batch through the shared [`BatchPolicy`] head,
    /// bit-identical to serial single-request calls.
    fn infer(&mut self, obs: &[Vec<f32>]) -> Vec<Actuation> {
        let refs: Vec<&[f32]> = obs.iter().map(Vec::as_slice).collect();
        let acted = self.head.act_batch(&refs, &mut self.scratch);
        (0..acted.rows())
            .map(|b| {
                let row = acted.row(b);
                Actuation::new(f64::from(row[0]), f64::from(row[1]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_nn::scratch::ActScratch;
    use drive_sim::faults::{FaultInjector, FaultSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy() -> Arc<GaussianPolicy> {
        let mut rng = StdRng::seed_from_u64(17);
        Arc::new(GaussianPolicy::new(6, &[16], 2, &mut rng))
    }

    fn frames(n: usize, tag: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..6)
                    .map(|j| {
                        let x = drive_seed::splitmix64(tag.wrapping_add((i * 7 + j) as u64));
                        ((x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
                    })
                    .collect()
            })
            .collect()
    }

    /// The f64 actuation path of micro-batched serving must be bit-exact
    /// with N serial single-observation inferences.
    #[test]
    fn batched_serving_matches_serial_inference_bit_exactly_f64() {
        let p = policy();
        let config = ServeConfig::default();
        let mut pipe = Pipeline::new(p.clone(), &config, None);
        let mut stream = DetectorStream::new(&config);
        let mut serial_scratch = ActScratch::default();
        let mut rng = StdRng::seed_from_u64(0);
        for (round, &n) in [1usize, 4, 7, 3].iter().enumerate() {
            let mut obs = frames(n, round as u64 * 1000);
            let got = pipe.process(Rung::Full, &mut obs, Some(&mut stream));
            assert_eq!(got.actions.len(), n);
            for (i, frame) in obs.iter().enumerate() {
                let a = p.act_with(frame, &mut rng, true, &mut serial_scratch);
                let want = Actuation::new(f64::from(a[0]), f64::from(a[1]));
                assert_eq!(
                    got.actions[i].steer.to_bits(),
                    want.steer.to_bits(),
                    "round {round} request {i} steer"
                );
                assert_eq!(
                    got.actions[i].thrust.to_bits(),
                    want.thrust.to_bits(),
                    "round {round} request {i} thrust"
                );
            }
        }
    }

    #[test]
    fn rungs_produce_different_paths() {
        let config = ServeConfig::default();
        let mut pipe = Pipeline::new(policy(), &config, None);
        let mut stream = DetectorStream::new(&config);
        let obs = frames(3, 9);
        let full = pipe.process(Rung::Full, &mut obs.clone(), Some(&mut stream));
        let nodet = pipe.process(Rung::NoDetector, &mut obs.clone(), None);
        // Policy output is rung-independent (the detector only watches).
        assert_eq!(full.actions, nodet.actions);
        let fb = pipe.process(Rung::Fallback, &mut obs.clone(), None);
        assert_ne!(
            fb.actions, full.actions,
            "fallback is a different controller"
        );
        for a in &fb.actions {
            assert!(a.thrust <= 0.0, "fallback never accelerates");
        }
    }

    #[test]
    fn nonfinite_observations_alarm_only_the_full_rung() {
        let config = ServeConfig::default();
        let mut pipe = Pipeline::new(policy(), &config, None);
        let mut stream = DetectorStream::new(&config);
        let mut obs = frames(2, 3);
        obs[1][STEER_FEATURE] = f32::NAN;
        assert!(
            pipe.process(Rung::Full, &mut obs.clone(), Some(&mut stream))
                .alarm
        );
        assert!(!pipe.process(Rung::NoDetector, &mut obs.clone(), None).alarm);
        assert!(!pipe.process(Rung::Fallback, &mut obs.clone(), None).alarm);
        assert_eq!(pipe.stats().nonfinite_frames, 3);
        // Actions stay finite even on poisoned frames (both the NN's
        // input guard and the fallback's sanitization).
        for rung in [Rung::Full, Rung::NoDetector, Rung::Fallback] {
            let mut poisoned = frames(2, 4);
            poisoned[0][2] = f32::INFINITY;
            for a in pipe.process(rung, &mut poisoned, Some(&mut stream)).actions {
                assert!(a.steer.is_finite() && a.thrust.is_finite(), "{rung}");
            }
        }
    }

    /// A consistent Eq. (1) stream keeps the detector quiet; an injected
    /// action-space delta on the readback trips it.
    #[test]
    fn detector_stream_alarms_on_attacked_readback_only() {
        let config = ServeConfig::default();
        let alpha = config.detector.alpha;
        let mut pipe = Pipeline::new(policy(), &config, None);
        let mut stream = DetectorStream::new(&config);
        let mut realized = 0.0f64;
        let mut alarmed_clean = false;
        let run = |stream: &mut DetectorStream,
                   pipe: &mut Pipeline,
                   realized: &mut f64,
                   delta: f64,
                   rounds: u64|
         -> bool {
            let mut alarmed = false;
            for round in 0..rounds {
                let mut obs = frames(1, round * 31);
                obs[0][STEER_FEATURE] = *realized as f32;
                let r = pipe.process(Rung::Full, &mut obs, Some(&mut *stream));
                alarmed |= r.alarm;
                let nu = r.actions[0].steer;
                *realized = (1.0 - alpha) * (nu + delta) + alpha * *realized;
            }
            alarmed
        };
        alarmed_clean |= run(&mut stream, &mut pipe, &mut realized, 0.0, 60);
        assert!(!alarmed_clean, "clean Eq.(1) stream must not alarm");
        let attacked = run(&mut stream, &mut pipe, &mut realized, 0.6, 60);
        assert!(attacked, "0.6 steering delta must trip the detector");
    }

    #[test]
    fn injector_corrupts_and_detector_path_alarms_eventually() {
        let config = ServeConfig::default();
        let inj = FaultInjector::for_episode(&FaultSchedule::poisoned(0.9, 5), 1);
        let mut pipe = Pipeline::new(policy(), &config, Some(inj));
        let mut stream = DetectorStream::new(&config);
        let mut alarmed = false;
        for round in 0..50 {
            let mut obs = frames(4, round);
            alarmed |= pipe.process(Rung::Full, &mut obs, Some(&mut stream)).alarm;
        }
        assert!(alarmed, "heavy NaN poisoning must alarm within 50 batches");
        assert!(pipe.corrupted_values() > 0);
        assert!(pipe.stats().nonfinite_frames > 0);
    }

    #[test]
    fn process_is_deterministic() {
        let config = ServeConfig::default();
        let run = || {
            let inj = FaultInjector::for_episode(&FaultSchedule::poisoned(0.4, 9), 2);
            let mut pipe = Pipeline::new(policy(), &config, Some(inj));
            let mut stream = DetectorStream::new(&config);
            let mut out = Vec::new();
            for round in 0..20 {
                let rung = match round % 3 {
                    0 => Rung::Full,
                    1 => Rung::NoDetector,
                    _ => Rung::Fallback,
                };
                let mut obs = frames(3, round);
                out.push(pipe.process(rung, &mut obs, Some(&mut stream)));
            }
            (out, *pipe.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_absorb_folds_totals() {
        let mut a = PipelineStats {
            batches: 2,
            processed: 5,
            nonfinite_frames: 1,
            max_batch: 3,
        };
        let b = PipelineStats {
            batches: 1,
            processed: 9,
            nonfinite_frames: 0,
            max_batch: 7,
        };
        a.absorb(&b);
        assert_eq!(a.batches, 3);
        assert_eq!(a.processed, 14);
        assert_eq!(a.max_batch, 7);
    }
}
