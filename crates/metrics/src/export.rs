//! CSV export of experiment data (for plotting outside the terminal).

use std::fmt::Write as _;
use std::path::Path;

/// A minimal CSV builder with RFC-4180-style quoting.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

impl Csv {
    /// Creates a CSV with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Csv {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the headers.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, expected {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the CSV has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV text.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_rows() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["1", "2"]).row(["x", "y"]);
        let s = c.to_csv_string();
        assert_eq!(s, "a,b\n1,2\nx,y\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn quotes_special_cells() {
        let mut c = Csv::new(["label"]);
        c.row(["has,comma"]).row(["has\"quote"]);
        let s = c.to_csv_string();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_arity_panics() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["only-one"]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("drive-metrics-csv-test");
        let path = dir.join("t.csv");
        let mut c = Csv::new(["v"]);
        c.row(["1"]);
        c.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
