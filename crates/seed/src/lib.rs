#![warn(missing_docs)]

//! # drive-seed — hierarchical deterministic seed derivation
//!
//! Every stochastic stream in the workspace (simulator episodes, SAC
//! training, fault injection, attacker exploration) must be independently
//! seeded *and* reproducible from one root seed. Historically each module
//! derived its streams ad hoc (`seed ^ 0x5f5f`-style magic constants),
//! which collides silently, is impossible to audit, and leaks derivation
//! details into every call site. This crate replaces all of that with one
//! primitive: the [`SeedTree`].
//!
//! A [`SeedTree`] is an immutable node in a labelled derivation tree.
//! [`SeedTree::root`] mixes the user's root seed through SplitMix64;
//! [`SeedTree::child`] derives a namespaced sub-node by hashing the child
//! label (FNV-1a) into the parent state and re-mixing. Labels are anything
//! `Display`, so grids read naturally:
//!
//! ```
//! use drive_seed::SeedTree;
//! let root = SeedTree::root(10_000);
//! let cell = root.child("fig4").child("camera").child(3);
//! assert_eq!(cell.path(), "root/fig4/camera/3");
//! // Sibling streams never collide, and the derivation is stable:
//! assert_ne!(cell.seed(), root.child("fig4").child("imu").child(3).seed());
//! assert_eq!(cell.seed(), SeedTree::root(10_000).child("fig4").child("camera").child(3).seed());
//! ```
//!
//! The node's [`SeedTree::seed`] feeds `StdRng::seed_from_u64` (or any
//! other consumer of a `u64` seed); [`SeedTree::path`] is recorded in run
//! manifests so a figure can be re-derived from its manifest alone.

/// SplitMix64 finalizer: a fast, well-distributed `u64 -> u64` mixer
/// (Steele et al., "Fast splittable pseudorandom number generators").
///
/// Used as the state-advance of [`SeedTree`] and available directly for
/// call sites that only need to decorrelate two combined seeds.
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash of a byte string.
///
/// The workspace's standard non-cryptographic checksum: checkpoint files,
/// run-manifest output checksums, and [`SeedTree`] label hashing all use
/// it, so a hash printed anywhere is comparable everywhere.
#[inline]
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A node in a hierarchical seed-derivation tree.
///
/// Nodes are cheap immutable values: `child` returns a new node and the
/// parent stays usable, so a grid loop can fan out
/// `root.child("fig6").child(agent).child(budget)` without bookkeeping.
/// See the crate docs for the derivation scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeedTree {
    state: u64,
    path: String,
}

impl SeedTree {
    /// The root node for a user-supplied seed.
    #[must_use]
    pub fn root(seed: u64) -> Self {
        SeedTree {
            state: splitmix64(seed),
            path: "root".to_string(),
        }
    }

    /// Derives the child node for `label`.
    ///
    /// The label's display form is FNV-hashed into the parent state and
    /// re-mixed, so distinct labels (and distinct positions in the tree)
    /// yield decorrelated streams. Integer labels are the idiomatic way to
    /// index episodes or grid cells.
    #[must_use]
    pub fn child(&self, label: impl std::fmt::Display) -> Self {
        let label = label.to_string();
        let state = splitmix64(self.state ^ fnv1a_64(label.as_bytes()));
        SeedTree {
            state,
            path: format!("{}/{}", self.path, label),
        }
    }

    /// The 64-bit seed of this node (feed to `StdRng::seed_from_u64`).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// The `/`-separated label path from the root, e.g.
    /// `"root/fig4/camera/3"`. Recorded in run manifests.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

/// A captured mid-stream position of a [`StdRng`](rand::rngs::StdRng).
///
/// A [`SeedTree`] pins where every stochastic stream *starts*; a
/// `StreamPos` pins where a stream currently *is*, so a crash-recovery
/// snapshot can resume a generator exactly where training left off instead
/// of replaying the stream from its seed. The position serializes as one
/// colon-separated hex token (stable, whitespace-free) for embedding in
/// the plain-text checkpoint format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPos([u64; 4]);

impl StreamPos {
    /// Captures the current position of a generator.
    #[must_use]
    pub fn capture(rng: &rand::rngs::StdRng) -> Self {
        StreamPos(rng.state())
    }

    /// Rebuilds a generator at this position; its next draw continues the
    /// captured stream.
    #[must_use]
    pub fn restore(&self) -> rand::rngs::StdRng {
        rand::rngs::StdRng::from_state(self.0)
    }

    /// Encodes the position as a single `s0:s1:s2:s3` hex token.
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!(
            "{:016x}:{:016x}:{:016x}:{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }

    /// Parses a token produced by [`StreamPos::to_hex`].
    ///
    /// # Errors
    ///
    /// Returns a message when the token is not four 16-digit hex words.
    pub fn from_hex(token: &str) -> Result<Self, String> {
        let mut words = [0u64; 4];
        let mut parts = token.split(':');
        for (i, w) in words.iter_mut().enumerate() {
            let part = parts
                .next()
                .ok_or_else(|| format!("stream position '{token}' has fewer than 4 words"))?;
            *w = u64::from_str_radix(part, 16)
                .map_err(|_| format!("stream position word {i} '{part}' is not hex"))?;
        }
        if parts.next().is_some() {
            return Err(format!("stream position '{token}' has more than 4 words"));
        }
        Ok(StreamPos(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_mixes_nearby_inputs() {
        // Consecutive seeds must land far apart: count differing bits.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roots_differ_per_seed_and_are_stable() {
        assert_ne!(SeedTree::root(0).seed(), SeedTree::root(1).seed());
        assert_eq!(SeedTree::root(42).seed(), SeedTree::root(42).seed());
    }

    #[test]
    fn children_are_namespaced_and_order_sensitive() {
        let root = SeedTree::root(7);
        assert_ne!(root.child("a").seed(), root.child("b").seed());
        assert_ne!(root.child("a").seed(), root.seed());
        // Path order matters: a/b != b/a.
        assert_ne!(
            root.child("a").child("b").seed(),
            root.child("b").child("a").seed()
        );
        // Label concatenation does not alias: ("ab", "c") != ("a", "bc").
        assert_ne!(
            root.child("ab").child("c").seed(),
            root.child("a").child("bc").seed()
        );
    }

    #[test]
    fn integer_and_string_labels_compose() {
        let root = SeedTree::root(10_000);
        let cell = root.child("fig4").child("camera").child(3usize);
        assert_eq!(cell.path(), "root/fig4/camera/3");
        // An integer label equals its decimal-string spelling by design
        // (labels hash their display form).
        assert_eq!(
            cell.seed(),
            root.child("fig4").child("camera").child("3").seed()
        );
    }

    #[test]
    fn sibling_grid_has_no_collisions() {
        use std::collections::HashSet;
        let root = SeedTree::root(123);
        let mut seen = HashSet::new();
        for exp in ["baseline", "fig4", "fig5", "fig6", "fig7", "ablations"] {
            for cell in 0..100 {
                assert!(
                    seen.insert(root.child(exp).child(cell).seed()),
                    "collision at {exp}/{cell}"
                );
            }
        }
    }

    #[test]
    fn stream_pos_round_trips_through_hex() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(SeedTree::root(3).child("pos").seed());
        for _ in 0..11 {
            let _: u64 = rng.gen();
        }
        let pos = StreamPos::capture(&rng);
        let token = pos.to_hex();
        let back = StreamPos::from_hex(&token).expect("hex round trip");
        assert_eq!(back, pos);
        let mut resumed = back.restore();
        let a: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| resumed.gen()).collect();
        assert_eq!(a, b, "restored generator continues the stream");
        // Malformed tokens are rejected, not panicked on.
        assert!(StreamPos::from_hex("zz").is_err());
        assert!(StreamPos::from_hex("1:2:3").is_err());
        assert!(StreamPos::from_hex("1:2:3:4:5").is_err());
        assert!(StreamPos::from_hex("1:2:3:g").is_err());
    }

    #[test]
    fn parent_survives_child_derivation() {
        let root = SeedTree::root(5);
        let before = root.seed();
        let _ = root.child("x");
        assert_eq!(root.seed(), before);
        assert_eq!(root.path(), "root");
    }
}
