#![warn(missing_docs)]

//! # drive-serve — resilient policy-inference serving
//!
//! The paper evaluates driving agents inside a lock-step simulator; a
//! deployed agent instead queries its policy through a serving stack
//! that must answer under deadlines, shed overload *visibly*, and keep
//! producing safe actions while parts of it fail. This crate is that
//! stack, built around three ideas:
//!
//! * **Micro-batching** — concurrent observation requests are held for a
//!   short deadline window and answered by one tiled-GEMM pass
//!   (`GaussianPolicy::act_batch_with`), which is bit-identical to
//!   serial inference, so batching is purely a throughput lever.
//! * **Typed outcomes** — every request resolves exactly once as served,
//!   degraded, shed, or timed out ([`request::Outcome`]); counters
//!   reconcile at drain, making silent request loss a checkable bug.
//! * **A Simplex degradation ladder** — under deadline pressure or
//!   detector alarm the service descends full pipeline → no detector →
//!   PID fallback ([`ladder`]), trading capability for guaranteed
//!   latency, and climbs back with hysteresis.
//!
//! Two execution engines share the same [`pipeline::Pipeline`] core: a
//! real multi-threaded server ([`server::Server`]) with bounded queues,
//! worker respawn, and graceful drain, and a virtual-time simulator
//! ([`sim`]) whose reports are byte-identical at a fixed seed — the
//! deterministic twin used by tests and CI gating. Faults (worker
//! kills/stalls, observation corruption) are seeded plans ([`faults`])
//! reusing `drive_sim::faults`.

pub mod config;
pub mod faults;
pub mod ladder;
pub mod pipeline;
pub mod queue;
pub mod report;
pub mod request;
pub mod server;
pub mod sim;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::config::ServeConfig;
    pub use crate::faults::{FaultPlan, FaultPlanConfig};
    pub use crate::ladder::{Ladder, LadderConfig, Rung, Transition};
    pub use crate::pipeline::Pipeline;
    pub use crate::report::ServeReport;
    pub use crate::request::{Counters, Outcome, OutcomeKind, Request, ShedReason};
    pub use crate::server::{Server, ServerHandle};
    pub use crate::sim::{run_sim, SimConfig};
}
