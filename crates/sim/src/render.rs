//! ASCII rendering of world state — a dependency-free way to *watch* an
//! episode in the terminal (the `overtaking_ascii` example) or to embed
//! human-readable snapshots in bug reports and test failures.

use crate::world::World;

/// Configuration of the ASCII viewport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Character columns of the road strip.
    pub cols: usize,
    /// Meters of road covered by the strip.
    pub span: f64,
    /// Meters shown behind the ego vehicle.
    pub behind: f64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            cols: 72,
            span: 90.0,
            behind: 15.0,
        }
    }
}

/// Renders a top-down strip of the road centered on the ego vehicle.
///
/// One text row per lane (leftmost lane on top), `E` for the ego vehicle,
/// `N` for NPCs, `=` for the barriers, plus a header line with time,
/// position, and speed.
///
/// ```
/// use drive_sim::prelude::*;
/// use drive_sim::render::{render_strip, RenderConfig};
///
/// let world = World::new(Scenario::default());
/// let strip = render_strip(&world, &RenderConfig::default());
/// assert!(strip.contains('E'));
/// assert!(strip.contains('N'));
/// ```
pub fn render_strip(world: &World, config: &RenderConfig) -> String {
    let road = &world.scenario().road;
    let ego = world.ego().pose.position;
    let cols = config.cols.max(8);
    let x0 = ego.x - config.behind;
    let mut lanes: Vec<Vec<char>> = (0..road.num_lanes).map(|_| vec!['.'; cols]).collect();
    let col_of = |x: f64| -> Option<usize> {
        let f = (x - x0) / config.span;
        (0.0..1.0)
            .contains(&f)
            .then(|| ((f * cols as f64) as usize).min(cols - 1))
    };
    for npc in world.npcs() {
        let p = npc.vehicle.pose.position;
        if let Some(c) = col_of(p.x) {
            let lane = road.lane_of(p.y);
            lanes[lane][c] = 'N';
        }
    }
    if let Some(c) = col_of(ego.x) {
        let lane = road.lane_of(ego.y);
        lanes[lane][c] = 'E';
    }
    let barrier: String = "=".repeat(cols);
    let mut out = format!(
        "t={:5.1}s  x={:6.1} m  v={:4.1} m/s\n{barrier}\n",
        world.time(),
        ego.x,
        world.ego().speed
    );
    for lane in lanes.iter().rev() {
        out.push_str(&lane.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&barrier);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::vehicle::Actuation;

    #[test]
    fn strip_shape_and_markers() {
        let world = World::new(Scenario::default());
        let config = RenderConfig::default();
        let s = render_strip(&world, &config);
        let lines: Vec<&str> = s.lines().collect();
        // Header + barrier + 3 lanes + barrier.
        assert_eq!(lines.len(), 1 + 1 + 3 + 1);
        assert!(lines[1].chars().all(|c| c == '='));
        assert_eq!(s.matches('E').count(), 1);
        // NPCs at 30/55/85 m are inside the default 90 m span from -15 m.
        assert!(s.matches('N').count() >= 2);
    }

    #[test]
    fn ego_marker_tracks_lane() {
        let s = Scenario {
            ego_lane: 0,
            npcs: Vec::new(),
            ..Default::default()
        };
        let world = World::new(s);
        let text = render_strip(&world, &RenderConfig::default());
        let lines: Vec<&str> = text.lines().collect();
        // Lane 0 is the bottom lane row (just above the lower barrier).
        assert!(lines[4].contains('E'));
        assert!(!lines[2].contains('E'));
    }

    #[test]
    fn out_of_span_npcs_are_hidden() {
        let s = Scenario {
            npcs: vec![crate::scenario::NpcSpawn {
                lane: 1,
                x: 500.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let world = World::new(s);
        let text = render_strip(&world, &RenderConfig::default());
        assert_eq!(text.matches('N').count(), 0);
    }

    #[test]
    fn render_follows_moving_ego() {
        let mut s = Scenario::default();
        s.npcs.clear();
        let mut world = World::new(s);
        for _ in 0..50 {
            world.step(Actuation::new(0.0, 0.2));
        }
        let text = render_strip(&world, &RenderConfig::default());
        assert!(text.contains("t=  5.0s"));
        assert_eq!(text.matches('E').count(), 1);
    }
}
