//! A geometric "oracle" attacker.
//!
//! This non-learned baseline implements the obvious strategy the
//! adversarial reward encodes: stay quiet until the critical-moment
//! indicator `I(omega)` fires, then steer the ego vehicle straight at the
//! nearest NPC. It serves two purposes:
//!
//! 1. a *baseline* against which the learned attack policies are compared
//!    (ablation benches), and
//! 2. a *teacher* for behaviour-cloning the camera attack policy before SAC
//!    fine-tuning, which makes attacker training fast and reliable on CPU.

use crate::adv_reward::{AdvReward, AdvRewardConfig};
use crate::budget::AttackBudget;
use drive_agents::runner::SteerAttacker;
use drive_sim::world::{RelativeGeometry, World};
use serde::{Deserialize, Serialize};

/// The geometric oracle attack policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleAttacker {
    /// Budget scaling the injected perturbation.
    pub budget: AttackBudget,
    /// Reward configuration defining the critical window (`beta`, range).
    pub reward: AdvRewardConfig,
}

impl OracleAttacker {
    /// Creates an oracle with the given budget and the default critical
    /// window.
    pub fn new(budget: AttackBudget) -> Self {
        OracleAttacker {
            budget,
            reward: AdvRewardConfig::default(),
        }
    }

    /// Raw attack action in `[-1, 1]` before budget scaling — full-scale
    /// steering towards the nearest NPC during critical moments, zero
    /// otherwise. This is the quantity a learned policy is cloned from.
    pub fn raw_action(&self, world: &World) -> f64 {
        let adv = AdvReward::new(self.reward);
        if !adv.critical_moment(world) {
            return 0.0;
        }
        let (_, npc) = world
            .nearest_npc()
            .expect("critical moment implies a target");
        let rel = RelativeGeometry::between(world.ego(), npc);
        // Steer towards the target's lateral side. e2n already points from
        // ego to NPC; its lateral sign in road frame decides left/right.
        if rel.e2n.y >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

impl SteerAttacker for OracleAttacker {
    fn reset(&mut self, _world: &World) {}

    fn delta(&mut self, world: &World) -> f64 {
        self.budget.scale(self.raw_action(world))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_agents::modular::{ModularAgent, ModularConfig};
    use drive_agents::runner::run_episode;
    use drive_sim::scenario::{NpcSpawn, Scenario};
    use drive_sim::vehicle::Actuation;
    use drive_sim::world::World;

    #[test]
    fn quiet_when_far_from_traffic() {
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 1,
                x: 120.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let world = World::new(s);
        let mut oracle = OracleAttacker::new(AttackBudget::new(1.0));
        assert_eq!(oracle.delta(&world), 0.0);
    }

    #[test]
    fn attacks_towards_adjacent_npc() {
        // NPC level with the ego in the left lane: steer left (+).
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 2,
                x: 2.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let mut world = World::new(s);
        world.step(Actuation::new(0.0, 0.0));
        let mut oracle = OracleAttacker::new(AttackBudget::new(0.8));
        assert_eq!(oracle.delta(&world), 0.8);

        // Mirror: NPC in the right lane → steer right (-).
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 0,
                x: 2.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let mut world = World::new(s);
        world.step(Actuation::new(0.0, 0.0));
        assert_eq!(oracle.delta(&world), -0.8);
    }

    #[test]
    fn oracle_causes_side_collisions_against_modular_agent() {
        // Full-budget oracle vs the modular pipeline over several seeds:
        // a decent share of episodes must end in the desired side collision.
        let scenario = Scenario::default();
        let mut side = 0;
        let mut any_collision = 0;
        for seed in 0..10 {
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            let mut oracle = OracleAttacker::new(AttackBudget::new(1.0));
            let rec = run_episode(&mut agent, &scenario, seed, Some(&mut oracle), |_, _, _| {});
            if rec.side_collision() {
                side += 1;
            }
            if rec.collision.is_some() {
                any_collision += 1;
            }
        }
        assert!(any_collision >= 5, "collisions {any_collision}/10");
        assert!(side >= 3, "side collisions {side}/10");
    }

    #[test]
    fn zero_budget_oracle_is_harmless() {
        let scenario = Scenario::default();
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let mut oracle = OracleAttacker::new(AttackBudget::ZERO);
        let rec = run_episode(&mut agent, &scenario, 3, Some(&mut oracle), |_, _, _| {});
        assert!(rec.collision.is_none());
        assert_eq!(rec.attack_effort(), 0.0);
    }
}
