//! `repro_bench merge`: verify and assemble a sharded run.
//!
//! The merge is the read side of [`crate::shard`]: it never simulates.
//! It (1) loads the shard header and re-derives the run parameters, (2)
//! verifies the checkpoint checksum of **every** published sidecar, (3)
//! groups sidecars by cell key — two sidecars for one key with the same
//! record digest are a benign duplicate (cells are deterministic; a
//! stalled worker and its thief both finishing is expected), while
//! *different* digests are a hard error naming both owners, (4) builds a
//! merged single-process journal from the winning sidecars, (5) replays
//! the real experiment grid against that journal in a strict probe pass
//! that enumerates any cell no worker published (nonzero exit, every gap
//! listed), and (6) replays once more with output sinks attached,
//! producing CSVs, SVGs, and manifests **byte-identical** to an
//! uninterrupted single-process run — cell ordering is defined by the
//! grid and the seed namespace, not by which worker finished first.

use crate::cli::{CliArgs, CliError};
use crate::engine::{self, Registry, RunContext};
use crate::harness::Scale;
use crate::journal::{scan_frames, JournalHandle, RunHeader, MAGIC};
use crate::shard::ShardHeader;
use drive_seed::fnv1a_64;
use drive_sim::record::{decode_records, encode_records, EpisodeRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One verified, decoded sidecar from the shard's `cells/` area.
#[derive(Debug)]
struct Sidecar {
    owner: String,
    file: String,
    digest: u64,
    records: Vec<EpisodeRecord>,
}

/// Everything scanned out of a shard directory.
#[derive(Debug, Default)]
struct ShardScan {
    /// Verified sidecars grouped by cell key (insertion order: sorted
    /// directory listing, so reports are deterministic).
    cells: BTreeMap<u64, Vec<Sidecar>>,
    /// Cell labels/episode counts recovered from the per-worker WALs.
    labels: BTreeMap<u64, (String, usize)>,
    /// Worker ids that contributed a WAL.
    workers: Vec<String>,
}

/// Parsed `repro_bench merge` command line.
#[derive(Debug)]
pub struct MergeCli {
    /// The shared shard directory (first positional argument).
    pub dir: PathBuf,
    /// Where merged outputs land (`--out`, default `<dir>/merged`).
    pub out: PathBuf,
    /// Standard pipeline flags (`--quick`, `--artifacts`, `--fleet`,
    /// `--precision`); these must reproduce the workers' configuration
    /// and are verified against the shard header.
    pub cli: CliArgs,
}

impl MergeCli {
    /// Parses `repro_bench merge <dir> [--out <dir>] [standard flags]`.
    ///
    /// # Errors
    ///
    /// [`CliError`] for malformed flags or a missing directory operand.
    pub fn parse(args: &[String]) -> Result<MergeCli, CliError> {
        let mut rest: Vec<String> = Vec::new();
        let mut dir: Option<PathBuf> = None;
        let mut out: Option<PathBuf> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" => {
                    out =
                        Some(PathBuf::from(it.next().ok_or_else(|| {
                            CliError::MissingValue("--out".to_string())
                        })?));
                }
                other if dir.is_none() && !other.starts_with("--") => {
                    dir = Some(PathBuf::from(other));
                }
                other => rest.push(other.to_string()),
            }
        }
        let dir = dir.ok_or_else(|| CliError::MissingValue("merge <dir>".to_string()))?;
        let out = out.unwrap_or_else(|| dir.join("merged"));
        Ok(MergeCli {
            dir,
            out,
            cli: CliArgs::parse(&rest)?,
        })
    }
}

/// Entry point for the `repro_bench merge` subcommand.
pub fn main(args: &[String]) -> i32 {
    let parsed = match MergeCli::parse(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return crate::cli::exit_code(&e);
        }
    };
    match run_merge(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            crate::cli::exit_code(&e)
        }
    }
}

/// Runs the full merge (see the module docs for the six stages).
///
/// # Errors
///
/// [`CliError::Resume`] for every integrity failure — unreadable or
/// mismatching header, corrupt sidecar, conflicting sidecars, missing
/// cells — and [`CliError::Io`] for output-sink failures. All exit
/// nonzero through [`crate::cli::exit_code`].
pub fn run_merge(parsed: &MergeCli) -> Result<(), CliError> {
    let header = ShardHeader::load(&parsed.dir).map_err(CliError::Resume)?;
    let config = parsed.cli.pipeline_config();
    let scale = Scale {
        box_episodes: header.run.box_episodes,
        scatter_rounds: header.run.scatter_rounds,
        seed: header.run.seed,
    };
    let expected = RunHeader::for_run(&config, scale);
    if expected != header.run {
        return Err(CliError::Resume(format!(
            "shard header pins config {:016x} but these flags derive {:016x} — \
             pass the same --quick/--artifacts the workers used",
            header.run.config_hash, expected.config_hash
        )));
    }
    let experiments: Vec<_> = header
        .selection
        .iter()
        .map(|name| {
            Registry::find(name).ok_or_else(|| {
                CliError::Resume(format!("shard header names unknown experiment '{name}'"))
            })
        })
        .collect::<Result<_, _>>()?;

    let scan = scan_shard(&parsed.dir).map_err(CliError::Resume)?;
    let conflicts = find_conflicts(&scan);
    if !conflicts.is_empty() {
        return Err(CliError::Resume(format!(
            "{} conflicting cell(s):\n{}",
            conflicts.len(),
            conflicts.join("\n")
        )));
    }
    let duplicates: usize = scan.cells.values().map(|s| s.len() - 1).sum();
    eprintln!(
        "[merge] {} verified sidecar cell(s) from {} worker(s) ({} benign duplicate(s))",
        scan.cells.len(),
        scan.workers.len(),
        duplicates
    );

    // Assemble the merged journal from the winning sidecars. The journal
    // replays by key, so store order is irrelevant to the outputs; keys
    // are iterated sorted anyway for deterministic progress rows.
    std::fs::create_dir_all(&parsed.out)?;
    let journal = Arc::new(
        JournalHandle::create(parsed.out.join("journal"), header.run)
            .map_err(|e| CliError::Resume(e.to_string()))?,
    );
    for (key, sidecars) in &scan.cells {
        let winner = &sidecars[0];
        let label = scan
            .labels
            .get(key)
            .map(|(label, _)| label.clone())
            .unwrap_or_else(|| format!("(recovered from {})", winner.file));
        journal
            .store_cell(*key, &label, winner.records.len(), &winner.records)
            .map_err(CliError::Io)?;
    }

    // Probe pass: replay the real grid with a missing-cells collector —
    // no sinks, no simulation. Any cell the journal cannot serve is a
    // gap some worker still owes the run.
    let artifacts = attack_core::pipeline::prepare(&config);
    let missing = Arc::new(Mutex::new(Vec::new()));
    let mut probe = RunContext::new(&artifacts, &config, scale);
    probe.journal = Some(Arc::clone(&journal));
    probe.missing_cells = Some(Arc::clone(&missing));
    probe.fleet = parsed.cli.fleet;
    probe.precision = parsed.cli.precision;
    for exp in &experiments {
        let _ = exp.run(&probe);
    }
    drop(probe);
    let missing: Vec<String> = std::mem::take(&mut *missing.lock().expect("missing-cells lock"));
    if !missing.is_empty() {
        return Err(CliError::Resume(format!(
            "{} cell(s) have no published sidecar — the shard is incomplete:\n  {}",
            missing.len(),
            missing.join("\n  ")
        )));
    }

    // Final pass: replay once more with sinks attached. Fresh context
    // (fresh memo), same journal; every cell loads from its sidecar, so
    // the outputs are byte-identical to a single-process run.
    let mut ctx = RunContext::new(&artifacts, &config, scale);
    ctx.journal = Some(Arc::clone(&journal));
    ctx.csv_dir = Some(parsed.out.clone());
    ctx.svg_dir = Some(parsed.out.clone());
    ctx.fleet = parsed.cli.fleet;
    ctx.precision = parsed.cli.precision;
    for exp in &experiments {
        let outcome = engine::execute(*exp, &ctx)?;
        println!("{}", outcome.report);
        for path in &outcome.written {
            eprintln!("[out] wrote {}", path.display());
        }
    }
    eprintln!(
        "[merge] assembled {} experiment(s) from {} cell(s) into {}",
        experiments.len(),
        scan.cells.len(),
        parsed.out.display()
    );
    Ok(())
}

/// Scans, checksum-verifies, and conflict-checks a shard directory,
/// returning the number of distinct cells found. This is the pure
/// verification half of [`run_merge`] — no experiments are replayed —
/// exposed for the `shard_merge_432cells` bench pseudo-row, which gates
/// the per-sidecar verification cost at merge scale.
pub fn verify_shard(dir: &Path) -> Result<usize, String> {
    let scan = scan_shard(dir)?;
    let conflicts = find_conflicts(&scan);
    if !conflicts.is_empty() {
        return Err(conflicts.join("\n"));
    }
    Ok(scan.cells.len())
}

/// Scans and verifies a shard directory: every sidecar's checkpoint
/// checksum and record encoding, plus the per-worker WAL metadata.
fn scan_shard(dir: &Path) -> Result<ShardScan, String> {
    let mut scan = ShardScan::default();

    // Per-worker WALs: labels and episode counts for the merged journal's
    // progress rows. A missing or torn WAL only loses labels, never
    // results — the sidecars are the ground truth.
    let workers_dir = dir.join("workers");
    let mut worker_dirs: Vec<PathBuf> = match std::fs::read_dir(&workers_dir) {
        Ok(entries) => entries.flatten().map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    worker_dirs.sort();
    for worker_dir in worker_dirs {
        let Ok(bytes) = std::fs::read(worker_dir.join("wal.bin")) else {
            continue;
        };
        if !bytes.starts_with(MAGIC) {
            continue;
        }
        let (records, _) = scan_frames(&bytes[MAGIC.len()..]);
        for line in records.iter().skip(1) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() >= 5 && parts[0] == "cell" {
                let (Ok(key), Ok(episodes)) =
                    (u64::from_str_radix(parts[1], 16), parts[3].parse::<usize>())
                else {
                    continue;
                };
                scan.labels
                    .entry(key)
                    .or_insert_with(|| (parts[4..].join(" "), episodes));
            }
        }
        if let Some(name) = worker_dir.file_name() {
            scan.workers.push(name.to_string_lossy().into_owned());
        }
    }

    let cells_dir = dir.join("cells");
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&cells_dir) {
        Ok(entries) => entries.flatten().map(|e| e.path()).collect(),
        Err(e) => return Err(format!("cannot read {}: {e}", cells_dir.display())),
    };
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        // `save_to_file` temporaries and stray files are not sidecars.
        let Some(stem) = name
            .strip_prefix("cell-")
            .and_then(|s| s.strip_suffix(".ckpt"))
        else {
            continue;
        };
        let Some((key_hex, owner)) = stem.split_once('-') else {
            continue;
        };
        let Ok(key) = u64::from_str_radix(key_hex, 16) else {
            continue;
        };
        // Every sidecar must verify: its own checkpoint checksum first,
        // then a well-formed record encoding. An atomic-rename publish
        // never leaves partials, so failures here mean real corruption.
        let text = drive_nn::checkpoint::load_from_file(&path)
            .map_err(|e| format!("sidecar {} fails verification: {e}", path.display()))?;
        let records = decode_records(&text)
            .map_err(|e| format!("sidecar {} does not decode: {e}", path.display()))?;
        // Canonical digest: re-encode the decoded records, exactly what
        // the publisher and the merged journal hash.
        let digest = fnv1a_64(encode_records(&records).as_bytes());
        scan.cells.entry(key).or_default().push(Sidecar {
            owner: owner.to_string(),
            file: name,
            digest,
            records,
        });
    }
    if scan.cells.is_empty() {
        return Err(format!("no published sidecars in {}", cells_dir.display()));
    }
    Ok(scan)
}

/// Conflict report: for every key whose sidecars disagree on the record
/// digest, one line naming each owner and digest.
fn find_conflicts(scan: &ShardScan) -> Vec<String> {
    let mut out = Vec::new();
    for (key, sidecars) in &scan.cells {
        let first = sidecars[0].digest;
        if sidecars.iter().any(|s| s.digest != first) {
            let detail: Vec<String> = sidecars
                .iter()
                .map(|s| format!("{} (owner {}, digest {:016x})", s.file, s.owner, s.digest))
                .collect();
            let label = scan
                .labels
                .get(key)
                .map(|(label, _)| label.as_str())
                .unwrap_or("(unlabeled)");
            out.push(format!(
                "cell {key:016x} [{label}]: {}",
                detail.join(" vs ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardConfig, ShardState};

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> RunHeader {
        RunHeader {
            seed: 77,
            config_hash: 0xabcd,
            box_episodes: 3,
            scatter_rounds: 2,
        }
    }

    fn records(tag: usize) -> Vec<EpisodeRecord> {
        (0..3)
            .map(|i| EpisodeRecord {
                steps: tag * 10 + i,
                dt: 0.05,
                ..EpisodeRecord::default()
            })
            .collect()
    }

    fn publish(dir: &Path, owner: &str, key: u64, recs: &[EpisodeRecord]) {
        let state = ShardState::open(ShardConfig::new(dir, owner), &header()).unwrap();
        let recs = recs.to_vec();
        let n = recs.len();
        let got = state.run_cell(key, &format!("cell-{key}"), n, move || (recs, true));
        assert_eq!(got.len(), n);
    }

    #[test]
    fn scan_collects_labels_and_verified_sidecars() {
        let dir = temp("repro-merge-scan");
        publish(&dir, "w1", 1, &records(1));
        publish(&dir, "w2", 2, &records(2));
        // A stalled w2 that finished cell 1 after w1's thief did would
        // publish an identical sidecar: benign duplicate. (Through
        // `run_cell` it would just load w1's result, so write the
        // sidecar directly, as the slow worker's publish path does.)
        drive_nn::checkpoint::save_to_file(
            dir.join("cells")
                .join(format!("cell-{:016x}-w2.ckpt", 1u64)),
            &encode_records(&records(1)),
        )
        .unwrap();

        let scan = scan_shard(&dir).unwrap();
        assert_eq!(scan.cells.len(), 2);
        assert_eq!(scan.cells[&1].len(), 2, "duplicate kept for audit");
        assert_eq!(scan.cells[&1][0].digest, scan.cells[&1][1].digest);
        assert_eq!(scan.workers, ["w1", "w2"]);
        assert_eq!(scan.labels[&1].0, "cell-1");
        assert!(find_conflicts(&scan).is_empty());
    }

    #[test]
    fn conflicting_sidecars_name_both_owners() {
        let dir = temp("repro-merge-conflict");
        publish(&dir, "w1", 5, &records(1));
        // An injected sidecar with different records for the same key —
        // exactly what a nondeterminism bug (or tampering) would produce.
        let evil = encode_records(&records(9));
        drive_nn::checkpoint::save_to_file(
            dir.join("cells")
                .join(format!("cell-{:016x}-evil.ckpt", 5u64)),
            &evil,
        )
        .unwrap();

        let scan = scan_shard(&dir).unwrap();
        let conflicts = find_conflicts(&scan);
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].contains("owner w1"), "{}", conflicts[0]);
        assert!(conflicts[0].contains("owner evil"), "{}", conflicts[0]);
        assert!(
            conflicts[0].contains("cell-5"),
            "label from WAL: {}",
            conflicts[0]
        );
    }

    #[test]
    fn corrupt_sidecar_fails_the_scan() {
        let dir = temp("repro-merge-corrupt");
        publish(&dir, "w1", 3, &records(1));
        let path = dir
            .join("cells")
            .join(format!("cell-{:016x}-w1.ckpt", 3u64));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, bytes).unwrap();
        let err = scan_shard(&dir).unwrap_err();
        assert!(err.contains("fails verification"), "{err}");
    }

    #[test]
    fn merge_cli_parses_dir_out_and_forwards_flags() {
        let args: Vec<String> = ["/tmp/sh", "--out", "/tmp/m", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = MergeCli::parse(&args).unwrap();
        assert_eq!(parsed.dir, PathBuf::from("/tmp/sh"));
        assert_eq!(parsed.out, PathBuf::from("/tmp/m"));
        assert!(parsed.cli.quick);
        // Default out dir nests under the shard dir.
        let bare: Vec<String> = vec!["/tmp/sh".into()];
        assert_eq!(
            MergeCli::parse(&bare).unwrap().out,
            PathBuf::from("/tmp/sh/merged")
        );
        assert!(matches!(
            MergeCli::parse(&[]),
            Err(CliError::MissingValue(_))
        ));
    }
}
