//! Bench-compare: gate perf regressions against the checked-in baseline.
//!
//! `repro_bench bench-compare <current.json>` parses a fresh `PERF_JSON`
//! export from the `perf` criterion bench (schema `repro-bench/bench-v1`)
//! and diffs its medians against the committed `BENCH_perf.json`. A bench
//! whose `current / baseline` median ratio exceeds the tolerance is a
//! regression; a baseline bench missing from the current run also fails
//! (a silently dropped bench must not pass the gate), while a bench that
//! only exists in the current run is informational. The CLI exits nonzero
//! on any failure, which is what makes the CI perf-smoke job gating.

use crate::json::{get, get_f64, get_str, Json};
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag the `perf` bench stamps into its `PERF_JSON` export.
pub const BENCH_SCHEMA: &str = "repro-bench/bench-v1";

/// Default acceptable `current / baseline` median ratio.
pub const DEFAULT_TOLERANCE: f64 = 1.5;

/// One bench's median, parsed from a bench-v1 document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Bench name as registered with criterion.
    pub name: String,
    /// Median wall time in nanoseconds.
    pub median_ns: f64,
}

/// Verdict for one bench name appearing in either file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchStatus {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than `tolerance * baseline`.
    Regressed,
    /// In the baseline but absent from the current run — fails the gate.
    Missing,
    /// Only in the current run — informational, never fails.
    New,
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Bench name.
    pub name: String,
    /// Baseline median (ns), if the baseline has this bench.
    pub baseline_ns: Option<f64>,
    /// Current median (ns), if the current run has this bench.
    pub current_ns: Option<f64>,
    /// `current / baseline` where both exist.
    pub ratio: Option<f64>,
    /// Verdict under the tolerance.
    pub status: BenchStatus,
}

/// A full baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-bench rows, in baseline order with current-only rows appended.
    pub deltas: Vec<BenchDelta>,
    /// The ratio threshold the rows were judged against.
    pub tolerance: f64,
}

impl Comparison {
    /// Whether the gate passes (no regressed and no missing benches).
    pub fn passed(&self) -> bool {
        !self
            .deltas
            .iter()
            .any(|d| matches!(d.status, BenchStatus::Regressed | BenchStatus::Missing))
    }

    /// Renders an aligned table of every row plus a pass/fail summary.
    pub fn render(&self) -> String {
        let name_w = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(4)
            .max("bench".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>14}  {:>14}  {:>7}  status",
            "bench", "baseline_ns", "current_ns", "ratio"
        );
        for d in &self.deltas {
            let fmt_ns = |v: Option<f64>| match v {
                Some(ns) => format!("{ns:.1}"),
                None => "-".to_string(),
            };
            let ratio = match d.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_string(),
            };
            let status = match d.status {
                BenchStatus::Ok => "ok",
                BenchStatus::Regressed => "REGRESSED",
                BenchStatus::Missing => "MISSING",
                BenchStatus::New => "new",
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>14}  {:>14}  {:>7}  {status}",
                d.name,
                fmt_ns(d.baseline_ns),
                fmt_ns(d.current_ns),
                ratio
            );
        }
        let bad = self
            .deltas
            .iter()
            .filter(|d| matches!(d.status, BenchStatus::Regressed | BenchStatus::Missing))
            .count();
        if self.passed() {
            let _ = writeln!(
                out,
                "bench-compare OK: {} bench(es) within {:.2}x of baseline",
                self.deltas.len(),
                self.tolerance
            );
        } else {
            let _ = writeln!(
                out,
                "bench-compare FAILED: {bad} bench(es) regressed or missing (tolerance {:.2}x)",
                self.tolerance
            );
        }
        out
    }
}

/// Parses a `repro-bench/bench-v1` document into its bench medians.
///
/// # Errors
///
/// Returns a message for invalid JSON, a wrong schema tag, or malformed
/// bench entries.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let value = Json::parse(text)?;
    let obj = value.as_object().ok_or("bench root is not an object")?;
    let schema = get_str(obj, "schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported bench schema '{schema}' (expected '{BENCH_SCHEMA}')"
        ));
    }
    let mut entries = Vec::new();
    for (i, item) in get(obj, "benches")?
        .as_array()
        .ok_or("'benches' is not an array")?
        .iter()
        .enumerate()
    {
        let o = item
            .as_object()
            .ok_or_else(|| format!("benches[{i}] is not an object"))?;
        entries.push(BenchEntry {
            name: get_str(o, "name")?,
            median_ns: get_f64(o, "median_ns")?,
        });
    }
    Ok(entries)
}

/// Compares two parsed bench lists under a tolerance ratio.
pub fn compare(baseline: &[BenchEntry], current: &[BenchEntry], tolerance: f64) -> Comparison {
    let mut deltas = Vec::with_capacity(baseline.len());
    for b in baseline {
        let cur = current.iter().find(|c| c.name == b.name);
        let delta = match cur {
            None => BenchDelta {
                name: b.name.clone(),
                baseline_ns: Some(b.median_ns),
                current_ns: None,
                ratio: None,
                status: BenchStatus::Missing,
            },
            Some(c) => {
                let ratio = if b.median_ns > 0.0 {
                    c.median_ns / b.median_ns
                } else {
                    f64::INFINITY
                };
                BenchDelta {
                    name: b.name.clone(),
                    baseline_ns: Some(b.median_ns),
                    current_ns: Some(c.median_ns),
                    ratio: Some(ratio),
                    status: if ratio <= tolerance {
                        BenchStatus::Ok
                    } else {
                        BenchStatus::Regressed
                    },
                }
            }
        };
        deltas.push(delta);
    }
    for c in current {
        if !baseline.iter().any(|b| b.name == c.name) {
            deltas.push(BenchDelta {
                name: c.name.clone(),
                baseline_ns: None,
                current_ns: Some(c.median_ns),
                ratio: None,
                status: BenchStatus::New,
            });
        }
    }
    Comparison { deltas, tolerance }
}

/// Loads and compares two bench-v1 files.
///
/// # Errors
///
/// Returns a message for unreadable files or invalid documents.
pub fn compare_files(
    current: &Path,
    baseline: &Path,
    tolerance: f64,
) -> Result<Comparison, String> {
    let read = |path: &Path| -> Result<Vec<BenchEntry>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_bench_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    Ok(compare(&read(baseline)?, &read(current)?, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(benches: &[(&str, f64)]) -> String {
        let rows: Vec<String> = benches
            .iter()
            .map(|(n, m)| {
                format!(
                    "{{\"name\": \"{n}\", \"median_ns\": {m}, \"mean_ns\": {m}, \"iters\": 10}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\": \"{BENCH_SCHEMA}\", \"quick\": false, \"benches\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn parses_the_bench_schema() {
        let entries = parse_bench_json(&doc(&[("a", 100.0), ("b", 5.5)])).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a");
        assert_eq!(entries[1].median_ns, 5.5);
        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json(&doc(&[]).replace("bench-v1", "bench-v9")).is_err());
    }

    #[test]
    fn within_tolerance_passes_and_over_fails() {
        let base = parse_bench_json(&doc(&[("a", 100.0), ("b", 100.0)])).unwrap();
        let cur = parse_bench_json(&doc(&[("a", 140.0), ("b", 160.0)])).unwrap();
        let cmp = compare(&base, &cur, 1.5);
        assert!(!cmp.passed());
        assert_eq!(cmp.deltas[0].status, BenchStatus::Ok);
        assert_eq!(cmp.deltas[1].status, BenchStatus::Regressed);
        assert!((cmp.deltas[1].ratio.unwrap() - 1.6).abs() < 1e-9);
        // The same current run passes a looser gate.
        assert!(compare(&base, &cur, 2.0).passed());
    }

    #[test]
    fn missing_fails_and_new_is_informational() {
        let base = parse_bench_json(&doc(&[("a", 100.0), ("gone", 50.0)])).unwrap();
        let cur = parse_bench_json(&doc(&[("a", 90.0), ("fresh", 10.0)])).unwrap();
        let cmp = compare(&base, &cur, 1.5);
        assert!(!cmp.passed(), "a dropped bench must fail the gate");
        let by_name = |n: &str| cmp.deltas.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("gone").status, BenchStatus::Missing);
        assert_eq!(by_name("fresh").status, BenchStatus::New);
        // Without the dropped bench the new-only row alone passes.
        let cmp = compare(&base[..1], &cur, 1.5);
        assert!(cmp.passed());
    }

    #[test]
    fn render_mentions_every_bench_and_the_verdict() {
        let base = parse_bench_json(&doc(&[("fast_kernel", 100.0)])).unwrap();
        let cur = parse_bench_json(&doc(&[("fast_kernel", 400.0)])).unwrap();
        let text = compare(&base, &cur, 1.5).render();
        assert!(text.contains("fast_kernel"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("FAILED"));
        let ok = compare(&base, &base, 1.5).render();
        assert!(ok.contains("bench-compare OK"));
    }

    #[test]
    fn compares_files_on_disk() {
        let dir = std::env::temp_dir().join("repro-bench-benchcmp-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("base.json"), doc(&[("a", 100.0)])).unwrap();
        std::fs::write(dir.join("cur.json"), doc(&[("a", 101.0)])).unwrap();
        let cmp = compare_files(&dir.join("cur.json"), &dir.join("base.json"), 1.5).unwrap();
        assert!(cmp.passed());
        assert!(compare_files(&dir.join("missing.json"), &dir.join("base.json"), 1.5).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
