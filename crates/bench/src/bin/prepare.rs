//! Trains (or loads) every artifact of the paper at full scale and exits.
//! Subsequent figure binaries then run instantly from the cache.

fn main() {
    let config = repro_bench::cli::pipeline_config();
    let artifacts = attack_core::pipeline::prepare(&config);
    eprintln!(
        "prepared: victim({} params), camera / imu attackers, 2 finetuned, pnn",
        artifacts.victim.trunk().param_count()
    );
}
