//! Shaped nominal driving reward for the end-to-end agent.
//!
//! Section III-C: the reward "computes rewards using the dot product of the
//! vehicle's speed and the waypoints vector", uses the privileged planner's
//! reference path, and aggregates trajectory following, a speed requirement,
//! and safety. The same quantity doubles as the paper's *nominal driving
//! reward* metric (Fig. 4a, Fig. 6) for every agent, attacked or not.

use crate::behavior::{BehaviorConfig, BehaviorPlanner};
use drive_sim::world::{StepOutcome, Termination, World};
use serde::{Deserialize, Serialize};

/// Weights of the shaped reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight of the progress term `v . w_hat / v_ref`.
    pub w_progress: f64,
    /// Weight of the quadratic cross-track penalty.
    pub w_track: f64,
    /// Weight of the speed-tracking term.
    pub w_speed: f64,
    /// One-time penalty for any collision (NPC or barrier).
    pub collision_penalty: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            w_progress: 1.0,
            w_track: 0.5,
            w_speed: 0.2,
            collision_penalty: 30.0,
        }
    }
}

/// Stateful reward computer: owns a privileged behaviour planner that
/// provides the safe reference path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewardShaper {
    config: RewardConfig,
    planner: BehaviorPlanner,
    /// Normalized cross-track deviation of the last step (for records).
    last_deviation: f64,
    /// Reused plan buffer; not part of the logical shaper state.
    #[serde(skip, default)]
    plan_scratch: drive_sim::waypoints::Path,
}

// The scratch buffer is excluded from equality: a deserialized shaper
// (empty scratch) must compare equal to the live shaper it was saved from.
impl PartialEq for RewardShaper {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.planner == other.planner
            && self.last_deviation == other.last_deviation
    }
}

impl RewardShaper {
    /// Creates a shaper whose privileged planner starts in `initial_lane`.
    pub fn new(config: RewardConfig, behavior: BehaviorConfig, initial_lane: usize) -> Self {
        RewardShaper {
            config,
            planner: BehaviorPlanner::new(behavior, initial_lane),
            last_deviation: 0.0,
            plan_scratch: drive_sim::waypoints::Path::default(),
        }
    }

    /// Resets the privileged planner for a new episode.
    pub fn reset(&mut self, world: &World) {
        let lane = world.scenario().road.lane_of(world.ego().pose.position.y);
        self.planner = BehaviorPlanner::new(*self.planner.config(), lane);
        self.last_deviation = 0.0;
    }

    /// Normalized cross-track deviation observed at the last
    /// [`RewardShaper::step`].
    pub fn last_deviation(&self) -> f64 {
        self.last_deviation
    }

    /// Computes the reward for the world state *after* a step with the
    /// given outcome.
    pub fn step(&mut self, world: &World, outcome: &StepOutcome) -> f64 {
        let c = self.config;
        let ego = world.ego();
        self.planner.plan_into(world, &mut self.plan_scratch);
        let path = &self.plan_scratch;
        let proj = path.project(ego.pose.position, ego.pose.heading);
        let wp = path.waypoints()[proj.index];
        let half_lane = world.scenario().road.lane_width / 2.0;
        let deviation = proj.cross_track / half_lane;
        self.last_deviation = deviation;

        let ref_speed = world.scenario().ego_ref_speed;
        let wp_dir = drive_sim::geometry::Vec2::from_angle(wp.heading);
        let progress = ego.velocity().dot(wp_dir) / ref_speed;
        let speed_term = 1.0 - ((ego.speed - wp.target_speed).abs() / ref_speed).min(1.0);

        let mut r =
            c.w_progress * progress + c.w_speed * speed_term - c.w_track * deviation * deviation;
        if outcome.collision.is_some() {
            r -= c.collision_penalty;
        }
        // Running off the road end early is fine (it means fast progress);
        // time limits carry no extra term.
        if matches!(outcome.termination, Some(Termination::RoadEnd)) {
            r += 1.0;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::Scenario;
    use drive_sim::vehicle::Actuation;
    use drive_sim::world::World;

    fn shaper() -> RewardShaper {
        RewardShaper::new(RewardConfig::default(), BehaviorConfig::default(), 1)
    }

    #[test]
    fn on_path_at_speed_earns_high_reward() {
        let mut s = Scenario::default();
        s.npcs.clear();
        let mut world = World::new(s);
        let mut rs = shaper();
        rs.reset(&world);
        let out = world.step(Actuation::new(0.0, 0.0));
        let r = rs.step(&world, &out);
        // Progress ~ 1, speed ~ 1, deviation ~ 0.
        assert!(r > 1.0, "reward {r}");
        assert!(rs.last_deviation().abs() < 0.01);
    }

    #[test]
    fn off_path_is_penalized() {
        let mut s = Scenario::default();
        s.npcs.clear();
        let mut world = World::new(s);
        let mut rs = shaper();
        rs.reset(&world);
        // Steer hard left for a while to drift off the lane center.
        let mut drifted = 0.0;
        for _ in 0..8 {
            let out = world.step(Actuation::new(1.0, 0.0));
            drifted = rs.step(&world, &out);
        }
        let mut straight_world = World::new({
            let mut s = Scenario::default();
            s.npcs.clear();
            s
        });
        let mut rs2 = shaper();
        rs2.reset(&straight_world);
        let mut straight = 0.0;
        for _ in 0..8 {
            let out = straight_world.step(Actuation::new(0.0, 0.0));
            straight = rs2.step(&straight_world, &out);
        }
        assert!(
            drifted < straight,
            "drifted {drifted} vs straight {straight}"
        );
        assert!(rs.last_deviation().abs() > 0.05);
    }

    #[test]
    fn collision_applies_penalty() {
        let mut s = Scenario::default();
        s.npcs.truncate(1);
        s.npcs[0].speed = 0.0;
        s.npcs[0].x = 22.0;
        let mut world = World::new(s);
        let mut rs = shaper();
        rs.reset(&world);
        let mut last = 0.0;
        for _ in 0..60 {
            // The privileged planner would dodge; force straight driving.
            let out = world.step(Actuation::new(0.0, 0.5));
            last = rs.step(&world, &out);
            if world.is_done() {
                break;
            }
        }
        assert!(world.is_done(), "must hit the stopped NPC");
        assert!(last < -10.0, "collision reward {last}");
    }

    #[test]
    fn slow_driving_earns_less_than_reference_speed() {
        let mk = |thrust: f64| {
            let mut s = Scenario::default();
            s.npcs.clear();
            s.ego_speed = 8.0;
            let mut world = World::new(s);
            let mut rs = shaper();
            rs.reset(&world);
            let mut total = 0.0;
            for _ in 0..50 {
                let out = world.step(Actuation::new(0.0, thrust));
                total += rs.step(&world, &out);
            }
            total
        };
        // Accelerating towards 16 beats coasting at ~8.
        assert!(mk(0.8) > mk(0.0));
    }
}
