//! Criterion micro-benchmarks of the substrate hot paths: simulator
//! stepping, collision detection, sensor rendering, policy inference,
//! dense NN kernels, SAC updates, and the serving layer (micro-batched
//! inference, the full serving pipeline, and the virtual-time simulator).
//!
//! Runs under `cargo bench --bench perf`. Set `CRITERION_QUICK=1` to use
//! the shortened measurement budgets (CI smoke), and `PERF_JSON=<path>` to
//! export the timings as JSON (the checked-in `BENCH_perf.json` baseline
//! is produced this way). Alongside the wall-clock benches, the export
//! carries deterministic serving pseudo-rows (`serve_sim_*`): latency
//! quantiles and the sustainable-rate search from a fixed-seed simulator
//! run, byte-stable and therefore gateable at a tight tolerance.

use attack_core::adv_reward::AdvReward;
use attack_core::budget::AttackBudget;
use attack_core::fleet::{FleetEval, FleetPlan};
use criterion::{black_box, BenchResult, Criterion};
use drive_agents::behavior::{BehaviorConfig, BehaviorPlanner};
use drive_agents::modular::{ModularAgent, ModularConfig};
use drive_agents::Agent;
use drive_nn::batch::BatchPolicy;
use drive_nn::prelude::{randn_mat, ActScratch, Activation, GaussianPolicy, Mat, Mlp, Scratch};
use drive_nn::scratch::BatchActScratch;
use drive_rl::replay::{Batch, ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_serve::config::ServeConfig;
use drive_serve::faults::FaultPlanConfig;
use drive_serve::ladder::Rung;
use drive_serve::pipeline::{DetectorStream, Pipeline};
use drive_serve::sim::{self, SimConfig};
use drive_sim::batch::{Precision, WorldBatch};
use drive_sim::geometry::{Obb, Vec2};
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor, Imu, ImuConfig, SemanticCamera};
use drive_sim::vehicle::Actuation;
use drive_sim::waypoints::Path;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use repro_bench::journal::RunHeader;
use repro_bench::{merge, ShardConfig, ShardState};
use std::sync::Arc;

fn bench_world_step(c: &mut Criterion) {
    c.bench_function("world_step", |b| {
        let mut world = World::new(Scenario::default());
        b.iter(|| {
            if world.is_done() {
                world = World::new(Scenario::default());
            }
            black_box(world.step(Actuation::new(0.0, 0.1)));
        });
    });
}

fn bench_full_episode_modular(c: &mut Criterion) {
    c.bench_function("full_episode_modular_180_steps", |b| {
        b.iter(|| {
            let mut world = World::new(Scenario::default());
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            agent.reset(&world);
            while !world.is_done() {
                let a = agent.act(&world);
                world.step(a);
            }
            black_box(world.passed_count())
        });
    });
}

fn bench_obb_intersection(c: &mut Criterion) {
    c.bench_function("obb_sat_intersection", |b| {
        let x = Obb::new(Vec2::new(0.0, 0.0), 4.5, 1.9, 0.2);
        let y = Obb::new(Vec2::new(3.0, 1.0), 4.5, 1.9, -0.3);
        b.iter(|| black_box(x.intersects(black_box(&y))));
    });
}

fn bench_semantic_camera(c: &mut Criterion) {
    c.bench_function("semantic_camera_render", |b| {
        let world = World::new(Scenario::default());
        let cam = SemanticCamera::default();
        b.iter(|| black_box(cam.render(&world)));
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    c.bench_function("feature_extraction", |b| {
        let world = World::new(Scenario::default());
        let mut fx = FeatureExtractor::new(FeatureConfig::default());
        b.iter(|| black_box(fx.observe(&world)));
    });
}

fn bench_imu_window(c: &mut Criterion) {
    c.bench_function("imu_record_and_window", |b| {
        let mut world = World::new(Scenario::default());
        world.step(Actuation::new(0.1, 0.5));
        let mut imu = Imu::new(ImuConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            imu.record(&world, &mut rng);
            black_box(imu.window())
        });
    });
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = randn_mat(64, 64, &mut rng);
    let bm = randn_mat(64, 64, &mut rng);
    c.bench_function("matmul_64x64_into_reused", |b| {
        let mut out = Mat::zeros(64, 64);
        b.iter(|| {
            a.matmul_into(&bm, &mut out);
            black_box(out.get(0, 0))
        });
    });
    c.bench_function("matmul_nt_64x64_into_reused", |b| {
        let mut out = Mat::zeros(64, 64);
        b.iter(|| {
            a.matmul_nt_into(&bm, &mut out);
            black_box(out.get(0, 0))
        });
    });
    c.bench_function("matmul_tn_acc_64x64", |b| {
        let mut acc = Mat::zeros(64, 64);
        b.iter(|| {
            acc.fill(0.0);
            a.matmul_tn_acc(&bm, &mut acc);
            black_box(acc.get(0, 0))
        });
    });
}

fn bench_mlp_forward_scratch(c: &mut Criterion) {
    c.bench_function("mlp_forward_scratch_60_128_128_2", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let dim = FeatureConfig::default().observation_dim();
        let mlp = Mlp::new(
            &[dim, 128, 128, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let x = randn_mat(1, dim, &mut rng);
        let mut scratch = Scratch::default();
        b.iter(|| black_box(mlp.forward_with(&x, &mut scratch).get(0, 0)));
    });
}

fn bench_policy_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let dim = FeatureConfig::default().observation_dim();
    let policy = GaussianPolicy::new(dim, &[128, 128], 2, &mut rng);
    let obs = vec![0.1f32; dim];
    c.bench_function("policy_inference_60d", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(policy.act(&obs, &mut rng, true)));
    });
    c.bench_function("policy_inference_60d_scratch", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = ActScratch::default();
        b.iter(|| black_box(policy.act_with(&obs, &mut rng, true, &mut scratch)[0]));
    });
}

fn filled_buffer(dim: usize) -> ReplayBuffer {
    let mut buffer = ReplayBuffer::new(10_000, dim, 2);
    for i in 0..2000 {
        buffer.push(Transition {
            obs: vec![(i % 17) as f32 * 0.05; dim],
            action: vec![0.1, -0.2],
            reward: (i % 5) as f32,
            next_obs: vec![(i % 13) as f32 * 0.05; dim],
            terminal: i % 50 == 0,
        });
    }
    buffer
}

fn bench_replay_sample(c: &mut Criterion) {
    c.bench_function("replay_sample_into_batch128", |b| {
        let dim = FeatureConfig::default().observation_dim();
        let buffer = filled_buffer(dim);
        let mut rng = StdRng::seed_from_u64(0);
        let mut batch = Batch::default();
        b.iter(|| {
            buffer.sample_into(128, &mut rng, &mut batch);
            black_box(batch.len())
        });
    });
}

fn bench_sac_update(c: &mut Criterion) {
    c.bench_function("sac_update_batch128", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let mut sac = Sac::new(dim, 2, &[128, 128], SacConfig::default(), &mut rng);
        let buffer = filled_buffer(dim);
        b.iter(|| black_box(sac.update(&buffer, &mut rng)));
    });
}

/// Micro-batched inference: the serving layer's hot path, batch-8 against
/// the same 60-d policy the single-row benches use, plus the full serving
/// pipeline (detector + inference) over the same batch.
fn bench_serve_micro_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let dim = FeatureConfig::default().observation_dim();
    let policy = Arc::new(GaussianPolicy::new(dim, &[128, 128], 2, &mut rng));
    let frames: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * dim + j) % 23) as f32 * 0.01)
                .collect()
        })
        .collect();
    c.bench_function("policy_inference_batch8_60d", |b| {
        let refs: Vec<&[f32]> = frames.iter().map(Vec::as_slice).collect();
        let mut scratch = BatchActScratch::default();
        b.iter(|| black_box(policy.act_batch_with(&refs, &mut scratch).get(0, 0)));
    });
    c.bench_function("serve_pipeline_full_batch8_60d", |b| {
        let config = ServeConfig::default();
        let mut pipeline = Pipeline::new(policy.clone(), &config, None);
        let mut stream = DetectorStream::new(&config);
        b.iter(|| {
            let mut obs = frames.clone();
            black_box(
                pipeline
                    .process(Rung::Full, &mut obs, Some(&mut stream))
                    .alarm,
            )
        });
    });
}

/// The allocation-free planner hot path: `BehaviorPlanner::plan_into`
/// writing into a reused `Path`, as the fleet control loop runs it
/// every slot-step. Measured against a live (non-trivial) traffic world
/// so the lead scan and lane-clear checks are exercised.
fn bench_planner_plan(c: &mut Criterion) {
    c.bench_function("planner_plan_ns", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let world = World::new(Scenario::default().jittered(&mut rng));
        let mut planner = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let mut out = Path::default();
        // Warm the reused buffer so the measurement is the steady state.
        planner.plan_into(&world, &mut out);
        b.iter(|| {
            planner.plan_into(&world, &mut out);
            black_box(out.len())
        });
    });
}

/// The batched evaluation engine's two hot paths at batch 128: one
/// lockstep `WorldBatch` step across 128 live episodes (with compaction
/// and refill, as the fleet driver runs it) and one wide inference pass
/// through the shared `BatchPolicy` head.
fn bench_fleet(c: &mut Criterion) {
    c.bench_function("fleet_step_batch128", |b| {
        let scenarios = (0..128u64).map(|i| {
            let mut rng = StdRng::seed_from_u64(1000 + i);
            Scenario::default().jittered(&mut rng)
        });
        let mut batch = WorldBatch::from_scenarios(scenarios, Precision::Golden);
        let actions = vec![Actuation::new(0.0, 0.1); 128];
        let mut outcomes = Vec::new();
        let mut refill_seed = 0u64;
        b.iter(|| {
            batch.step(&actions, &mut outcomes);
            let before = batch.len();
            batch.compact(|_, _| {});
            for _ in batch.len()..before {
                refill_seed += 1;
                let mut rng = StdRng::seed_from_u64(refill_seed);
                batch.push(World::new(Scenario::default().jittered(&mut rng)));
            }
            black_box(outcomes.len())
        });
    });
    c.bench_function("policy_inference_batch128_60d", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let policy = Arc::new(GaussianPolicy::new(dim, &[128, 128], 2, &mut rng));
        let head = BatchPolicy::new(policy);
        let frames: Vec<Vec<f32>> = (0..128)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) % 23) as f32 * 0.01)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = frames.iter().map(Vec::as_slice).collect();
        let mut scratch = BatchActScratch::default();
        b.iter(|| black_box(head.act_batch(&refs, &mut scratch).get(0, 0)));
    });
}

/// Fleet throughput pseudo-rows: the same fig4-style nominal-driving
/// evaluation run twice through `FleetEval` — once at batch 128, once at
/// batch 1 (the serial comparator: identical episode loop, no inference
/// amortization) — reported as amortized wall nanoseconds per finished
/// episode. Inverse of episodes/sec so the regression gate's "bigger
/// means worse" direction holds; the episodes/sec figures and the
/// batched-vs-serial speedup are printed for humans.
fn fleet_rows() -> Vec<BenchResult> {
    let mut rng = StdRng::seed_from_u64(9);
    let dim = FeatureConfig::default().observation_dim();
    let victim = GaussianPolicy::new(dim, &[128, 128], 2, &mut rng);
    let eval = FleetEval {
        victim: &victim,
        features: FeatureConfig::default(),
        attack: None,
        imu: ImuConfig::default(),
        budget: AttackBudget::ZERO,
        adv: AdvReward::default(),
        scenario: Scenario::default(),
    };
    let episodes = 192;
    let timed = |plan: FleetPlan| {
        let t0 = std::time::Instant::now();
        let records = eval.run(episodes, 0, plan);
        (
            t0.elapsed().as_nanos() as f64 / records.len() as f64,
            records.len() as u64,
        )
    };
    let fast = |batch| FleetPlan {
        batch,
        precision: Precision::Fast,
    };
    // Warm-up pass so neither comparator pays first-touch costs.
    let _ = timed(FleetPlan::golden(128));
    let (serial_ns, _) = timed(FleetPlan::golden(1));
    let (golden_ns, n) = timed(FleetPlan::golden(128));
    let (fast_ns, _) = timed(fast(128));
    for (name, ns) in [
        ("fleet_episodes_per_sec", 1e9 / fast_ns),
        ("fleet_golden_episodes_per_sec", 1e9 / golden_ns),
        ("fleet_serial_episodes_per_sec", 1e9 / serial_ns),
        ("fleet_speedup_vs_batch1", serial_ns / fast_ns),
        ("fleet_golden_speedup_vs_batch1", serial_ns / golden_ns),
    ] {
        println!("{name:<40} value {ns:>14.1}  ({n} n)");
    }
    vec![
        BenchResult {
            name: "fleet_ns_per_episode".to_string(),
            median_ns: fast_ns,
            mean_ns: fast_ns,
            iters: n,
        },
        BenchResult {
            name: "fleet_golden_ns_per_episode".to_string(),
            median_ns: golden_ns,
            mean_ns: golden_ns,
            iters: n,
        },
        BenchResult {
            name: "fleet_serial_ns_per_episode".to_string(),
            median_ns: serial_ns,
            mean_ns: serial_ns,
            iters: n,
        },
    ]
}

/// Control-phase pseudo-row: nanoseconds of NPC control work per
/// slot-step in a Golden batch-128 lockstep loop, read straight from the
/// per-phase fleet counters (`record_fleet_phases`) rather than a wall
/// clock around the whole step. This isolates the SoA lead-table +
/// `control_batched` cost from integration, outcome checks, and
/// inference, so a regression in the batched control kernels cannot hide
/// behind improvements elsewhere in the step.
fn control_phase_rows() -> Vec<BenchResult> {
    let scenarios = (0..128u64).map(|i| {
        let mut rng = StdRng::seed_from_u64(5000 + i);
        let mut s = Scenario::default().jittered(&mut rng);
        s.max_steps = 400;
        s
    });
    let mut batch = WorldBatch::from_scenarios(scenarios, Precision::Golden);
    let actions = vec![Actuation::new(0.0, 0.1); 128];
    let mut outcomes = Vec::new();
    let mut refill_seed = 50_000u64;
    // Compaction + refill keeps all 128 slots live so the counters sample
    // full-width batches; it runs between steps, outside the timed phases.
    let mut step_and_refill = |batch: &mut WorldBatch| {
        batch.step(&actions, &mut outcomes);
        let before = batch.len();
        batch.compact(|_, _| {});
        for _ in batch.len()..before {
            refill_seed += 1;
            let mut rng = StdRng::seed_from_u64(refill_seed);
            let mut s = Scenario::default().jittered(&mut rng);
            s.max_steps = 400;
            batch.push(World::new(s));
        }
    };
    for _ in 0..20 {
        step_and_refill(&mut batch);
    }
    let t0 = drive_sim::perf::fleet();
    const STEPS: usize = 100;
    for _ in 0..STEPS {
        step_and_refill(&mut batch);
    }
    let d = drive_sim::perf::fleet().since(&t0);
    let ns = d.control_ns_per_slot_step();
    vec![BenchResult {
        name: "npc_control_phase_batch128".to_string(),
        median_ns: ns,
        mean_ns: ns,
        iters: d.slot_steps,
    }]
}

/// The shard coordinator's per-cell overhead: one `O_EXCL` lease claim
/// (create + checksummed body + fsync + progress row) followed by the
/// owner-checked release (read-back + unlink). This is pure coordination
/// cost a sharded worker pays on top of each cell's compute, so it must
/// stay orders of magnitude below the cheapest cell.
fn bench_lease_claim(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("repro-bench-perf-lease");
    let _ = std::fs::remove_dir_all(&dir);
    let header = RunHeader {
        seed: 7,
        config_hash: 7,
        box_episodes: 4,
        scatter_rounds: 1,
    };
    let state =
        ShardState::open(ShardConfig::new(&dir, "perf"), &header).expect("open shard state");
    c.bench_function("lease_claim_ns", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            let claimed = state.try_acquire(key, "perf");
            state.release(key);
            black_box(claimed)
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Merge-scale pseudo-row: wall time of `merge::verify_shard` over a
/// 432-cell shard (the scenario-matrix grid size) — every sidecar's
/// checkpoint checksum re-verified, records decoded, canonical digests
/// compared for conflicts. This is the fixed verification cost a
/// `repro_bench merge` pays before assembling outputs; the shard is
/// built once through the real lease/publish path and the row reports
/// the median of several verification sweeps.
fn shard_merge_rows() -> Vec<BenchResult> {
    let dir = std::env::temp_dir().join("repro-bench-perf-shard-merge");
    let _ = std::fs::remove_dir_all(&dir);
    let header = RunHeader {
        seed: 77,
        config_hash: 0x5eed,
        box_episodes: 4,
        scatter_rounds: 1,
    };
    let state =
        ShardState::open(ShardConfig::new(&dir, "perf"), &header).expect("open shard state");
    const CELLS: u64 = 432;
    const EPISODES: usize = 4;
    for key in 1..=CELLS {
        let records: Vec<EpisodeRecord> = (0..EPISODES)
            .map(|i| EpisodeRecord {
                steps: 10 + (key as usize + i) % 50,
                ..EpisodeRecord::default()
            })
            .collect();
        let label = format!("perf/cell{key}");
        let out = state.run_cell(key, &label, EPISODES, || (records, true));
        assert_eq!(out.len(), EPISODES);
    }
    state.release_all();
    let reps = if std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0") {
        3
    } else {
        9
    };
    let mut samples: Vec<f64> = Vec::new();
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let cells = merge::verify_shard(&dir).expect("verify shard");
        assert_eq!(cells as u64, CELLS);
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    let _ = std::fs::remove_dir_all(&dir);
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    vec![BenchResult {
        name: "shard_merge_432cells".to_string(),
        median_ns: median,
        mean_ns: mean,
        iters: reps as u64,
    }]
}

/// Seeded procedural scenario generation: 1000 scenarios per iteration,
/// cycling the full axes grid (topology × density × speed mix × faults),
/// each drawn from its own seed-tree node and validated on construction.
fn bench_scenario_gen(c: &mut Criterion) {
    use drive_sim::generate::{generate, ScenarioAxes, SpeedMix, TopologyKind, TrafficDensity};
    let mut axes = Vec::new();
    for topology in TopologyKind::ALL {
        for density in TrafficDensity::ALL {
            for speed_mix in SpeedMix::ALL {
                for fault_intensity in [0.0, 0.5] {
                    axes.push(ScenarioAxes {
                        topology,
                        density,
                        speed_mix,
                        fault_intensity,
                    });
                }
            }
        }
    }
    c.bench_function("scenario_gen_1k", |b| {
        let root = drive_seed::SeedTree::root(10_000).child("bench");
        b.iter(|| {
            let mut npcs = 0usize;
            for i in 0..1000u64 {
                let g = generate(axes[i as usize % axes.len()], &root.child(i));
                npcs += g.spec.scenario().npcs.len();
            }
            black_box(npcs)
        });
    });
}

/// End-to-end virtual-time serving: one fixed-seed simulator run per
/// iteration (arrival synthesis, batching, fault schedule, ladder).
fn bench_serve_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let policy = Arc::new(GaussianPolicy::new(6, &[32, 32], 2, &mut rng));
    let config = SimConfig {
        requests: 200,
        faults: FaultPlanConfig {
            kills: 1,
            stalls: 1,
            stall_us: 10_000,
            corrupt_rate: 0.1,
        },
        ..SimConfig::default()
    };
    c.bench_function("serve_sim_200req_faulted", |b| {
        b.iter(|| black_box(sim::run_sim(&policy, &config).counters.served));
    });
}

/// Deterministic serving pseudo-rows for the gating baseline: p50/p99/p999
/// latency of a fixed-seed simulator run and the inverse of its maximum
/// sustainable rate at a 30 ms p99 SLO (inverse, so that "bigger means
/// worse" matches the regression gate's direction). All virtual-time
/// integers — identical on every machine — so any drift is a real serving
/// behavior change, not noise.
fn serve_slo_rows() -> Vec<BenchResult> {
    let mut rng = StdRng::seed_from_u64(42);
    let policy = Arc::new(GaussianPolicy::new(6, &[32, 32], 2, &mut rng));
    let config = SimConfig::default();
    let report = sim::run_sim(&policy, &config);
    let row = |name: &str, value: f64, iters: u64| BenchResult {
        name: name.to_string(),
        median_ns: value,
        mean_ns: value,
        iters,
    };
    let answered = report.counters.served + report.counters.degraded;
    let mut rows = vec![
        row(
            "serve_sim_p50_latency_us",
            report.latency.p50() as f64,
            answered,
        ),
        row(
            "serve_sim_p99_latency_us",
            report.latency.p99() as f64,
            answered,
        ),
        row(
            "serve_sim_p999_latency_us",
            report.latency.p999() as f64,
            answered,
        ),
    ];
    let grid = [250, 500, 1_000, 2_000, 4_000];
    if let Some(qps) = sim::max_qps_at_slo(&policy, &config, 30_000, &grid) {
        rows.push(row(
            "serve_sim_slo_inverse_ns_per_req",
            1_000_000_000.0 / qps as f64,
            qps,
        ));
    }
    rows
}

/// Serializes the collected results as the `repro-bench/bench-v1` JSON
/// schema (flat bench names, so no string escaping is needed beyond
/// quotes — names are plain identifiers).
fn results_json(c: &Criterion, extra: &[BenchResult]) -> String {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"repro-bench/bench-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"benches\": [\n");
    let results: Vec<&BenchResult> = c.results().iter().chain(extra).collect();
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
            r.name,
            r.median_ns,
            r.mean_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut c = Criterion::default();
    bench_world_step(&mut c);
    bench_full_episode_modular(&mut c);
    bench_obb_intersection(&mut c);
    bench_semantic_camera(&mut c);
    bench_feature_extraction(&mut c);
    bench_imu_window(&mut c);
    bench_matmul_kernels(&mut c);
    bench_mlp_forward_scratch(&mut c);
    bench_policy_inference(&mut c);
    bench_replay_sample(&mut c);
    bench_sac_update(&mut c);
    bench_serve_micro_batch(&mut c);
    bench_planner_plan(&mut c);
    bench_fleet(&mut c);
    bench_lease_claim(&mut c);
    bench_scenario_gen(&mut c);
    bench_serve_sim(&mut c);
    let mut serve_rows = serve_slo_rows();
    serve_rows.extend(control_phase_rows());
    serve_rows.extend(fleet_rows());
    serve_rows.extend(shard_merge_rows());
    for r in &serve_rows {
        println!(
            "{:<40} value {:>14.1}  ({} n)",
            r.name, r.median_ns, r.iters
        );
    }
    if let Ok(path) = std::env::var("PERF_JSON") {
        if !path.is_empty() {
            match std::fs::write(&path, results_json(&c, &serve_rows)) {
                Ok(()) => eprintln!("[perf] wrote {path}"),
                Err(e) => eprintln!("[perf] failed {path}: {e}"),
            }
        }
    }
}
