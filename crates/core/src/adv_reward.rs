//! Adversarial reward shaping (Section IV-D).
//!
//! The attacker maximizes
//! `R_adv = C(lambda) + I(omega) * r_e2n + (1 - I(omega)) * p_m`, where
//!
//! * `C(lambda)` — `+a` for the desired side collision, `-a` for any other
//!   collision (rear-end, barrier, odd postures), `0` otherwise;
//! * `r_e2n = v̂_e2n · v̂_ego` — collision potential towards the nearest
//!   NPC, active only during safety-critical moments;
//! * `I(omega)` — `1` iff `|omega| <= beta` with
//!   `omega = v̂_e2n · v̂_npc` and `beta = cos(pi/6)`: the ego is spatially
//!   alongside-ish the target, the right moment to strike;
//! * `p_m` — the maneuver penalty `-w * |delta|`, teaching the attacker to
//!   stay quiet outside critical windows.
//!
//! The IMU attacker's variant appends the learning-from-teacher term
//! `p_se = -(delta - delta_teacher)^2` (Section IV-E).

use drive_sim::world::{CollisionKind, RelativeGeometry, StepOutcome, World};
use serde::{Deserialize, Serialize};

/// Weights of the adversarial reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvRewardConfig {
    /// Magnitude `a` of the terminal collision reward/penalty.
    pub collision_reward: f64,
    /// Critical-moment threshold `beta` (the paper uses `cos(pi/6)`).
    pub beta: f64,
    /// Weight on the maneuver penalty `p_m`.
    pub maneuver_weight: f64,
    /// Weight on the teacher square-error term `p_se` (IMU training only).
    pub teacher_weight: f64,
    /// Range (meters) beyond which no NPC is considered a target.
    pub target_range: f64,
}

impl Default for AdvRewardConfig {
    fn default() -> Self {
        AdvRewardConfig {
            collision_reward: 20.0,
            beta: (std::f64::consts::PI / 6.0).cos(),
            maneuver_weight: 0.05,
            teacher_weight: 0.5,
            target_range: 60.0,
        }
    }
}

/// Stateless adversarial reward computer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AdvReward {
    /// Configuration in use.
    pub config: AdvRewardConfig,
}

impl AdvReward {
    /// Creates a reward computer.
    pub fn new(config: AdvRewardConfig) -> Self {
        AdvReward { config }
    }

    /// The critical-moment indicator `I(omega)` for the current state.
    ///
    /// Returns `false` when no NPC is within range.
    pub fn critical_moment(&self, world: &World) -> bool {
        match world.nearest_npc() {
            Some((_, npc)) => {
                let rel = RelativeGeometry::between(world.ego(), npc);
                rel.distance <= self.config.target_range && rel.omega().abs() <= self.config.beta
            }
            None => false,
        }
    }

    /// Computes `R_adv` for the post-step world.
    ///
    /// `delta` is the perturbation injected this step.
    pub fn step(&self, world: &World, outcome: &StepOutcome, delta: f64) -> f64 {
        let c = self.config;
        let mut r = 0.0;

        // C(lambda)
        if let Some(collision) = outcome.collision {
            r += match collision.kind {
                CollisionKind::Side => c.collision_reward,
                _ => -c.collision_reward,
            };
        }

        // I(omega) r_e2n + (1 - I(omega)) p_m
        if let Some((_, npc)) = world.nearest_npc() {
            let rel = RelativeGeometry::between(world.ego(), npc);
            let critical = rel.distance <= c.target_range && rel.omega().abs() <= c.beta;
            if critical {
                r += rel.collision_potential();
            } else {
                r += -c.maneuver_weight * delta.abs();
            }
        } else {
            r += -c.maneuver_weight * delta.abs();
        }
        r
    }

    /// The IMU variant `R_adv + p_se` (Section IV-E).
    pub fn step_with_teacher(
        &self,
        world: &World,
        outcome: &StepOutcome,
        delta: f64,
        teacher_delta: f64,
    ) -> f64 {
        let se = (delta - teacher_delta) * (delta - teacher_delta);
        self.step(world, outcome, delta) - self.config.teacher_weight * se
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::{NpcSpawn, Scenario};
    use drive_sim::vehicle::Actuation;
    use drive_sim::world::{CollisionEvent, Termination};

    fn outcome_with(collision: Option<CollisionEvent>) -> StepOutcome {
        StepOutcome {
            step: 0,
            collision,
            termination: collision.map(Termination::Collision),
            passed: 0,
        }
    }

    fn world_with_npc(lane: usize, x: f64) -> World {
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane,
                x,
                speed: 6.0,
            }],
            ..Default::default()
        };
        World::new(s)
    }

    #[test]
    fn side_collision_rewarded_others_penalized() {
        let world = world_with_npc(1, 30.0);
        let adv = AdvReward::default();
        let side = outcome_with(Some(CollisionEvent {
            kind: CollisionKind::Side,
            npc_index: Some(0),
            step: 0,
        }));
        let rear = outcome_with(Some(CollisionEvent {
            kind: CollisionKind::RearEnd,
            npc_index: Some(0),
            step: 0,
        }));
        let barrier = outcome_with(Some(CollisionEvent {
            kind: CollisionKind::Barrier,
            npc_index: None,
            step: 0,
        }));
        let r_side = adv.step(&world, &side, 0.0);
        let r_rear = adv.step(&world, &rear, 0.0);
        let r_barrier = adv.step(&world, &barrier, 0.0);
        assert!(r_side > 10.0);
        assert!(r_rear < -10.0);
        assert!(r_barrier < -10.0);
    }

    #[test]
    fn far_behind_is_not_critical() {
        // Ego 30 m behind the NPC in the same lane: omega ~ 1 > beta.
        let world = world_with_npc(1, 30.0);
        let adv = AdvReward::default();
        assert!(!adv.critical_moment(&world));
        // Outside the critical window, perturbations are penalized.
        let quiet = adv.step(&world, &outcome_with(None), 0.0);
        let loud = adv.step(&world, &outcome_with(None), 1.0);
        assert!(loud < quiet);
        assert!((quiet - 0.0).abs() < 1e-9);
    }

    #[test]
    fn alongside_is_critical_and_rewards_aiming() {
        // NPC in the adjacent lane nearly level with the ego: omega ~ 0.
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 2,
                x: 1.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let mut world = World::new(s);
        // One step so vehicles have velocities.
        world.step(Actuation::new(0.0, 0.0));
        let adv = AdvReward::default();
        assert!(adv.critical_moment(&world));
        // During critical moments the maneuver penalty is off: reward is
        // r_e2n regardless of delta.
        let r0 = adv.step(&world, &outcome_with(None), 0.0);
        let r1 = adv.step(&world, &outcome_with(None), 1.0);
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_npc_is_not_a_target() {
        let world = world_with_npc(2, 500.0);
        let adv = AdvReward::default();
        assert!(!adv.critical_moment(&world));
    }

    #[test]
    fn teacher_term_penalizes_disagreement() {
        let world = world_with_npc(1, 30.0);
        let adv = AdvReward::default();
        let out = outcome_with(None);
        let agree = adv.step_with_teacher(&world, &out, 0.3, 0.3);
        let disagree = adv.step_with_teacher(&world, &out, 0.3, -0.7);
        assert!(agree > disagree);
        let base = adv.step(&world, &out, 0.3);
        assert!((agree - base).abs() < 1e-12);
    }

    #[test]
    fn empty_road_never_critical() {
        let mut s = Scenario::default();
        s.npcs.clear();
        let world = World::new(s);
        let adv = AdvReward::default();
        assert!(!adv.critical_moment(&world));
        let r = adv.step(&world, &outcome_with(None), 0.5);
        assert!(r < 0.0, "only the maneuver penalty applies: {r}");
    }
}
