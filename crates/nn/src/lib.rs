#![warn(missing_docs)]

//! # drive-nn — dense neural networks with manual backprop
//!
//! The learning substrate of this reproduction: a small, dependency-free
//! (beyond `rand`/`serde`) neural-network library sized for the MLP policies
//! and critics of soft actor-critic training on CPU. It provides
//!
//! * [`mat::Mat`] — batched `f32` matrices,
//! * [`linear::Linear`] / [`activation::Activation`] / [`mlp::Mlp`] —
//!   layers with explicit forward caches and gradient accumulation,
//! * [`adam::Adam`] — the optimizer,
//! * [`gaussian::GaussianPolicy`] — the tanh-squashed Gaussian actor head
//!   with full reparameterized backprop (verified against finite
//!   differences),
//! * [`pnn::PnnPolicy`] — the two-column progressive network used by the
//!   paper's PNN defense (Section VI-B),
//! * [`checkpoint`] — plain-text model persistence.
//!
//! ```
//! use drive_nn::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let policy = GaussianPolicy::new(8, &[32, 32], 2, &mut rng);
//! let action = policy.act(&[0.0; 8], &mut rng, true);
//! assert_eq!(action.len(), 2);
//! ```

pub mod activation;
pub mod adam;
pub mod batch;
pub mod checkpoint;
pub mod gaussian;
pub mod linear;
pub mod mat;
pub mod mlp;
pub mod pnn;
pub mod scratch;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::adam::{Adam, AdamConfig};
    pub use crate::batch::BatchPolicy;
    pub use crate::gaussian::{fill_randn, randn_f32, randn_mat, GaussianPolicy, SampleCache};
    pub use crate::linear::Linear;
    pub use crate::mat::Mat;
    pub use crate::mlp::{Mlp, MlpCache};
    pub use crate::pnn::{PnnInit, PnnPolicy, PnnSampleCache};
    pub use crate::scratch::{ActScratch, BatchActScratch, SampleBackScratch, Scratch};
}
