//! Behaviour cloning: supervised warm-starting of a Gaussian policy from
//! demonstration `(obs, action)` pairs.
//!
//! The paper trains its end-to-end agent "with the knowledge of a privileged
//! agent" (Section III-C); we realize that by cloning the modular pipeline's
//! demonstrations before SAC fine-tuning, which makes CPU training robust
//! and fast. The attacker's IMU policy similarly bootstraps from its camera
//! teacher (Section IV-E).

use drive_nn::adam::Adam;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::mat::Mat;
use rand::Rng;

/// A demonstration dataset of observation/action pairs.
#[derive(Debug, Clone, Default)]
pub struct Demonstrations {
    obs: Vec<Vec<f32>>,
    actions: Vec<Vec<f32>>,
}

impl Demonstrations {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Demonstrations::default()
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Adds one pair.
    ///
    /// # Panics
    ///
    /// Panics if dims are inconsistent with already-stored pairs.
    pub fn push(&mut self, obs: Vec<f32>, action: Vec<f32>) {
        if let Some(first) = self.obs.first() {
            assert_eq!(obs.len(), first.len(), "obs dim mismatch");
            assert_eq!(action.len(), self.actions[0].len(), "action dim mismatch");
        }
        self.obs.push(obs);
        self.actions.push(action);
    }

    /// Samples a mini-batch as `(obs, action)` matrices.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn sample_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> (Mat, Mat) {
        assert!(!self.is_empty(), "cannot sample an empty dataset");
        let od = self.obs[0].len();
        let ad = self.actions[0].len();
        let mut o = Mat::zeros(batch, od);
        let mut a = Mat::zeros(batch, ad);
        for b in 0..batch {
            let i = rng.gen_range(0..self.len());
            o.row_mut(b).copy_from_slice(&self.obs[i]);
            a.row_mut(b).copy_from_slice(&self.actions[i]);
        }
        (o, a)
    }
}

/// Configuration for [`clone_policy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BcConfig {
    /// Gradient steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for BcConfig {
    fn default() -> Self {
        BcConfig {
            steps: 2000,
            batch_size: 128,
            lr: 1e-3,
        }
    }
}

/// Trains `policy`'s deterministic head `tanh(mean)` towards the
/// demonstrated actions with MSE loss. Returns the final mini-batch loss.
///
/// # Panics
///
/// Panics if `demos` is empty or dims mismatch the policy.
pub fn clone_policy<R: Rng>(
    policy: &mut GaussianPolicy,
    demos: &Demonstrations,
    config: BcConfig,
    rng: &mut R,
) -> f32 {
    assert!(!demos.is_empty(), "behaviour cloning needs demonstrations");
    assert_eq!(demos.obs[0].len(), policy.obs_dim(), "obs dim mismatch");
    assert_eq!(
        demos.actions[0].len(),
        policy.action_dim(),
        "action dim mismatch"
    );
    let mut opt = Adam::with_lr(config.lr);
    let mut last = f32::INFINITY;
    for _ in 0..config.steps {
        let (obs, target) = demos.sample_batch(config.batch_size, rng);
        let pred = policy.mean_action(&obs);
        let n = config.batch_size as f32;
        let mut grad = Mat::zeros(pred.rows(), pred.cols());
        let mut loss = 0.0;
        for b in 0..pred.rows() {
            for ((g, &p), &t) in grad
                .row_mut(b)
                .iter_mut()
                .zip(pred.row(b))
                .zip(target.row(b))
            {
                let e = p - t;
                loss += e * e / n;
                *g = 2.0 * e / n;
            }
        }
        last = loss;
        policy.trunk_mut().zero_grad();
        policy.backward_mean(&obs, &grad);
        opt.step(|f| policy.trunk_mut().visit_params(f));
        crate::perf::record_updates(1);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clones_a_linear_controller() {
        // Teacher: a = clamp(-x, -1, 1) on 2-D observations (second dim is
        // a distractor).
        let mut rng = StdRng::seed_from_u64(1);
        let mut demos = Demonstrations::new();
        for _ in 0..500 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let d: f32 = rng.gen_range(-1.0..1.0);
            demos.push(vec![x, d], vec![(-x).clamp(-1.0, 1.0)]);
        }
        let mut policy = GaussianPolicy::new(2, &[32], 1, &mut rng);
        let loss = clone_policy(
            &mut policy,
            &demos,
            BcConfig {
                steps: 800,
                batch_size: 64,
                lr: 3e-3,
            },
            &mut rng,
        );
        assert!(loss < 0.01, "final BC loss {loss}");
        // Behaviourally: policy mimics the teacher.
        for x in [-0.8f32, -0.2, 0.3, 0.9] {
            let a = policy.act(&[x, 0.0], &mut rng, true)[0];
            assert!((a + x).abs() < 0.15, "x {x} a {a}");
        }
    }

    #[test]
    fn dataset_accessors() {
        let mut d = Demonstrations::new();
        assert!(d.is_empty());
        d.push(vec![1.0], vec![0.5]);
        assert_eq!(d.len(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let (o, a) = d.sample_batch(3, &mut rng);
        assert_eq!((o.rows(), o.cols()), (3, 1));
        assert_eq!((a.rows(), a.cols()), (3, 1));
    }

    #[test]
    #[should_panic(expected = "obs dim mismatch")]
    fn inconsistent_dims_panic() {
        let mut d = Demonstrations::new();
        d.push(vec![1.0], vec![0.5]);
        d.push(vec![1.0, 2.0], vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "needs demonstrations")]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = GaussianPolicy::new(2, &[8], 1, &mut rng);
        let _ = clone_policy(
            &mut policy,
            &Demonstrations::new(),
            BcConfig::default(),
            &mut rng,
        );
    }

    use rand::Rng;
}
