//! Off-policy training loop and evaluation helpers.

use crate::env::{rollout, Env};
use crate::replay::{ReplayBuffer, Transition};
use crate::sac::{Sac, SacLosses};
use crate::snapshot::{SnapshotConfig, TrainSnapshot};
use crate::stats::RunningStats;
use drive_seed::{fnv1a_64, SeedTree, StreamPos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of [`train_sac`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Total environment steps to collect.
    pub total_steps: usize,
    /// Steps of uniform-random exploration before using the policy.
    pub start_steps: usize,
    /// Steps collected before the first gradient update.
    pub update_after: usize,
    /// Gradient updates per environment step (may be fractional via
    /// `update_every`: one update every `update_every` env steps).
    pub update_every: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Master seed; episode seeds derive from it.
    pub seed: u64,
    /// Training-loss watchdog: any loss whose magnitude exceeds this (or
    /// goes non-finite) triggers a rollback to the last healthy learner
    /// snapshot. `f32::INFINITY` disables the watchdog.
    pub loss_divergence_threshold: f32,
    /// Healthy updates between watchdog snapshots of the learner.
    pub snapshot_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            total_steps: 20_000,
            start_steps: 1_000,
            update_after: 1_000,
            update_every: 1,
            replay_capacity: 100_000,
            seed: 0,
            loss_divergence_threshold: 1e4,
            snapshot_every: 200,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Return of every completed episode, in order.
    pub episode_returns: Vec<f32>,
    /// Length of every completed episode.
    pub episode_lengths: Vec<usize>,
    /// Losses from the most recent update.
    pub last_losses: SacLosses,
    /// Environment steps executed.
    pub steps: usize,
    /// Streaming statistics of the episode returns.
    pub return_stats: RunningStats,
    /// Times the loss watchdog rolled the learner back to its last healthy
    /// snapshot (0 in a healthy run).
    pub rollbacks: usize,
}

impl TrainStats {
    /// Mean return over the last `n` episodes (all if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f32 {
        if self.episode_returns.is_empty() {
            return 0.0;
        }
        let tail = &self.episode_returns[self.episode_returns.len().saturating_sub(n)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// True when every loss channel is finite and within the divergence bound.
fn losses_healthy(l: &SacLosses, threshold: f32) -> bool {
    [l.q1_loss, l.q2_loss, l.actor_loss, l.alpha]
        .iter()
        .all(|v| v.is_finite() && v.abs() <= threshold)
        && l.entropy.is_finite()
}

/// Runs off-policy SAC training on an environment.
///
/// The loop is the standard one: collect a transition (random during
/// `start_steps`, on-policy stochastic afterwards), store it, and perform
/// one update every `update_every` steps once `update_after` transitions
/// exist.
///
/// A loss watchdog guards the learner: the optimizer occasionally diverges
/// (exploding Q targets, a NaN slipping through a pathological batch), and
/// once parameters go non-finite every later update is garbage. The loop
/// snapshots the learner every [`TrainConfig::snapshot_every`] healthy
/// updates and, when an update reports a non-finite or out-of-bound loss,
/// restores the snapshot instead of continuing from the poisoned state.
/// Rollbacks are counted in [`TrainStats::rollbacks`].
pub fn train_sac<E: Env + ?Sized>(env: &mut E, sac: &mut Sac, config: TrainConfig) -> TrainStats {
    train_sac_resumable(env, sac, config, None)
}

/// Hash pinning a snapshot to its training setup: the full [`TrainConfig`],
/// the SAC hyper-parameters, and the environment shapes. A snapshot taken
/// under any other setup is ignored on resume.
fn train_config_hash<E: Env + ?Sized>(env: &E, sac: &Sac, config: &TrainConfig) -> u64 {
    fnv1a_64(
        format!(
            "{config:?}|{:?}|{}|{}",
            sac.config(),
            env.obs_dim(),
            env.action_dim()
        )
        .as_bytes(),
    )
}

/// [`train_sac`] with optional crash-recovery snapshots.
///
/// When `snapshot` is set, the loop periodically (at episode boundaries, at
/// least [`SnapshotConfig::every_steps`] apart) writes a durable
/// [`TrainSnapshot`] capturing the learner, replay buffer, statistics, and
/// the exact RNG stream position. On the next call with the same
/// configuration, a valid snapshot at that path is restored and training
/// re-enters the loop at the saved step — the completed run is bit-identical
/// to an uninterrupted one, because every source of randomness resumes
/// mid-stream and the environment is re-entered at an episode boundary via
/// its seed. A snapshot from a different configuration, a torn file, or a
/// stale format version is ignored (with a note on stderr) and training
/// starts from scratch. The snapshot file is removed once training
/// completes.
pub fn train_sac_resumable<E: Env + ?Sized>(
    env: &mut E,
    sac: &mut Sac,
    config: TrainConfig,
    snapshot: Option<&SnapshotConfig>,
) -> TrainStats {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("sac-train").seed());
    let mut buffer = ReplayBuffer::new(config.replay_capacity, env.obs_dim(), env.action_dim());
    let mut stats = TrainStats::default();
    let mut episode_seed = config.seed;
    let mut ep_return = 0.0f32;
    let mut ep_len = 0usize;
    let mut last_good: Option<Sac> = None;
    let mut healthy_updates = 0usize;
    let mut start_step = 0usize;
    let mut last_snapshot_step = 0usize;
    let config_hash = train_config_hash(env, sac, &config);

    if let Some(sc) = snapshot {
        if sc.path.exists() {
            match TrainSnapshot::load(&sc.path, *sac.config()) {
                Ok(snap) if snap.config_hash == config_hash && snap.step <= config.total_steps => {
                    rng = snap.rng.restore();
                    buffer = snap.buffer;
                    stats = snap.stats;
                    episode_seed = snap.episode_seed;
                    *sac = snap.sac;
                    last_good = snap.last_good;
                    healthy_updates = snap.healthy_updates;
                    start_step = snap.step;
                    last_snapshot_step = snap.step;
                }
                Ok(snap) => {
                    eprintln!(
                        "[train] ignoring snapshot {}: config hash {:016x} != {config_hash:016x} \
                         or step {} beyond total {}",
                        sc.path.display(),
                        snap.config_hash,
                        snap.step,
                        config.total_steps
                    );
                }
                Err(e) => {
                    eprintln!(
                        "[train] ignoring unreadable snapshot {}: {e}",
                        sc.path.display()
                    );
                }
            }
        }
    }
    // Fresh start, or re-entry at the episode boundary the snapshot pinned:
    // either way the environment state derives from the episode seed alone.
    let mut obs = env.reset(episode_seed);

    for step in start_step..config.total_steps {
        let action: Vec<f32> = if step < config.start_steps {
            (0..env.action_dim())
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect()
        } else {
            sac.act(&obs, &mut rng, false)
        };
        let s = env.step(&action);
        ep_return += s.reward;
        ep_len += 1;
        buffer.push(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: s.reward,
            next_obs: s.obs.clone(),
            terminal: s.done,
        });
        let finished = s.finished();
        obs = s.obs;
        if finished {
            stats.episode_returns.push(ep_return);
            stats.episode_lengths.push(ep_len);
            stats.return_stats.push(ep_return as f64);
            ep_return = 0.0;
            ep_len = 0;
            episode_seed += 1;
            obs = env.reset(episode_seed);
        }
        if buffer.len() >= config.update_after && step % config.update_every.max(1) == 0 {
            let losses = sac.update(&buffer, &mut rng);
            if losses_healthy(&losses, config.loss_divergence_threshold) {
                stats.last_losses = losses;
                healthy_updates += 1;
                if healthy_updates.is_multiple_of(config.snapshot_every.max(1))
                    || last_good.is_none()
                {
                    last_good = Some(sac.clone());
                }
            } else {
                stats.rollbacks += 1;
                if let Some(snapshot) = &last_good {
                    *sac = snapshot.clone();
                }
                // No healthy snapshot yet: keep the (possibly poisoned)
                // learner but still record the event; the next healthy
                // update establishes the first snapshot.
            }
        }
        stats.steps = step + 1;
        // Snapshot only at an episode boundary (the environment state is
        // then fully determined by `episode_seed`), after this step's
        // update has consumed its RNG draws, and never on the final step
        // (the run is about to finish anyway).
        if finished {
            if let Some(sc) = snapshot {
                let done = step + 1;
                if done < config.total_steps && done - last_snapshot_step >= sc.every_steps.max(1) {
                    let snap = TrainSnapshot {
                        step: done,
                        episode_seed,
                        config_hash,
                        rng: StreamPos::capture(&rng),
                        healthy_updates,
                        stats: stats.clone(),
                        sac: sac.clone(),
                        last_good: last_good.clone(),
                        buffer: buffer.clone(),
                    };
                    match snap.save(&sc.path) {
                        Ok(()) => last_snapshot_step = done,
                        Err(e) => eprintln!(
                            "[train] snapshot write to {} failed: {e}",
                            sc.path.display()
                        ),
                    }
                }
            }
        }
    }
    if let Some(sc) = snapshot {
        // The run completed; a leftover snapshot would only confuse the
        // next (fresh) run with the same path.
        let _ = std::fs::remove_file(&sc.path);
    }
    stats
}

/// Evaluation summary over several deterministic episodes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Per-episode returns.
    pub returns: Vec<f32>,
    /// Per-episode lengths.
    pub lengths: Vec<usize>,
}

impl EvalStats {
    /// Mean return.
    pub fn mean_return(&self) -> f32 {
        if self.returns.is_empty() {
            0.0
        } else {
            self.returns.iter().sum::<f32>() / self.returns.len() as f32
        }
    }

    /// Mean episode length.
    pub fn mean_length(&self) -> f32 {
        if self.lengths.is_empty() {
            0.0
        } else {
            self.lengths.iter().sum::<usize>() as f32 / self.lengths.len() as f32
        }
    }
}

/// Evaluates a policy (any closure) over `episodes` episodes with seeds
/// `base_seed..base_seed + episodes`.
pub fn evaluate<E: Env + ?Sized, F: FnMut(&[f32]) -> Vec<f32>>(
    env: &mut E,
    mut policy: F,
    episodes: usize,
    base_seed: u64,
) -> EvalStats {
    let mut stats = EvalStats::default();
    for e in 0..episodes {
        let (r, l) = rollout(env, &mut policy, base_seed + e as u64);
        stats.returns.push(r);
        stats.lengths.push(l);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::PointEnv;
    use crate::sac::SacConfig;

    #[test]
    fn train_loop_improves_point_env() {
        let mut env = PointEnv::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut sac = Sac::new(
            1,
            1,
            &[32, 32],
            SacConfig {
                batch_size: 64,
                actor_lr: 1e-3,
                critic_lr: 1e-3,
                alpha_lr: 1e-3,
                ..SacConfig::default()
            },
            &mut rng,
        );
        let before = evaluate(
            &mut env,
            |o| sac.act(o, &mut StdRng::seed_from_u64(1), true),
            5,
            100,
        );
        let stats = train_sac(
            &mut env,
            &mut sac,
            TrainConfig {
                total_steps: 4000,
                start_steps: 200,
                update_after: 200,
                ..TrainConfig::default()
            },
        );
        assert!(stats.steps == 4000);
        assert!(!stats.episode_returns.is_empty());
        assert_eq!(
            stats.return_stats.count() as usize,
            stats.episode_returns.len()
        );
        let batch_mean =
            stats.episode_returns.iter().sum::<f32>() as f64 / stats.episode_returns.len() as f64;
        assert!((stats.return_stats.mean() - batch_mean).abs() < 1e-3);
        let after = evaluate(
            &mut env,
            |o| sac.act(o, &mut StdRng::seed_from_u64(1), true),
            5,
            100,
        );
        assert!(
            after.mean_return() > before.mean_return(),
            "training must improve: {} -> {}",
            before.mean_return(),
            after.mean_return()
        );
        assert!(after.mean_return() > -6.0, "got {}", after.mean_return());
    }

    #[test]
    fn watchdog_health_check_flags_bad_losses() {
        let good = SacLosses::default();
        assert!(losses_healthy(&good, 1e4));
        let nan = SacLosses {
            q1_loss: f32::NAN,
            ..SacLosses::default()
        };
        assert!(!losses_healthy(&nan, 1e4));
        let exploded = SacLosses {
            actor_loss: 1e6,
            ..SacLosses::default()
        };
        assert!(!losses_healthy(&exploded, 1e4));
        assert!(losses_healthy(&exploded, f32::INFINITY));
    }

    #[test]
    fn watchdog_rolls_back_diverging_training() {
        // A wildly excessive critic learning rate reliably explodes the
        // Q losses on PointEnv; the watchdog must fire and the learner
        // must come out of training with finite parameters.
        let mut env = PointEnv::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sac = Sac::new(
            1,
            1,
            &[16],
            SacConfig {
                batch_size: 32,
                critic_lr: 50.0,
                actor_lr: 1e-3,
                ..SacConfig::default()
            },
            &mut rng,
        );
        let stats = train_sac(
            &mut env,
            &mut sac,
            TrainConfig {
                total_steps: 600,
                start_steps: 50,
                update_after: 50,
                loss_divergence_threshold: 100.0,
                snapshot_every: 5,
                ..TrainConfig::default()
            },
        );
        assert!(stats.rollbacks > 0, "expected the watchdog to fire");
        let out = sac.act(&[0.5], &mut StdRng::seed_from_u64(0), true);
        assert!(
            out.iter().all(|v| v.is_finite()),
            "rolled-back learner acts finitely"
        );
    }

    /// Wrapper that aborts training after a fixed number of env steps —
    /// the in-process stand-in for a SIGKILL (the bench integration test
    /// kills real subprocesses; this unit test pins the library-level
    /// contract).
    struct KillAfter {
        inner: PointEnv,
        remaining: usize,
    }

    impl Env for KillAfter {
        fn obs_dim(&self) -> usize {
            self.inner.obs_dim()
        }
        fn action_dim(&self) -> usize {
            self.inner.action_dim()
        }
        fn reset(&mut self, seed: u64) -> Vec<f32> {
            self.inner.reset(seed)
        }
        fn step(&mut self, action: &[f32]) -> crate::env::EnvStep {
            assert!(self.remaining > 0, "simulated kill");
            self.remaining -= 1;
            self.inner.step(action)
        }
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        // Three runs with the same configuration: (a) straight through,
        // (b) snapshotting but never killed, (c) killed mid-run and
        // resumed from the snapshot. Final policies and statistics must be
        // bit-identical across all three.
        let dir = std::env::temp_dir().join("drive-rl-resume-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TrainConfig {
            total_steps: 900,
            start_steps: 100,
            update_after: 100,
            snapshot_every: 50,
            ..TrainConfig::default()
        };
        let sac_cfg = SacConfig {
            batch_size: 16,
            ..SacConfig::default()
        };
        let fresh_sac = || {
            let mut rng = StdRng::seed_from_u64(2);
            Sac::new(1, 1, &[16], sac_cfg, &mut rng)
        };
        let act_fingerprint = |sac: &Sac| {
            let mut d = StdRng::seed_from_u64(0);
            sac.act(&[0.4], &mut d, true)
        };

        let mut env = PointEnv::new();
        let mut plain = fresh_sac();
        let plain_stats = train_sac(&mut env, &mut plain, cfg);

        let snap_cfg = SnapshotConfig {
            path: dir.join("train.snap"),
            every_steps: 150,
        };
        let mut env = PointEnv::new();
        let mut unkilled = fresh_sac();
        let unkilled_stats = train_sac_resumable(&mut env, &mut unkilled, cfg, Some(&snap_cfg));
        assert!(
            !snap_cfg.path.exists(),
            "completed run must remove its snapshot"
        );
        assert_eq!(plain_stats.episode_returns, unkilled_stats.episode_returns);
        assert_eq!(plain_stats.steps, unkilled_stats.steps);
        assert_eq!(act_fingerprint(&plain), act_fingerprint(&unkilled));

        // Kill the run after 500 env steps; at least one snapshot (first
        // boundary past step 150) is on disk by then.
        let mut kenv = KillAfter {
            inner: PointEnv::new(),
            remaining: 500,
        };
        let mut killed = fresh_sac();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_sac_resumable(&mut kenv, &mut killed, cfg, Some(&snap_cfg))
        }));
        assert!(outcome.is_err(), "the kill must interrupt training");
        assert!(snap_cfg.path.exists(), "kill must leave a snapshot behind");

        let mut env = PointEnv::new();
        let mut resumed = fresh_sac();
        let resumed_stats = train_sac_resumable(&mut env, &mut resumed, cfg, Some(&snap_cfg));
        assert!(!snap_cfg.path.exists());
        assert_eq!(plain_stats.episode_returns, resumed_stats.episode_returns);
        assert_eq!(plain_stats.episode_lengths, resumed_stats.episode_lengths);
        assert_eq!(plain_stats.last_losses, resumed_stats.last_losses);
        assert_eq!(plain_stats.steps, resumed_stats.steps);
        assert_eq!(
            plain_stats.return_stats.raw_parts(),
            resumed_stats.return_stats.raw_parts()
        );
        assert_eq!(
            act_fingerprint(&plain),
            act_fingerprint(&resumed),
            "resumed policy diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_config_snapshot_is_ignored() {
        // A snapshot from a different TrainConfig must not be restored.
        let dir = std::env::temp_dir().join("drive-rl-stale-snap-test");
        let _ = std::fs::remove_dir_all(&dir);
        let snap_cfg = SnapshotConfig {
            path: dir.join("train.snap"),
            every_steps: 100,
        };
        let sac_cfg = SacConfig {
            batch_size: 16,
            ..SacConfig::default()
        };
        let fresh_sac = || {
            let mut rng = StdRng::seed_from_u64(4);
            Sac::new(1, 1, &[16], sac_cfg, &mut rng)
        };
        let base = TrainConfig {
            total_steps: 600,
            start_steps: 100,
            update_after: 100,
            ..TrainConfig::default()
        };
        // Kill a run under `base` so its snapshot survives on disk.
        let mut kenv = KillAfter {
            inner: PointEnv::new(),
            remaining: 400,
        };
        let mut killed = fresh_sac();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_sac_resumable(&mut kenv, &mut killed, base, Some(&snap_cfg))
        }));
        assert!(snap_cfg.path.exists());
        // Resume under a *different* config: the stale snapshot must be
        // ignored and the run must equal a fresh one.
        let other = TrainConfig {
            total_steps: 500,
            ..base
        };
        let mut env = PointEnv::new();
        let mut a = fresh_sac();
        let a_stats = train_sac_resumable(&mut env, &mut a, other, Some(&snap_cfg));
        let mut env = PointEnv::new();
        let mut b = fresh_sac();
        let b_stats = train_sac(&mut env, &mut b, other);
        assert_eq!(a_stats.episode_returns, b_stats.episode_returns);
        assert_eq!(a_stats.steps, b_stats.steps);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recent_mean_return_window() {
        let stats = TrainStats {
            episode_returns: vec![0.0, 10.0, 20.0],
            ..TrainStats::default()
        };
        assert_eq!(stats.recent_mean_return(2), 15.0);
        assert_eq!(stats.recent_mean_return(100), 10.0);
        assert_eq!(TrainStats::default().recent_mean_return(5), 0.0);
    }

    #[test]
    fn evaluate_is_deterministic_given_policy() {
        let mut env = PointEnv::new();
        let a = evaluate(&mut env, |o| vec![-o[0]], 3, 7);
        let b = evaluate(&mut env, |o| vec![-o[0]], 3, 7);
        assert_eq!(a, b);
        assert_eq!(a.returns.len(), 3);
        assert!(a.mean_length() > 0.0);
    }
}
