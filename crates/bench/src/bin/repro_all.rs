//! Runs every registered experiment in sequence (baseline, Fig. 4–8,
//! ablations) via the registry. See `repro_bench::cli`.

fn main() {
    std::process::exit(repro_bench::cli::main_for("all"));
}
