//! Per-episode recording shared by every experiment harness.
//!
//! An [`EpisodeRecord`] is filled in by the agent/attack runners and
//! consumed by `drive-metrics` to build the paper's figures: nominal and
//! adversarial returns (Fig. 4, Fig. 6), normalized trajectory deviation
//! and attack effort (Fig. 5, Fig. 7), success classification and timing
//! (Fig. 8, §V-B).

use crate::world::{CollisionEvent, CollisionKind, Termination};
use serde::{Deserialize, Serialize};

/// Perturbations below this magnitude do not count as the start of an
/// attack attempt (learned policies emit tiny non-zero means even when
/// "quiet"; the paper's attack effort is measured over the attempt).
pub const ATTACK_START_THRESHOLD: f64 = 0.02;

/// Everything measured over one episode.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Control steps executed.
    pub steps: usize,
    /// Control period, seconds.
    pub dt: f64,
    /// How the episode ended.
    pub termination: Option<Termination>,
    /// Collision, if one ended the episode.
    pub collision: Option<CollisionEvent>,
    /// NPC vehicles fully passed.
    pub passed: usize,
    /// Cumulative nominal driving reward.
    pub nominal_return: f64,
    /// Cumulative adversarial reward (0 when unattacked).
    pub adv_return: f64,
    /// Per-step trajectory deviation, normalized by half the lane width.
    pub deviation: Vec<f64>,
    /// Per-step injected steering perturbation magnitude `|delta|`
    /// (empty / zeros when unattacked).
    pub perturbation: Vec<f64>,
    /// Step at which the attacker first injected a non-zero perturbation.
    pub attack_start: Option<usize>,
    /// Commanded actions with a non-finite channel that the simulator
    /// sanitized before stepping (0 in healthy episodes).
    pub nonfinite_actions: usize,
}

impl EpisodeRecord {
    /// Whether the episode ended in the attacker's desired side collision.
    pub fn side_collision(&self) -> bool {
        matches!(
            self.collision,
            Some(CollisionEvent {
                kind: CollisionKind::Side,
                ..
            })
        )
    }

    /// Whether the episode counts as a *successful attack*: a side
    /// collision that happened at or after the attack attempt began. A
    /// side collision with no preceding perturbation is the victim's own
    /// doing and is not credited to the attacker.
    pub fn attack_success(&self) -> bool {
        match (self.attack_start, self.collision) {
            (Some(start), Some(c)) => matches!(c.kind, CollisionKind::Side) && c.step >= start,
            _ => false,
        }
    }

    /// Root-mean-square of the normalized trajectory deviation.
    pub fn deviation_rmse(&self) -> f64 {
        if self.deviation.is_empty() {
            return 0.0;
        }
        let ms = self.deviation.iter().map(|d| d * d).sum::<f64>() / self.deviation.len() as f64;
        ms.sqrt()
    }

    /// The paper's *attack effort* (x-axis of Fig. 5 and Fig. 7): total
    /// perturbation injected during the attack attempt, averaged over the
    /// attempt's steps (from the first non-zero perturbation to episode
    /// end). Zero when no attack was ever injected.
    pub fn attack_effort(&self) -> f64 {
        let Some(start) = self.attack_start else {
            return 0.0;
        };
        let active = &self.perturbation[start.min(self.perturbation.len())..];
        if active.is_empty() {
            return 0.0;
        }
        active.iter().sum::<f64>() / active.len() as f64
    }

    /// Fraction of episode steps with an active (above-threshold)
    /// perturbation — a stealthiness measure: the paper's attacker is
    /// designed to "lurk until a safety-critical moment arises".
    pub fn attack_duty_cycle(&self) -> f64 {
        if self.perturbation.is_empty() {
            return 0.0;
        }
        let active = self
            .perturbation
            .iter()
            .filter(|p| **p > ATTACK_START_THRESHOLD)
            .count();
        active as f64 / self.perturbation.len() as f64
    }

    /// Time from attack activation to the collision, seconds, if the attack
    /// produced one (the §V-B timing statistic).
    pub fn time_to_collision(&self) -> Option<f64> {
        let start = self.attack_start?;
        let collision = self.collision?;
        if collision.step >= start {
            Some((collision.step - start) as f64 * self.dt)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> EpisodeRecord {
        EpisodeRecord {
            steps: 4,
            dt: 0.1,
            deviation: vec![0.0, 0.3, -0.4, 0.0],
            perturbation: vec![0.0, 0.5, 1.0, 0.5],
            attack_start: Some(1),
            collision: Some(CollisionEvent {
                kind: CollisionKind::Side,
                npc_index: Some(0),
                step: 3,
            }),
            termination: None,
            passed: 0,
            nominal_return: 0.0,
            adv_return: 0.0,
            nonfinite_actions: 0,
        }
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let r = rec();
        let expected = ((0.09 + 0.16) / 4.0f64).sqrt();
        assert!((r.deviation_rmse() - expected).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().deviation_rmse(), 0.0);
    }

    #[test]
    fn effort_is_mean_over_attack_attempt() {
        // Attack starts at step 1: effort = (0.5 + 1.0 + 0.5) / 3.
        let r = rec();
        assert!((r.attack_effort() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().attack_effort(), 0.0);
        // No attack_start → zero even with recorded perturbations.
        let mut r2 = rec();
        r2.attack_start = None;
        assert_eq!(r2.attack_effort(), 0.0);
    }

    #[test]
    fn duty_cycle_counts_active_steps() {
        let r = rec();
        // Steps with |delta| > threshold: 0.5, 1.0, 0.5 of 4 steps.
        assert!((r.attack_duty_cycle() - 0.75).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().attack_duty_cycle(), 0.0);
    }

    #[test]
    fn attack_success_requires_attacker_involvement() {
        assert!(rec().attack_success());
        // Same side collision without any attack attempt: not a success.
        let mut own_goal = rec();
        own_goal.attack_start = None;
        assert!(own_goal.side_collision());
        assert!(!own_goal.attack_success());
        // Collision before the attack began: not a success either.
        let mut early = rec();
        early.attack_start = Some(4);
        assert!(!early.attack_success());
    }

    #[test]
    fn side_collision_detection() {
        assert!(rec().side_collision());
        let mut r = rec();
        r.collision = Some(CollisionEvent {
            kind: CollisionKind::RearEnd,
            npc_index: Some(0),
            step: 3,
        });
        assert!(!r.side_collision());
        r.collision = None;
        assert!(!r.side_collision());
    }

    #[test]
    fn time_to_collision_uses_attack_start() {
        let r = rec();
        assert!((r.time_to_collision().unwrap() - 0.2).abs() < 1e-12);
        let mut r2 = rec();
        r2.attack_start = None;
        assert_eq!(r2.time_to_collision(), None);
    }
}
