//! Bounded retry with deterministic jittered backoff.
//!
//! Every retry loop in this repo used to be hand-rolled: the harness
//! re-seeded and re-ran panicking episodes, and ad-hoc sleep loops
//! guarded flaky I/O. This module is the one shared implementation:
//! attempts are bounded, the backoff between attempts grows
//! exponentially with a *seeded* jitter (so two clients retrying the
//! same overloaded server do not thunder in lockstep, yet a fixed seed
//! reproduces the exact same delays), and exhaustion is a typed error
//! carrying the last failure instead of a stringly sentinel.

use drive_seed::splitmix64;
use std::time::Duration;

/// Retry knobs: how many attempts, and how long to wait between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries); min 1.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    /// [`Duration::ZERO`] disables sleeping entirely (the harness's
    /// in-process reseeded retries want no delay).
    pub base_backoff: Duration,
    /// Upper clamp on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1 + jitter)`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::attempts(3)
    }
}

impl RetryPolicy {
    /// A policy with `n` attempts and no backoff (immediate retries).
    pub fn attempts(n: usize) -> Self {
        RetryPolicy {
            max_attempts: n.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// The lease-acquisition contention policy used by the sharded
    /// multi-process coordinator (`repro_bench shard`): short, heavily
    /// jittered exponential waits. N workers racing for the same
    /// `O_EXCL` lease all lose except one; the losers re-poll on
    /// decorrelated schedules (each worker seeds [`backoff_for`] from
    /// its own `SeedTree` stream) instead of thundering in lockstep,
    /// while a fixed worker seed reproduces the exact same waits.
    ///
    /// `max_attempts` here bounds the *exponent*, not the caller's
    /// loop: contention loops poll indefinitely (until the lease frees,
    /// goes stale, or shutdown latches) and clamp their attempt index
    /// to this policy's range.
    ///
    /// [`backoff_for`]: RetryPolicy::backoff_for
    pub fn lease_contention() -> Self {
        RetryPolicy::attempts(8).with_backoff(
            Duration::from_millis(2),
            Duration::from_millis(250),
            0.5,
        )
    }

    /// Adds exponential backoff: `base * 2^retry`, clamped to `max`,
    /// scaled by the jitter fraction.
    pub fn with_backoff(mut self, base: Duration, max: Duration, jitter: f64) -> Self {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The backoff slept after failed attempt `attempt` (0-based), for
    /// the given jitter seed. Pure: the same `(policy, attempt, seed)`
    /// always yields the same duration.
    pub fn backoff_for(&self, attempt: usize, seed: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.min(32) as u32;
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return raw;
        }
        // Map a splitmix draw to [1 - jitter, 1 + jitter).
        let unit =
            (splitmix64(seed.wrapping_add(attempt as u64)) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        raw.mul_f64(factor).min(self.max_backoff)
    }
}

/// A successful retried operation: the value plus how many attempts it
/// took (1 = first try succeeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt<T> {
    /// The operation's result.
    pub value: T,
    /// Attempts consumed.
    pub attempts: usize,
}

/// Every attempt failed: the retry budget is spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhausted<E> {
    /// Attempts consumed (== the policy's `max_attempts`).
    pub attempts: usize,
    /// The error of the final attempt.
    pub last: E,
}

impl<E: std::fmt::Display> std::fmt::Display for Exhausted<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retry budget exhausted after {} attempt(s): {}",
            self.attempts, self.last
        )
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for Exhausted<E> {}

/// Runs `op` up to `policy.max_attempts` times, sleeping the policy's
/// jittered backoff between attempts.
///
/// `op` receives the 0-based attempt index, so callers can derive
/// per-attempt state (the harness offsets its RNG seed per attempt).
/// `seed` only feeds the backoff jitter; it never changes which
/// attempts run.
pub fn run<T, E>(
    policy: &RetryPolicy,
    seed: u64,
    mut op: impl FnMut(usize) -> Result<T, E>,
) -> Result<Attempt<T>, Exhausted<E>> {
    let max = policy.max_attempts.max(1);
    let mut last: Option<E> = None;
    for attempt in 0..max {
        if attempt > 0 {
            let pause = policy.backoff_for(attempt - 1, seed);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        match op(attempt) {
            Ok(value) => {
                return Ok(Attempt {
                    value,
                    attempts: attempt + 1,
                })
            }
            Err(e) => last = Some(e),
        }
    }
    Err(Exhausted {
        attempts: max,
        last: last.expect("at least one attempt ran"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_consumes_one_attempt() {
        let got = run(&RetryPolicy::default(), 0, |_| Ok::<_, String>(7)).unwrap();
        assert_eq!(got.value, 7);
        assert_eq!(got.attempts, 1);
    }

    #[test]
    fn retries_until_success_and_reports_attempts() {
        let mut calls = 0;
        let got = run(&RetryPolicy::attempts(5), 0, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(got.attempts, 3);
        assert_eq!(got.value, 2);
    }

    #[test]
    fn exhaustion_is_typed_and_carries_the_last_error() {
        let err = run(&RetryPolicy::attempts(3), 0, |attempt| {
            Err::<(), String>(format!("fail {attempt}"))
        })
        .expect_err("must exhaust");
        assert_eq!(err.attempts, 3);
        assert_eq!(err.last, "fail 2");
        assert!(err.to_string().contains("exhausted after 3"));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let _ = run(&RetryPolicy::attempts(0), 0, |_| {
            calls += 1;
            Ok::<_, ()>(())
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_exponential_clamped_and_deterministic() {
        let p = RetryPolicy::attempts(8).with_backoff(
            Duration::from_millis(10),
            Duration::from_millis(45),
            0.0,
        );
        assert_eq!(p.backoff_for(0, 1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1, 1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2, 1), Duration::from_millis(40));
        assert_eq!(p.backoff_for(3, 1), Duration::from_millis(45), "clamped");
        assert_eq!(
            p.backoff_for(60, 1),
            Duration::from_millis(45),
            "no overflow"
        );

        let j = p.with_backoff(Duration::from_millis(10), Duration::from_millis(45), 0.5);
        for attempt in 0..4 {
            let a = j.backoff_for(attempt, 99);
            let b = j.backoff_for(attempt, 99);
            assert_eq!(a, b, "same seed, same jitter");
            let raw = p.backoff_for(attempt, 0).as_secs_f64();
            assert!(
                a.as_secs_f64() >= raw * 0.5 - 1e-9 && a.as_secs_f64() <= raw * 1.5 + 1e-9,
                "jitter bounds at attempt {attempt}: {a:?} vs raw {raw}"
            );
        }
        assert_ne!(
            j.backoff_for(0, 1),
            j.backoff_for(0, 2),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn lease_contention_policy_is_jittered_and_deterministic() {
        let p = RetryPolicy::lease_contention();
        assert!(p.jitter > 0.0, "contention waits must decorrelate");
        assert!(!p.base_backoff.is_zero());
        // Deterministic per (attempt, seed); distinct across worker seeds.
        assert_eq!(p.backoff_for(3, 7), p.backoff_for(3, 7));
        assert_ne!(p.backoff_for(0, 1), p.backoff_for(0, 2));
        // Bounded even for clamped attempt indices far past the policy.
        assert!(p.backoff_for(1000, 9) <= p.max_backoff);
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let p = RetryPolicy::attempts(4);
        assert_eq!(p.backoff_for(3, 123), Duration::ZERO);
        let start = std::time::Instant::now();
        let _ = run(&p, 0, |_| Err::<(), _>(()));
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}
