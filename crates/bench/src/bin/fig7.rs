//! Regenerates the paper's fig7 report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("fig7");
}
