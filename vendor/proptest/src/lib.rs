//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Provides the `proptest! { #[test] fn name(arg in strategy, ...) { .. } }`
//! macro, `prop_assert!`/`prop_assert_eq!`, range/tuple/`any::<T>()`
//! strategies, and `prop::collection::vec`. Unlike upstream proptest, case
//! generation is fully deterministic: each test draws its cases from an RNG
//! seeded by a hash of the test's name, so failures reproduce without a
//! persisted regression file. No shrinking is performed — on failure the
//! case index and seed identify the failing input.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(f32, f64, usize, u64, u32, i64, i32);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!((A)(A, B)(A, B, C)(A, B, C, D));
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy for a type.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy produced by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(core::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample_value(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! any_uniform {
        ($($t:ty => $lo:expr, $hi:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range($lo..=$hi)
                }
            }
        )*};
    }
    any_uniform! {
        u8 => u8::MIN, u8::MAX;
        u16 => u16::MIN, u16::MAX;
        u32 => u32::MIN, u32::MAX;
        u64 => u64::MIN, u64::MAX;
        usize => usize::MIN, usize::MAX;
        i32 => i32::MIN, i32::MAX;
        i64 => i64::MIN, i64::MAX;
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    pub struct SizeBounds {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeBounds {
        fn from(n: usize) -> Self {
            SizeBounds {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeBounds {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeBounds {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeBounds {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeBounds {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeBounds,
    }

    /// Builds a strategy for `Vec<S::Value>` with the given length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling and failure reporting.

    use super::StdRng;
    use rand::SeedableRng;

    /// Number of cases generated per property.
    pub const CASES: u32 = 64;

    /// A failed property assertion, carried back to the runner.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion-failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Seeds the per-test RNG from the test's name (FNV-1a), so every run
    /// of a given property generates the same cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves via the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines deterministic property tests. Each `fn name(arg in strategy)`
/// item becomes a `#[test]` that runs [`test_runner::CASES`] generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::test_runner::rng_for(stringify!($name));
                for prop_case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&$strat, &mut prop_rng);
                    )+
                    let prop_result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = prop_result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            prop_case + 1,
                            $crate::test_runner::CASES,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The shim itself: ranges respect bounds, vecs respect sizes.
        #[test]
        fn shim_generates_in_bounds(
            x in -5.0f64..5.0,
            v in prop::collection::vec(0usize..10, 1..8),
            exact in prop::collection::vec(0.0f32..1.0, 3),
            (a, b) in (0u64..100, any::<bool>()),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(a < 100);
            let _ = b;
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use rand::Rng;
        let mut a = crate::test_runner::rng_for("some_property");
        let mut b = crate::test_runner::rng_for("some_property");
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
    }
}
