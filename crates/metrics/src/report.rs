//! Fixed-width text tables for the experiment harnesses' stdout reports.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with fixed precision (convenience for table cells).
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a rate as a percentage.
pub fn fmt_pct(rate: f64) -> String {
    format!("{:.0}%", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["budget", "reward"]);
        t.row(["0.25", "123.4"]);
        t.row(["1.00", "-5.0"]);
        let s = format!("{t}");
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("budget"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(format!("{t}").lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn overlong_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2", "3"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.5), "50%");
        assert!(Table::new(["x"]).is_empty());
    }
}
