//! Road model: a straight multi-lane freeway with shoulder barriers.
//!
//! The paper's scenario (CARLA Town 4 Road 23) is a freeway stretch with no
//! intersections or traffic lights; the relevant structure is lane geometry
//! and the hard barriers at the road edges. The road runs along the world +x
//! axis; lane 0 is the rightmost lane (most negative y).

use crate::geometry::Vec2;
use serde::{Deserialize, Serialize};

/// Static description of the freeway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Number of parallel lanes (≥ 1).
    pub num_lanes: usize,
    /// Width of each lane in meters.
    pub lane_width: f64,
    /// Total drivable length in meters (episodes start at x = 0).
    pub length: f64,
    /// Thickness of the edge barriers in meters (purely for rendering /
    /// collision extents).
    pub barrier_thickness: f64,
}

impl Default for Road {
    /// Three 3.5 m lanes over 1.5 km — the Town-4-like freeway used by every
    /// scenario in this crate.
    fn default() -> Self {
        Road {
            num_lanes: 3,
            lane_width: 3.5,
            length: 1500.0,
            barrier_thickness: 0.5,
        }
    }
}

impl Road {
    /// Creates a road, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_lanes == 0` or any dimension is non-positive.
    pub fn new(num_lanes: usize, lane_width: f64, length: f64) -> Self {
        assert!(num_lanes > 0, "road must have at least one lane");
        assert!(
            lane_width > 0.0 && length > 0.0,
            "lane width and length must be positive"
        );
        Road {
            num_lanes,
            lane_width,
            length,
            barrier_thickness: 0.5,
        }
    }

    /// Total width of the drivable surface.
    pub fn width(&self) -> f64 {
        self.num_lanes as f64 * self.lane_width
    }

    /// y coordinate of the right road edge (barrier inner face).
    pub fn right_edge_y(&self) -> f64 {
        -self.width() / 2.0
    }

    /// y coordinate of the left road edge (barrier inner face).
    pub fn left_edge_y(&self) -> f64 {
        self.width() / 2.0
    }

    /// y coordinate of the centerline of `lane` (0 = rightmost).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= num_lanes`.
    pub fn lane_center_y(&self, lane: usize) -> f64 {
        assert!(lane < self.num_lanes, "lane {lane} out of range");
        self.right_edge_y() + (lane as f64 + 0.5) * self.lane_width
    }

    /// Index of the lane containing lateral position `y`, clamped to the
    /// nearest lane when `y` is off the road.
    pub fn lane_of(&self, y: f64) -> usize {
        let rel = (y - self.right_edge_y()) / self.lane_width;
        (rel.floor().max(0.0) as usize).min(self.num_lanes - 1)
    }

    /// Signed lateral offset of `y` from the center of its (clamped) lane,
    /// positive towards the left.
    pub fn lane_offset(&self, y: f64) -> f64 {
        y - self.lane_center_y(self.lane_of(y))
    }

    /// Whether the point is on the drivable surface.
    pub fn on_road(&self, p: Vec2) -> bool {
        p.y > self.right_edge_y() && p.y < self.left_edge_y() && p.x >= 0.0 && p.x <= self.length
    }

    /// Signed distance from `y` to the nearest barrier face; positive while
    /// on the road, negative once past the edge.
    pub fn distance_to_nearest_edge(&self, y: f64) -> f64 {
        (self.left_edge_y() - y).min(y - self.right_edge_y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_road_dimensions() {
        let r = Road::default();
        assert_eq!(r.num_lanes, 3);
        assert!((r.width() - 10.5).abs() < 1e-12);
        assert!((r.left_edge_y() - 5.25).abs() < 1e-12);
        assert!((r.right_edge_y() + 5.25).abs() < 1e-12);
    }

    #[test]
    fn lane_centers_are_evenly_spaced() {
        let r = Road::default();
        let c0 = r.lane_center_y(0);
        let c1 = r.lane_center_y(1);
        let c2 = r.lane_center_y(2);
        assert!((c1 - c0 - r.lane_width).abs() < 1e-12);
        assert!((c2 - c1 - r.lane_width).abs() < 1e-12);
        // Middle lane of 3 is centered on y = 0.
        assert!(c1.abs() < 1e-12);
    }

    #[test]
    fn lane_of_round_trips_lane_centers() {
        let r = Road::default();
        for lane in 0..r.num_lanes {
            assert_eq!(r.lane_of(r.lane_center_y(lane)), lane);
        }
    }

    #[test]
    fn lane_of_clamps_off_road() {
        let r = Road::default();
        assert_eq!(r.lane_of(-100.0), 0);
        assert_eq!(r.lane_of(100.0), r.num_lanes - 1);
    }

    #[test]
    fn lane_offset_zero_at_center() {
        let r = Road::default();
        assert!(r.lane_offset(r.lane_center_y(1)).abs() < 1e-12);
        assert!((r.lane_offset(r.lane_center_y(1) + 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn on_road_respects_edges() {
        let r = Road::default();
        assert!(r.on_road(Vec2::new(10.0, 0.0)));
        assert!(!r.on_road(Vec2::new(10.0, 5.3)));
        assert!(!r.on_road(Vec2::new(-1.0, 0.0)));
        assert!(!r.on_road(Vec2::new(r.length + 1.0, 0.0)));
    }

    #[test]
    fn edge_distance_sign() {
        let r = Road::default();
        assert!(r.distance_to_nearest_edge(0.0) > 5.0);
        assert!(r.distance_to_nearest_edge(5.25) <= 1e-12);
        assert!(r.distance_to_nearest_edge(6.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_road_rejected() {
        let _ = Road::new(0, 3.5, 100.0);
    }
}
