//! Driving-agent enhancement (Section VI): adversarial training via
//! fine-tuning and Progressive Neural Networks behind a Simplex switcher.
//!
//! Both defenses continue SAC training of the end-to-end victim while a
//! (frozen) camera attacker perturbs its steering. Episodes sample an
//! attack budget from the Section VI-A grid; `rho` controls the share of
//! nominal (zero-budget) episodes:
//!
//! * fine-tuning (`pi_adv_rho`): updates the policy weights in place —
//!   effective under attack but subject to catastrophic forgetting;
//! * PNN (`pi_pnn_sigma`): trains a fresh lateral-connected column while
//!   the original weights stay frozen; at deployment a Simplex-style
//!   switcher picks the original policy for `epsilon <= sigma` and the
//!   hardened column otherwise (idealized budget-aware switcher, as in the
//!   paper).

use crate::budget::AttackBudget;
use crate::learned::LearnedAttacker;
use crate::sensor::AttackerSensor;
use drive_agents::driving_env::DrivingEnv;
use drive_agents::e2e::Policy;
use drive_agents::runner::SteerAttacker;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::pnn::{PnnInit, PnnPolicy};
use drive_nn::scratch::ActScratch;
use drive_rl::actor::Actor;
use drive_rl::env::Env;
use drive_rl::replay::{ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_seed::SeedTree;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::FeatureConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of adversarial training (both defenses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseTrainConfig {
    /// Share of nominal (zero-budget) episodes, `rho` (e.g. `1/11`, `1/2`).
    pub rho: f64,
    /// SAC environment steps.
    pub sac_steps: usize,
    /// Gradient updates happen every this many environment steps.
    pub update_every: usize,
    /// Hidden sizes for the fresh critics.
    pub hidden: Vec<usize>,
    /// Updates during which only the critics train (protects the
    /// pre-trained policy from fresh-critic gradients).
    pub actor_delay: usize,
    /// Evaluation episodes per checkpoint.
    pub eval_episodes: usize,
    /// Checkpoint / evaluation period in environment steps (0 disables
    /// selection and returns the final weights).
    pub eval_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for DefenseTrainConfig {
    fn default() -> Self {
        DefenseTrainConfig {
            rho: 1.0 / 11.0,
            sac_steps: 25_000,
            update_every: 2,
            hidden: vec![128, 128],
            actor_delay: 1500,
            eval_episodes: 3,
            eval_every: 5_000,
            seed: 0,
        }
    }
}

/// Samples a per-episode training budget: zero with probability `rho`,
/// otherwise uniform over `{0.1, ..., 1.0}` (Section VI-A).
pub fn sample_training_budget<R: Rng>(rho: f64, rng: &mut R) -> AttackBudget {
    if rng.gen::<f64>() < rho {
        AttackBudget::ZERO
    } else {
        let grid = AttackBudget::training_grid();
        // Skip the zero entry.
        grid[rng.gen_range(1..grid.len())]
    }
}

/// Runs adversarial SAC training of `actor` (any [`Actor`]) against the
/// given camera attack policy, returning the trained actor.
fn adversarial_train<A: Actor + Clone + Sync>(
    actor: A,
    attacker_policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &DefenseTrainConfig,
) -> A {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("finetune").seed());
    let sac_config = SacConfig {
        init_alpha: 0.01,
        actor_lr: 1e-4,
        actor_delay: config.actor_delay,
        batch_size: 128,
        ..SacConfig::default()
    };
    let mut sac = Sac::with_actor(actor, &config.hidden, sac_config, &mut rng);
    let mut env = DrivingEnv::new(scenario.clone(), features.clone());
    let mut buffer = ReplayBuffer::new(100_000, env.obs_dim(), env.action_dim());

    let mut episode_seed = config.seed.wrapping_mul(31337) + 1;
    let mut budget_rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("budget").seed());
    let arm_episode = |env: &mut DrivingEnv, seed: u64, rng: &mut StdRng| -> Vec<f32> {
        let budget = sample_training_budget(config.rho, rng);
        if budget.is_zero() {
            env.set_attack(None);
        } else {
            let mut attacker = LearnedAttacker::new(
                attacker_policy.clone(),
                AttackerSensor::camera(features.clone()),
                budget,
                seed,
                true,
            );
            let obs_world = drive_sim::world::World::new(scenario.clone());
            attacker.reset(&obs_world);
            env.set_attack(Some(Box::new(move |w| attacker.delta(w))));
        }
        env.reset(seed)
    };

    let mut best = sac.actor.clone();
    let mut best_score = eval_actor(&best, attacker_policy, scenario, features, config);

    let mut obs = arm_episode(&mut env, episode_seed, &mut budget_rng);
    for step in 0..config.sac_steps {
        let action = sac.act(&obs, &mut rng, false);
        let s = env.step(&action);
        buffer.push(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: s.reward,
            next_obs: s.obs.clone(),
            terminal: s.done,
        });
        let finished = s.finished();
        obs = s.obs;
        if finished {
            episode_seed += 1;
            obs = arm_episode(&mut env, episode_seed, &mut budget_rng);
        }
        if buffer.len() >= 1000 && step % config.update_every.max(1) == 0 {
            sac.update(&buffer, &mut rng);
        }
        if config.eval_every > 0 && (step + 1) % config.eval_every == 0 {
            let score = eval_actor(&sac.actor, attacker_policy, scenario, features, config);
            if score > best_score {
                best_score = score;
                best = sac.actor.clone();
            }
        }
    }
    if config.eval_every > 0 {
        best
    } else {
        sac.actor
    }
}

/// Checkpoint-selection metric: mean nominal driving return across the
/// evaluation budgets, weighted by the training mixture (the zero-budget
/// cell carries weight `rho`, the attacked cells share `1 - rho`).
fn eval_actor<A: Actor + Clone + Sync>(
    actor: &A,
    attacker_policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &DefenseTrainConfig,
) -> f64 {
    let eval_budgets = [0.0, 0.25, 0.5, 0.75, 1.0];
    // The budget cells are independent: each gets a fresh environment and
    // attacker, and the actor acts deterministically (its per-cell RNG is
    // never drawn), so evaluating them in parallel is output-identical to
    // the serial loop. `par_map` keeps the means budget-ordered.
    let means = drive_par::par_map(&eval_budgets, |_, &eps| {
        let mut rng =
            StdRng::seed_from_u64(SeedTree::root(config.seed).child("pnn-dataset").seed());
        let budget = AttackBudget::new(eps);
        let mut env = DrivingEnv::new(scenario.clone(), features.clone());
        let mut total = 0.0;
        for e in 0..config.eval_episodes {
            let seed = 40_000 + config.seed + e as u64;
            if budget.is_zero() {
                env.set_attack(None);
            } else {
                let mut attacker = LearnedAttacker::new(
                    attacker_policy.clone(),
                    AttackerSensor::camera(features.clone()),
                    budget,
                    seed,
                    true,
                );
                let world = drive_sim::world::World::new(scenario.clone());
                attacker.reset(&world);
                env.set_attack(Some(Box::new(move |w| attacker.delta(w))));
            }
            let mut obs = env.reset(seed);
            loop {
                let a = actor.act(&obs, &mut rng, true);
                let s = env.step(&a);
                total += s.reward as f64;
                let finished = s.finished();
                obs = s.obs;
                if finished {
                    break;
                }
            }
        }
        total / config.eval_episodes.max(1) as f64
    });
    let mut score = 0.0;
    for (&eps, mean) in eval_budgets.iter().zip(means) {
        let weight = if eps == 0.0 {
            config.rho
        } else {
            (1.0 - config.rho) / (eval_budgets.len() - 1) as f64
        };
        score += weight * mean;
    }
    score
}

/// Adversarial training via fine-tuning: returns `pi_adv_rho`, a copy of
/// the original policy whose weights were updated under attack.
pub fn adversarial_finetune(
    original: &GaussianPolicy,
    attacker_policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &DefenseTrainConfig,
) -> GaussianPolicy {
    adversarial_train(
        original.clone(),
        attacker_policy,
        scenario,
        features,
        config,
    )
}

/// PNN enhancement: freezes the original policy as column 1 and trains a
/// lateral-connected column 2 under attack. Returns the two-column policy;
/// pair it with a [`SimplexSwitcher`] for deployment.
pub fn train_pnn_defense(
    original: &GaussianPolicy,
    attacker_policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &DefenseTrainConfig,
) -> PnnPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("pnn-sac").seed());
    let pnn = PnnPolicy::new(original.clone(), PnnInit::CopyBase, &mut rng);
    adversarial_train(pnn, attacker_policy, scenario, features, config)
}

/// The Simplex-style switcher of Section VI-B: an idealized budget-aware
/// selector between the original column (small/no attack) and the hardened
/// column (large attack).
#[derive(Debug, Clone)]
pub struct SimplexSwitcher {
    pnn: PnnPolicy,
    /// Switching threshold `sigma`.
    pub sigma: f64,
    /// The attack budget the switcher believes is active (idealized
    /// knowledge, as the paper assumes; practical proxies are discussed in
    /// Section VI-B).
    pub epsilon: f64,
}

impl SimplexSwitcher {
    /// Wraps a trained PNN with threshold `sigma`, believing budget
    /// `epsilon` is active.
    pub fn new(pnn: PnnPolicy, sigma: f64, epsilon: f64) -> Self {
        SimplexSwitcher {
            pnn,
            sigma,
            epsilon,
        }
    }

    /// Whether the hardened column is active.
    pub fn uses_hardened_column(&self) -> bool {
        self.epsilon > self.sigma
    }

    /// The underlying PNN.
    pub fn pnn(&self) -> &PnnPolicy {
        &self.pnn
    }
}

impl Policy for SimplexSwitcher {
    fn obs_dim(&self) -> usize {
        self.pnn.obs_dim()
    }
    fn action_dim(&self) -> usize {
        self.pnn.action_dim()
    }
    fn action(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        if self.uses_hardened_column() {
            self.pnn.act(obs, rng, deterministic)
        } else {
            self.pnn.base().act(obs, rng, deterministic)
        }
    }
    fn action_into(
        &self,
        obs: &[f32],
        rng: &mut StdRng,
        deterministic: bool,
        scratch: &mut ActScratch,
        out: &mut Vec<f32>,
    ) {
        if self.uses_hardened_column() {
            // The PNN's lateral-connected forward has no scratch path yet.
            *out = self.pnn.act(obs, rng, deterministic);
        } else {
            out.clear();
            out.extend_from_slice(self.pnn.base().act_with(obs, rng, deterministic, scratch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sampler_respects_rho() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 4000;
        let zeros = (0..n)
            .filter(|_| sample_training_budget(0.5, &mut rng).is_zero())
            .count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
        // rho = 0 never yields zero budgets; all within (0, 1].
        for _ in 0..100 {
            let b = sample_training_budget(0.0, &mut rng);
            assert!(b.epsilon() > 0.05 && b.epsilon() <= 1.0);
        }
    }

    #[test]
    fn switcher_picks_columns_by_threshold() {
        let mut rng = StdRng::seed_from_u64(1);
        let dim = FeatureConfig::default().observation_dim();
        let base = GaussianPolicy::new(dim, &[16], 2, &mut rng);
        let pnn = PnnPolicy::new(base.clone(), PnnInit::Random, &mut rng);
        let obs = vec![0.1f32; dim];

        let low = SimplexSwitcher::new(pnn.clone(), 0.4, 0.2);
        assert!(!low.uses_hardened_column());
        let a_low = low.action(&obs, &mut StdRng::seed_from_u64(0), true);
        let a_base = base.act(&obs, &mut StdRng::seed_from_u64(0), true);
        assert_eq!(a_low, a_base, "below threshold the base column acts");

        let high = SimplexSwitcher::new(pnn.clone(), 0.4, 0.8);
        assert!(high.uses_hardened_column());
        let a_high = high.action(&obs, &mut StdRng::seed_from_u64(0), true);
        assert_ne!(a_high, a_base, "above threshold the hardened column acts");
    }

    #[test]
    fn short_finetune_runs_end_to_end() {
        // Smoke test with tiny budgets: exercises the attacked-episode
        // arming, the SAC loop, and returns a same-shaped policy.
        let mut rng = StdRng::seed_from_u64(2);
        let features = FeatureConfig::default();
        let dim = features.observation_dim();
        let original = GaussianPolicy::new(dim, &[16], 2, &mut rng);
        let attacker = GaussianPolicy::new(dim, &[16], 1, &mut rng);
        let config = DefenseTrainConfig {
            sac_steps: 1200,
            hidden: vec![16],
            ..DefenseTrainConfig::default()
        };
        let tuned = adversarial_finetune(
            &original,
            &attacker,
            &Scenario::default(),
            &features,
            &config,
        );
        assert_eq!(tuned.obs_dim(), dim);
        assert_eq!(tuned.action_dim(), 2);
    }

    #[test]
    fn short_pnn_training_keeps_base_frozen() {
        let mut rng = StdRng::seed_from_u64(3);
        let features = FeatureConfig::default();
        let dim = features.observation_dim();
        let original = GaussianPolicy::new(dim, &[16], 2, &mut rng);
        let attacker = GaussianPolicy::new(dim, &[16], 1, &mut rng);
        let config = DefenseTrainConfig {
            rho: 0.0,
            sac_steps: 1200,
            hidden: vec![16],
            ..DefenseTrainConfig::default()
        };
        let pnn = train_pnn_defense(
            &original,
            &attacker,
            &Scenario::default(),
            &features,
            &config,
        );
        // Column 1 must still be the original policy, bit for bit.
        let obs = drive_nn::mat::Mat::from_row(&vec![0.2f32; dim]);
        assert_eq!(pnn.base().mean_action(&obs), original.mean_action(&obs));
    }
}
