//! Regenerates the paper's fig5 report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("fig5");
}
