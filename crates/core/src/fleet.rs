//! Fleet evaluation: many attacked episodes stepped in lockstep with
//! batched policy inference.
//!
//! The serial harness spends most of an evaluated step inside two policy
//! forward passes (victim + attacker) at batch size 1. [`FleetEval`] runs
//! up to [`FleetPlan::batch`] episodes through one
//! [`WorldBatch`], gathering every live observation into a
//! staging matrix so each policy runs one GEMM per layer per control step
//! (`drive_nn::batch::BatchPolicy`). Slots that finish are retired
//! immediately and the batch is refilled from the remaining seed grid, so
//! occupancy stays high even though episodes end at different steps.
//!
//! Equivalence to the serial path is structural, not approximate:
//!
//! * the per-episode setup (scenario jitter, fresh feature extractor,
//!   fresh attacker sensor, reward shaper) mirrors
//!   `drive_agents::runner::run_episode_with_faults` exactly;
//! * deterministic batched inference is bit-identical to serial
//!   `act_with` (tested in `drive-nn` and `drive-serve`);
//! * under [`Precision::Golden`] the batch steps each world through the
//!   serial engine verbatim.
//!
//! So a Golden fleet cell produces byte-identical [`EpisodeRecord`]s to
//! the serial loop (tested below), while [`Precision::Fast`] trades
//! documented `f32` integration round-off for speed.

use crate::adv_reward::AdvReward;
use crate::budget::AttackBudget;
use crate::sensor::{AttackerSensor, SensorKind};
use drive_agents::behavior::BehaviorConfig;
use drive_agents::reward::{RewardConfig, RewardShaper};
use drive_nn::batch::BatchPolicy;
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::scratch::BatchActScratch;
use drive_sim::batch::{Precision, WorldBatch};
use drive_sim::record::{EpisodeRecord, ATTACK_START_THRESHOLD};
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor, ImuConfig};
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// How the fleet steps: lockstep slot capacity and numeric policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPlan {
    /// Maximum episodes in flight (observation matrix rows).
    pub batch: usize,
    /// Numeric policy of the underlying [`WorldBatch`].
    pub precision: Precision,
}

impl FleetPlan {
    /// A Golden (bit-exact) plan at the given batch size.
    pub fn golden(batch: usize) -> Self {
        FleetPlan {
            batch,
            precision: Precision::Golden,
        }
    }
}

impl Default for FleetPlan {
    fn default() -> Self {
        FleetPlan::golden(64)
    }
}

/// One victim/attacker evaluation cell, fleet-steppable.
///
/// Covers the plain-`GaussianPolicy` victims (the end-to-end agent and
/// its fine-tuned variants) with an optional learned camera/IMU attacker
/// — exactly the pairings of the Fig. 4 sweep. Simplex/PNN defenses and
/// the modular agent hold per-step branching state that does not batch;
/// they stay on the serial path.
#[derive(Debug, Clone)]
pub struct FleetEval<'a> {
    /// Frozen victim policy (60-d observation, 2-d actuation).
    pub victim: &'a GaussianPolicy,
    /// Victim feature-extractor configuration.
    pub features: FeatureConfig,
    /// Learned attacker policy and its sensor kind, if attacking.
    pub attack: Option<(&'a GaussianPolicy, SensorKind)>,
    /// IMU configuration (used when the attack sensor is [`SensorKind::Imu`]).
    pub imu: ImuConfig,
    /// Attack budget `epsilon` (zero disables the attacker, like the
    /// serial harness).
    pub budget: AttackBudget,
    /// Adversarial reward accumulated into each record.
    pub adv: AdvReward,
    /// Scenario template, jittered per episode seed.
    pub scenario: Scenario,
}

/// Per-slot episode state riding alongside the [`WorldBatch`], mirrored
/// through `compact` swap-removes.
struct Slot {
    episode: usize,
    extractor: FeatureExtractor,
    sensor: Option<AttackerSensor>,
    shaper: RewardShaper,
    record: EpisodeRecord,
    adv_return: f64,
    delta: f64,
}

impl<'a> FleetEval<'a> {
    fn spawn(&self, episode: usize, seed: u64) -> (World, Slot) {
        let scenario = {
            let mut rng = StdRng::seed_from_u64(seed);
            self.scenario.jittered(&mut rng)
        };
        let world = World::new(scenario);
        // Fresh extractor == `E2eAgent::reset`; building the sensor anew
        // and resetting it == `LearnedAttacker::{new, reset}` (the IMU
        // reset advances its noise stream — the serial runner resets once
        // at episode start, so the fleet must too).
        let extractor = FeatureExtractor::new(self.features.clone());
        let sensor = self.attack.and_then(|(_, kind)| {
            if self.budget.is_zero() {
                return None;
            }
            let mut s = match kind {
                SensorKind::Camera => AttackerSensor::camera(self.features.clone()),
                SensorKind::Imu => AttackerSensor::imu(self.imu.clone(), seed),
            };
            s.reset();
            Some(s)
        });
        let mut shaper = RewardShaper::new(
            RewardConfig::default(),
            BehaviorConfig::default(),
            world.scenario().road.lane_of(world.ego().pose.position.y),
        );
        shaper.reset(&world);
        let record = EpisodeRecord {
            dt: world.scenario().dt,
            ..EpisodeRecord::default()
        };
        (
            world,
            Slot {
                episode,
                extractor,
                sensor,
                shaper,
                record,
                adv_return: 0.0,
                delta: 0.0,
            },
        )
    }

    /// Runs `episodes` attacked episodes with seeds `base_seed..`,
    /// returning records in episode order — the same seed grid and record
    /// contents as the serial
    /// `attack_core::eval::run_attacked_episodes` loop.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches (same contracts as `E2eAgent::new`
    /// and `LearnedAttacker::new`) or a zero-slot plan.
    pub fn run(&self, episodes: usize, base_seed: u64, plan: FleetPlan) -> Vec<EpisodeRecord> {
        assert!(plan.batch > 0, "fleet needs at least one slot");
        assert_eq!(
            self.victim.obs_dim(),
            self.features.observation_dim(),
            "victim obs dim must match feature extractor"
        );
        assert_eq!(self.victim.action_dim(), 2, "driving actions are 2-D");
        let victim = BatchPolicy::new(Arc::new(self.victim.clone()));
        let attacker = self.attack.and_then(|(policy, kind)| {
            if self.budget.is_zero() {
                return None;
            }
            let sensor_dim = match kind {
                SensorKind::Camera => self.features.observation_dim(),
                SensorKind::Imu => self.imu.observation_dim(),
            };
            assert_eq!(
                policy.obs_dim(),
                sensor_dim,
                "attack policy obs dim must match its sensor"
            );
            assert_eq!(policy.action_dim(), 1, "attack action is 1-D");
            Some(BatchPolicy::new(Arc::new(policy.clone())))
        });

        let mut results: Vec<Option<EpisodeRecord>> = (0..episodes).map(|_| None).collect();
        let mut batch = WorldBatch::new(plan.precision);
        let mut slots: Vec<Slot> = Vec::new();
        let mut next = 0usize;
        let refill = |batch: &mut WorldBatch, slots: &mut Vec<Slot>, next: &mut usize| {
            while batch.len() < plan.batch && *next < episodes {
                let (world, slot) = self.spawn(*next, base_seed + *next as u64);
                batch.push(world);
                slots.push(slot);
                *next += 1;
            }
        };
        refill(&mut batch, &mut slots, &mut next);

        let mut victim_scratch = BatchActScratch::default();
        let mut attacker_scratch = BatchActScratch::default();
        let mut actions: Vec<Actuation> = Vec::new();
        let mut nominals: Vec<Actuation> = Vec::new();
        let mut outcomes = Vec::new();
        let mut obs_buf: Vec<f32> = Vec::new();
        while !batch.is_empty() {
            // Occupancy denominator: configured capacity per lockstep
            // iteration. The numerator (slots actually advanced) is
            // recorded by `WorldBatch::step` from its post-compaction
            // in-flight count, so a slot that retires and is refilled in
            // the same `compact` pass is counted exactly once.
            drive_sim::perf::record_fleet_capacity(plan.batch as u64);
            let n = batch.len();

            // Victim head: one staged forward pass over every live slot.
            let stage = victim.stage(n, &mut victim_scratch);
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.extractor
                    .observe_into(&batch.worlds()[i], &mut obs_buf);
                stage.row_mut(i).copy_from_slice(&obs_buf);
            }
            let t0 = Instant::now();
            let acts = victim.infer_staged(&mut victim_scratch);
            drive_sim::perf::record_fleet_infer(t0.elapsed().as_nanos() as u64, n as u64);
            nominals.clear();
            for i in 0..n {
                let row = acts.row(i);
                nominals.push(Actuation::new(row[0] as f64, row[1] as f64));
            }

            // Attacker head, when attacking: same shape, 1-D output
            // scaled by the budget (`LearnedAttacker::delta`).
            if let Some(abp) = &attacker {
                let stage = abp.stage(n, &mut attacker_scratch);
                for (i, slot) in slots.iter_mut().enumerate() {
                    let sensor = slot.sensor.as_mut().expect("attacking cell has sensors");
                    sensor.observe_into(&batch.worlds()[i], &mut obs_buf);
                    stage.row_mut(i).copy_from_slice(&obs_buf);
                }
                let t0 = Instant::now();
                let raw = abp.infer_staged(&mut attacker_scratch);
                drive_sim::perf::record_fleet_infer(t0.elapsed().as_nanos() as u64, n as u64);
                for (i, slot) in slots.iter_mut().enumerate() {
                    slot.delta = self.budget.scale(raw.get(i, 0) as f64);
                }
            } else {
                for slot in slots.iter_mut() {
                    slot.delta = 0.0;
                }
            }

            actions.clear();
            for (slot, nominal) in slots.iter().zip(&nominals) {
                actions.push(Actuation::new(nominal.steer + slot.delta, nominal.thrust));
            }
            batch.step(&actions, &mut outcomes);

            // Per-slot record bookkeeping, verbatim from the serial runner.
            for (i, slot) in slots.iter_mut().enumerate() {
                let world = &batch.worlds()[i];
                let outcome = &outcomes[i];
                let reward = slot.shaper.step(world, outcome);
                slot.record.steps += 1;
                slot.record.nominal_return += reward;
                slot.record.deviation.push(slot.shaper.last_deviation());
                slot.record.perturbation.push(slot.delta.abs());
                if slot.delta.abs() > ATTACK_START_THRESHOLD && slot.record.attack_start.is_none() {
                    slot.record.attack_start = Some(outcome.step);
                }
                slot.record.passed = outcome.passed;
                slot.record.collision = outcome.collision;
                slot.record.termination = outcome.termination;
                slot.adv_return += self.adv.step(world, outcome, slot.delta);
            }

            batch.compact(|dense, world| {
                let mut slot = slots.swap_remove(dense);
                slot.record.nonfinite_actions = world.nonfinite_action_count();
                slot.record.adv_return = slot.adv_return;
                results[slot.episode] = Some(slot.record);
            });
            refill(&mut batch, &mut slots, &mut next);
        }
        results
            .into_iter()
            .map(|r| r.expect("every episode terminates within max_steps"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_attacked_episodes;
    use crate::learned::LearnedAttacker;
    use drive_agents::e2e::E2eAgent;

    fn victim() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(41);
        GaussianPolicy::new(
            FeatureConfig::default().observation_dim(),
            &[32, 32],
            2,
            &mut rng,
        )
    }

    fn camera_attacker() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(43);
        GaussianPolicy::new(
            FeatureConfig::default().observation_dim(),
            &[32],
            1,
            &mut rng,
        )
    }

    fn imu_attacker() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(47);
        GaussianPolicy::new(ImuConfig::default().observation_dim(), &[32], 1, &mut rng)
    }

    fn serial_records(
        victim: &GaussianPolicy,
        attack: Option<(&GaussianPolicy, SensorKind)>,
        budget: AttackBudget,
        episodes: usize,
        base_seed: u64,
    ) -> Vec<EpisodeRecord> {
        let mut agent = E2eAgent::new(victim.clone(), FeatureConfig::default(), 0, true);
        run_attacked_episodes(
            &mut agent,
            |seed| {
                attack.and_then(|(policy, kind)| {
                    if budget.is_zero() {
                        return None;
                    }
                    let sensor = match kind {
                        SensorKind::Camera => AttackerSensor::camera(FeatureConfig::default()),
                        SensorKind::Imu => AttackerSensor::imu(ImuConfig::default(), seed),
                    };
                    Some(LearnedAttacker::new(
                        policy.clone(),
                        sensor,
                        budget,
                        seed,
                        true,
                    ))
                })
            },
            &AdvReward::default(),
            &Scenario::default(),
            episodes,
            base_seed,
        )
    }

    fn fleet_eval<'a>(
        victim: &'a GaussianPolicy,
        attack: Option<(&'a GaussianPolicy, SensorKind)>,
        budget: AttackBudget,
    ) -> FleetEval<'a> {
        FleetEval {
            victim,
            features: FeatureConfig::default(),
            attack,
            imu: ImuConfig::default(),
            budget,
            adv: AdvReward::default(),
            scenario: Scenario::default(),
        }
    }

    /// The Golden fleet must reproduce the serial episode loop
    /// BYTE-FOR-BYTE: full `EpisodeRecord` equality across batch sizes,
    /// nominal and attacked, camera and IMU, including batch sizes that
    /// force slot refill mid-run.
    #[test]
    fn golden_fleet_matches_serial_records_exactly() {
        let v = victim();
        let cam = camera_attacker();
        let imu = imu_attacker();
        let cases: Vec<(Option<(&GaussianPolicy, SensorKind)>, AttackBudget)> = vec![
            (None, AttackBudget::ZERO),
            (Some((&cam, SensorKind::Camera)), AttackBudget::new(1.0)),
            (Some((&cam, SensorKind::Camera)), AttackBudget::ZERO),
            (Some((&imu, SensorKind::Imu)), AttackBudget::new(0.5)),
        ];
        for (attack, budget) in cases {
            let serial = serial_records(&v, attack, budget, 5, 9_000);
            for batch in [1usize, 2, 8] {
                let fleet = fleet_eval(&v, attack, budget).run(5, 9_000, FleetPlan::golden(batch));
                assert_eq!(
                    fleet, serial,
                    "fleet(batch={batch}) diverged from serial (budget {budget})"
                );
            }
        }
    }

    /// Fast (`f32`) fleet: per-step actions stay close to Golden while
    /// both paths run, and the cell-level summary metrics agree within a
    /// documented epsilon. This is the accuracy contract for opting eval
    /// sweeps into `--precision f32`.
    #[test]
    fn fast_fleet_bounded_divergence_from_golden() {
        const STEP_DELTA_TOL: f64 = 2e-2; // per-step |perturbation| gap
        const RETURN_TOL: f64 = 0.05; // relative, mean nominal return
        let v = victim();
        let cam = camera_attacker();
        let eval = fleet_eval(
            &v,
            Some((&cam, SensorKind::Camera)),
            AttackBudget::new(0.75),
        );
        let golden = eval.run(6, 1_700, FleetPlan::golden(4));
        let fast = eval.run(
            6,
            1_700,
            FleetPlan {
                batch: 4,
                precision: Precision::Fast,
            },
        );
        for (g, f) in golden.iter().zip(&fast) {
            // While both episodes are live the injected perturbations must
            // track each other step by step.
            for (dg, df) in g.perturbation.iter().zip(&f.perturbation) {
                assert!(
                    (dg - df).abs() < STEP_DELTA_TOL,
                    "per-step attack delta diverged: {dg} vs {df}"
                );
            }
        }
        let mean = |rs: &[EpisodeRecord]| {
            rs.iter().map(|r| r.nominal_return).sum::<f64>() / rs.len() as f64
        };
        let (mg, mf) = (mean(&golden), mean(&fast));
        assert!(
            (mg - mf).abs() <= RETURN_TOL * mg.abs().max(1.0),
            "mean nominal return diverged: golden {mg} vs fast {mf}"
        );
        let steps = |rs: &[EpisodeRecord]| rs.iter().map(|r| r.steps).sum::<usize>();
        let (sg, sf) = (steps(&golden) as f64, steps(&fast) as f64);
        assert!(
            (sg - sf).abs() <= 0.05 * sg,
            "episode lengths diverged: golden {sg} vs fast {sf}"
        );
    }

    /// The fleet feeds the process-wide perf counters.
    #[test]
    fn fleet_run_records_perf_counters() {
        let t0 = drive_sim::perf::fleet();
        let v = victim();
        let _ = fleet_eval(&v, None, AttackBudget::ZERO).run(2, 50, FleetPlan::golden(2));
        let d = drive_sim::perf::fleet().since(&t0);
        assert!(d.batches > 0, "WorldBatch::step must record batches");
        assert!(d.capacity >= d.batches, "capacity recorded per iteration");
        assert!(d.infer_rows > 0 && d.infer_ns > 0, "inference timed");
    }
}
