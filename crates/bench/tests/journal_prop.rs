//! Property tests of the run journal's write-ahead log: recovery from any
//! truncation point (a SIGKILL mid-append) and from arbitrary single-byte
//! corruption must yield exactly the longest intact record prefix — and
//! never panic.

use proptest::prelude::*;
use repro_bench::journal::{encode_frame, scan_frames, JournalHandle, RunHeader, MAGIC};
use std::path::PathBuf;

/// Deterministic synthetic payloads, shaped like real journal records.
fn payloads(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| format!("cell {i:016x} {:016x} {} fig5/agent-{i}", i * 31 + 7, 4 + i))
        .collect()
}

/// A WAL body (no magic) of `count` frames, plus each frame's end offset.
fn body_with_offsets(count: usize) -> (Vec<u8>, Vec<usize>) {
    let mut body = Vec::new();
    let mut ends = Vec::new();
    for p in payloads(count) {
        body.extend_from_slice(&encode_frame(&p));
        ends.push(body.len());
    }
    (body, ends)
}

fn temp(name: &str, tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{name}-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn header() -> RunHeader {
    RunHeader {
        seed: 10_000,
        config_hash: 0x1234_5678_9abc_def0,
        box_episodes: 4,
        scatter_rounds: 2,
    }
}

proptest! {
    /// Truncating the WAL at ANY byte recovers exactly the frames that fit
    /// completely within the cut, and the reported valid length is stable
    /// (re-scanning the valid prefix reproduces the same records).
    #[test]
    fn truncation_recovers_the_longest_full_prefix(n in any::<u8>(), cut in any::<u16>()) {
        let count = 1 + (n % 8) as usize;
        let (body, ends) = body_with_offsets(count);
        let cut = (cut as usize) % (body.len() + 1);
        let (records, valid_len) = scan_frames(&body[..cut]);
        let expected = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(records.len(), expected);
        prop_assert_eq!(&records[..], &payloads(count)[..expected]);
        prop_assert!(valid_len <= cut);
        let (again, len_again) = scan_frames(&body[..valid_len]);
        prop_assert_eq!(again, records);
        prop_assert_eq!(len_again, valid_len);
    }

    /// Flipping ANY single byte never panics and never yields anything but
    /// a prefix of the original records; every frame that ends before the
    /// flipped byte survives.
    #[test]
    fn corruption_yields_an_intact_prefix(n in any::<u8>(), idx in any::<u16>()) {
        let count = 1 + (n % 8) as usize;
        let (mut body, ends) = body_with_offsets(count);
        let idx = (idx as usize) % body.len();
        body[idx] ^= 0x5a;
        let (records, _) = scan_frames(&body);
        let all = payloads(count);
        let intact = ends.iter().filter(|&&e| e <= idx).count();
        // The scan stops at (or possibly after, if the flip hits a frame
        // whose checksum happens to still match — impossible for FNV over
        // a changed byte, so exactly at) the corrupted frame.
        prop_assert_eq!(&records[..], &all[..intact]);
    }

    /// End-to-end: kill a journal at an arbitrary byte, resume it, append,
    /// and resume again — the journal always comes back with the intact
    /// prefix plus the post-recovery append.
    #[test]
    fn append_after_recovery_survives_the_next_resume(n in any::<u8>(), cut in any::<u16>()) {
        let count = 1 + (n % 4) as usize;
        let tag = (n as u64) << 16 | cut as u64;
        let dir = temp("repro-bench-journal-prop", tag);
        let journal = JournalHandle::create(&dir, header()).unwrap();
        let records: Vec<_> = (0..count)
            .map(|i| drive_sim::record::EpisodeRecord {
                steps: i,
                dt: 0.1,
                ..Default::default()
            })
            .collect();
        for (i, _) in records.iter().enumerate() {
            journal.store_cell(i as u64, &format!("cell-{i}"), count, &records).unwrap();
        }
        drop(journal);

        // Kill: truncate the WAL anywhere past the magic + header frame
        // (cutting into the header is a hard Corrupt error by design,
        // covered by the unit tests).
        let wal = dir.join("wal.bin");
        let bytes = std::fs::read(&wal).unwrap();
        let h = header();
        let header_line = format!(
            "run {:016x} {:016x} {} {}",
            h.seed, h.config_hash, h.box_episodes, h.scatter_rounds
        );
        let min = MAGIC.len() + encode_frame(&header_line).len();
        let cut = min + (cut as usize) % (bytes.len() - min + 1);
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        let journal = JournalHandle::resume(&dir, header()).unwrap();
        let recovered = journal.cell_count();
        prop_assert!(recovered <= count);
        journal.store_cell(0xffff, "post-recovery", count, &records).unwrap();
        drop(journal);
        let journal = JournalHandle::resume(&dir, header()).unwrap();
        prop_assert_eq!(journal.cell_count(), recovered + 1);
        prop_assert!(journal.load_cell(0xffff, count).is_some());
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
