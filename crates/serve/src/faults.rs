//! Seeded fault injection for the serving layer.
//!
//! Three failure classes, mirroring what takes down real inference
//! services, all generated deterministically from one seed so a faulted
//! run can be replayed bit-for-bit:
//!
//! * **Worker kills** — the worker thread dies mid-service (a panic in
//!   our model); the supervisor must respawn it and no in-flight request
//!   may be lost.
//! * **Worker stalls** — the worker freezes for a while (GC pause, page
//!   fault storm); queued requests age toward their deadlines.
//! * **Observation corruption** — request payloads are damaged mid-flight,
//!   reusing [`drive_sim::faults`]' NaN-poisoning injector; the detector
//!   rung must notice and the ladder must degrade rather than serve
//!   garbage actions.

use drive_seed::SeedTree;
use drive_sim::faults::{FaultInjector, FaultSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rates and shapes of injected serving faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Worker-kill events over the horizon.
    pub kills: u32,
    /// Worker-stall events over the horizon.
    pub stalls: u32,
    /// Duration of each stall, µs.
    pub stall_us: u64,
    /// Per-element probability that a request's observation is
    /// NaN-poisoned while a corruption burst is active (see
    /// [`FaultSchedule::poisoned`]).
    pub corrupt_rate: f64,
}

impl FaultPlanConfig {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlanConfig {
            kills: 0,
            stalls: 0,
            stall_us: 0,
            corrupt_rate: 0.0,
        }
    }
}

/// One scheduled fault against a specific worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Die before serving the batch picked up at/after `at_us`.
    Kill {
        /// Trigger time, µs.
        at_us: u64,
    },
    /// Freeze for `dur_us` before serving.
    Stall {
        /// Trigger time, µs.
        at_us: u64,
        /// Stall length, µs.
        dur_us: u64,
    },
}

impl WorkerFault {
    fn at_us(&self) -> u64 {
        match self {
            WorkerFault::Kill { at_us } | WorkerFault::Stall { at_us, .. } => *at_us,
        }
    }
}

/// The full seeded plan: per-worker fault timelines plus an observation
/// corruption schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// `per_worker[w]` holds worker `w`'s faults sorted by trigger time.
    pub per_worker: Vec<Vec<WorkerFault>>,
    /// Observation-corruption schedule (drive-sim's injector handles the
    /// burst timing and per-element rolls).
    pub corruption: FaultSchedule,
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn none(workers: usize) -> Self {
        FaultPlan {
            per_worker: vec![Vec::new(); workers],
            corruption: FaultSchedule::none(),
        }
    }

    /// Generates a plan for `workers` workers over `horizon_us` from a
    /// seed. Deterministic: same `(seed, workers, horizon, config)` means
    /// the same plan, byte for byte.
    pub fn seeded(seed: u64, workers: usize, horizon_us: u64, config: &FaultPlanConfig) -> Self {
        let tree = SeedTree::root(seed).child("serve-faults");
        let mut rng = StdRng::seed_from_u64(tree.child("events").seed());
        let mut per_worker = vec![Vec::new(); workers.max(1)];
        // Events land in the middle 80% of the horizon so startup and
        // drain stay clean.
        let lo = horizon_us / 10;
        let hi = horizon_us.saturating_sub(horizon_us / 10).max(lo + 1);
        for _ in 0..config.kills {
            let at_us = rng.gen_range(lo..hi);
            let w = rng.gen_range(0..per_worker.len());
            per_worker[w].push(WorkerFault::Kill { at_us });
        }
        for _ in 0..config.stalls {
            let at_us = rng.gen_range(lo..hi);
            let w = rng.gen_range(0..per_worker.len());
            per_worker[w].push(WorkerFault::Stall {
                at_us,
                dur_us: config.stall_us,
            });
        }
        for faults in &mut per_worker {
            faults.sort_by_key(WorkerFault::at_us);
        }
        let corruption = if config.corrupt_rate > 0.0 {
            FaultSchedule::poisoned(config.corrupt_rate, tree.child("corrupt").seed())
        } else {
            FaultSchedule::none()
        };
        FaultPlan {
            per_worker,
            corruption,
        }
    }

    /// A cursor over worker `w`'s timeline (fresh — starts at the first
    /// fault).
    pub fn cursor(&self, worker: usize) -> FaultCursor {
        FaultCursor {
            faults: self.per_worker.get(worker).cloned().unwrap_or_default(),
            next: 0,
        }
    }

    /// An observation-corruption injector for this plan (the caller keys
    /// it by a stream/episode id so parallel workers decorrelate).
    pub fn corruption_injector(&self, stream: u64) -> FaultInjector {
        FaultInjector::for_episode(&self.corruption, stream)
    }

    /// Total scheduled worker faults.
    pub fn worker_fault_count(&self) -> usize {
        self.per_worker.iter().map(Vec::len).sum()
    }
}

/// Consumes one worker's fault timeline in time order.
#[derive(Debug, Clone)]
pub struct FaultCursor {
    faults: Vec<WorkerFault>,
    next: usize,
}

impl FaultCursor {
    /// Pops the next fault if its trigger time has passed.
    pub fn due(&mut self, now_us: u64) -> Option<WorkerFault> {
        let f = *self.faults.get(self.next)?;
        if f.at_us() <= now_us {
            self.next += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Faults not yet delivered.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_sorted() {
        let cfg = FaultPlanConfig {
            kills: 3,
            stalls: 4,
            stall_us: 5_000,
            corrupt_rate: 0.3,
        };
        let a = FaultPlan::seeded(42, 3, 1_000_000, &cfg);
        let b = FaultPlan::seeded(42, 3, 1_000_000, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.worker_fault_count(), 7);
        for worker in &a.per_worker {
            for pair in worker.windows(2) {
                assert!(pair[0].at_us() <= pair[1].at_us(), "sorted per worker");
            }
        }
        let c = FaultPlan::seeded(43, 3, 1_000_000, &cfg);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn events_avoid_the_horizon_edges() {
        let cfg = FaultPlanConfig {
            kills: 20,
            stalls: 20,
            stall_us: 100,
            corrupt_rate: 0.0,
        };
        let plan = FaultPlan::seeded(7, 2, 1_000_000, &cfg);
        for worker in &plan.per_worker {
            for f in worker {
                assert!((100_000..900_000).contains(&f.at_us()), "{f:?}");
            }
        }
        assert!(plan.corruption.is_noop());
    }

    #[test]
    fn cursor_delivers_in_order_once() {
        let plan = FaultPlan {
            per_worker: vec![vec![
                WorkerFault::Kill { at_us: 100 },
                WorkerFault::Stall {
                    at_us: 300,
                    dur_us: 50,
                },
            ]],
            corruption: FaultSchedule::none(),
        };
        let mut cur = plan.cursor(0);
        assert_eq!(cur.due(50), None);
        assert_eq!(cur.due(150), Some(WorkerFault::Kill { at_us: 100 }));
        assert_eq!(cur.due(150), None, "not due yet");
        assert_eq!(
            cur.due(1_000),
            Some(WorkerFault::Stall {
                at_us: 300,
                dur_us: 50
            })
        );
        assert_eq!(cur.remaining(), 0);
        // Out-of-range worker index yields an empty cursor.
        assert_eq!(plan.cursor(9).due(u64::MAX), None);
    }

    #[test]
    fn none_plan_never_fires() {
        let plan = FaultPlan::none(4);
        assert_eq!(plan.worker_fault_count(), 0);
        assert!(plan.corruption.is_noop());
        let mut inj = plan.corruption_injector(0);
        inj.begin_step();
        let mut obs = vec![1.0f32; 8];
        inj.corrupt_observation(&mut obs);
        assert!(obs.iter().all(|v| *v == 1.0));
    }
}
