//! Multi-layer perceptron with explicit forward caches and backprop.

use crate::activation::Activation;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::scratch::Scratch;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network: alternating [`Linear`] layers and activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    acts: Vec<Activation>,
}

/// Forward-pass intermediates needed by [`Mlp::backward`].
///
/// `post[i]` is the post-activation output of layer `i`; `post.last()` is the
/// network output. The original input is kept separately.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    input: Mat,
    post: Vec<Mat>,
}

impl MlpCache {
    /// The network output this cache corresponds to.
    pub fn output(&self) -> &Mat {
        self.post.last().expect("cache has at least one layer")
    }

    /// Post-activation hidden states, one per layer (last entry = output).
    pub fn hidden(&self) -> &[Mat] {
        &self.post
    }

    /// The input that produced this cache.
    pub fn input(&self) -> &Mat {
        &self.input
    }
}

impl Mlp {
    /// Builds an MLP from layer sizes, e.g. `[obs, 128, 128, out]`.
    ///
    /// Hidden layers use `hidden_act`; the final layer uses `out_act`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng>(
        sizes: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let n = sizes.len() - 1;
        let layers = (0..n)
            .map(|i| Linear::new(sizes[i], sizes[i + 1], rng))
            .collect();
        let acts = (0..n)
            .map(|i| if i + 1 == n { out_act } else { hidden_act })
            .collect();
        Mlp { layers, acts }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Read access to the layers (used by PNN lateral connections).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable access to the layers.
    ///
    /// Prefer [`Mlp::visit_params`] for optimization; this exists for weight
    /// surgery (checkpoint loading, tests, PNN column grafts).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Activation of layer `i`.
    pub fn activation(&self, i: usize) -> Activation {
        self.acts[i]
    }

    /// Forward pass without keeping intermediates (inference).
    ///
    /// Non-finite input entries (a poisoned sensor, an upstream NaN) are
    /// zeroed before the first layer so they cannot propagate; healthy
    /// inputs pass through bit-identically.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut s = Scratch::default();
        self.forward_with(x, &mut s).clone()
    }

    /// Forward pass through reusable ping-pong buffers — the
    /// allocation-free core of [`Mlp::forward`]. Returns a reference into
    /// the scratch holding the network output; repeated calls with the
    /// same scratch allocate nothing once the buffers have warmed up.
    ///
    /// Applies the same non-finite input guard as [`Mlp::forward`] and
    /// computes bit-identical outputs.
    pub fn forward_with<'s>(&self, x: &Mat, s: &'s mut Scratch) -> &'s Mat {
        let Scratch { a, b } = s;
        a.copy_from(x);
        a.sanitize_nonfinite();
        let mut cur_is_a = true;
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let (src, dst) = if cur_is_a {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            layer.forward_into(src, dst);
            act.apply_inplace(dst);
            cur_is_a = !cur_is_a;
        }
        if cur_is_a {
            a
        } else {
            b
        }
    }

    /// Packs every layer's transposed weights once, for
    /// [`Mlp::forward_prepacked_with`]. The packs are a pure layout cache:
    /// they must be rebuilt if the weights change, so hold them only while
    /// the network is frozen (inference).
    pub fn pack_weights(&self) -> Vec<Mat> {
        self.layers
            .iter()
            .map(|l| {
                let mut t = Mat::default();
                l.w.transpose_into(&mut t);
                t
            })
            .collect()
    }

    /// [`Mlp::forward_with`] against pre-packed transposed weights from
    /// [`Mlp::pack_weights`] — skips the per-call weight transpose that
    /// dominates wide-batch inference. The input is sanitized in place
    /// (callers own the staged matrix on this path) and outputs are
    /// bit-identical to [`Mlp::forward_with`].
    ///
    /// # Panics
    ///
    /// Panics if `packs` does not match the layer count.
    pub fn forward_prepacked_with<'s>(
        &self,
        packs: &[Mat],
        x: &mut Mat,
        s: &'s mut Scratch,
    ) -> &'s Mat {
        assert_eq!(packs.len(), self.layers.len(), "pack count");
        x.sanitize_nonfinite();
        let Scratch { a, b } = s;
        // Layer 0 reads the caller's staged input; later layers ping-pong
        // between the scratch pair. `out_in_b` tracks where the most
        // recent output landed.
        let mut out_in_b = false;
        for (i, (layer, act)) in self.layers.iter().zip(&self.acts).enumerate() {
            let (src, dst) = if i == 0 {
                (&*x, &mut *b)
            } else if out_in_b {
                (&*b, &mut *a)
            } else {
                (&*a, &mut *b)
            };
            layer.forward_prepacked_into(src, &packs[i], dst);
            act.apply_inplace(dst);
            out_in_b = i == 0 || !out_in_b;
        }
        if out_in_b {
            b
        } else {
            a
        }
    }

    /// Forward pass that records intermediates for [`Mlp::backward`].
    ///
    /// Applies the same non-finite input guard as [`Mlp::forward`]; the
    /// cache stores the sanitized input so backward sees consistent data.
    pub fn forward_cached(&self, x: &Mat) -> MlpCache {
        let mut cache = MlpCache::default();
        self.forward_cached_into(x, &mut cache);
        cache
    }

    /// [`Mlp::forward_cached`] into a reusable cache — allocation-free once
    /// the cache's buffers have warmed up, bit-identical outputs.
    pub fn forward_cached_into(&self, x: &Mat, cache: &mut MlpCache) {
        cache.input.copy_from(x);
        cache.input.sanitize_nonfinite();
        cache.post.resize_with(self.layers.len(), Mat::default);
        for (i, (layer, act)) in self.layers.iter().zip(&self.acts).enumerate() {
            // Split so the source (input or post[i-1]) and destination
            // post[i] can be borrowed at once.
            let (done, rest) = cache.post.split_at_mut(i);
            let src = if i == 0 { &cache.input } else { &done[i - 1] };
            let h = &mut rest[0];
            layer.forward_into(src, h);
            act.apply_inplace(h);
        }
    }

    /// Backward pass from `grad_out` (gradient of the loss w.r.t. the
    /// network output). Accumulates parameter gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match this network's depth.
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &Mat) -> Mat {
        let mut s = Scratch::default();
        self.backward_with(cache, grad_out, &mut s).clone()
    }

    /// Backward pass through reusable ping-pong buffers — the
    /// allocation-free core of [`Mlp::backward`]. Parameter gradients
    /// accumulate exactly as in [`Mlp::backward`]; the returned reference
    /// points into the scratch and holds the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match this network's depth.
    pub fn backward_with<'s>(
        &mut self,
        cache: &MlpCache,
        grad_out: &Mat,
        s: &'s mut Scratch,
    ) -> &'s Mat {
        assert_eq!(
            cache.post.len(),
            self.layers.len(),
            "cache/network depth mismatch"
        );
        let Scratch { a, b } = s;
        a.copy_from(grad_out);
        // A single NaN in the output gradient would poison every parameter
        // gradient below it; zeroing the entry just skips that sample's
        // contribution.
        a.sanitize_nonfinite();
        let mut cur_is_a = true;
        for i in (0..self.layers.len()).rev() {
            let (g, next) = if cur_is_a {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            self.acts[i].backward_inplace(&cache.post[i], g);
            let input = if i == 0 {
                &cache.input
            } else {
                &cache.post[i - 1]
            };
            self.layers[i].backward_into(input, g, next);
            cur_is_a = !cur_is_a;
        }
        if cur_is_a {
            a
        } else {
            b
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Visits every `(params, grads)` slice in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Copies all parameters from a same-shaped network.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.copy_params_from(b);
        }
    }

    /// Polyak-averages all parameters towards `other`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn polyak_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.polyak_from(b, tau);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Mlp {
        let mut rng = StdRng::seed_from_u64(11);
        Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Identity, &mut rng)
    }

    #[test]
    fn shapes_and_dims() {
        let n = net();
        assert_eq!(n.in_dim(), 4);
        assert_eq!(n.out_dim(), 3);
        assert_eq!(n.num_layers(), 2);
        assert_eq!(n.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        let x = Mat::zeros(5, 4);
        assert_eq!((n.forward(&x).rows(), n.forward(&x).cols()), (5, 3));
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Mat::from_vec(3, 4, (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let cache = n.forward_cached(&x);
        assert_eq!(cache.output(), &n.forward(&x));
        assert_eq!(cache.hidden().len(), 2);
        assert_eq!(cache.input(), &x);
    }

    #[test]
    fn full_backward_matches_finite_differences() {
        let mut n = net();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Mat::from_vec(2, 4, (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let cache = n.forward_cached(&x);
        let grad_out = Mat::from_vec(2, 3, vec![1.0; 6]); // loss = sum(outputs)
        n.zero_grad();
        let grad_in = n.backward(&cache, &grad_out);

        let loss = |n: &Mlp, x: &Mat| n.forward(x).data().iter().sum::<f32>();
        let eps = 1e-2f32;

        // Input gradients.
        for c in 0..4 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let up = loss(&n, &xp);
            xp.set(0, c, x.get(0, c) - eps);
            let down = loss(&n, &xp);
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad_in.get(0, c)).abs() < 0.05,
                "dX[0,{c}] fd {fd} vs {}",
                grad_in.get(0, c)
            );
        }

        // A few weight gradients in both layers.
        for layer_idx in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 1)] {
                let mut np = n.clone();
                let v = np.layers[layer_idx].w.get(r, c);
                np.layers[layer_idx].w.set(r, c, v + eps);
                let up = loss(&np, &x);
                np.layers[layer_idx].w.set(r, c, v - eps);
                let down = loss(&np, &x);
                let fd = (up - down) / (2.0 * eps);
                let got = n.layers[layer_idx].grad_w.get(r, c);
                assert!(
                    (fd - got).abs() < 0.05,
                    "layer {layer_idx} dW[{r},{c}] fd {fd} vs {got}"
                );
            }
        }
    }

    #[test]
    fn copy_and_polyak() {
        let mut a = net();
        let mut rng = StdRng::seed_from_u64(77);
        let b = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Identity, &mut rng);
        a.copy_params_from(&b);
        let x = Mat::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(a.forward(&x), b.forward(&x));

        let mut c = net();
        c.polyak_from(&b, 1.0);
        assert_eq!(c.forward(&x), b.forward(&x));
    }

    #[test]
    fn visit_params_count() {
        let mut n = net();
        let mut total = 0;
        n.visit_params(&mut |p, _| total += p.len());
        assert_eq!(total, n.param_count());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_sizes_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&[3], Activation::Relu, Activation::Identity, &mut rng);
    }

    #[test]
    fn scratch_forward_and_backward_match_allocating_paths() {
        use crate::scratch::Scratch;
        let n = net();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Scratch::default();
        // Reuse one scratch across calls with different batch sizes: every
        // call must still match the allocating path bit-for-bit.
        for batch in [1usize, 4, 2] {
            let x = Mat::from_vec(
                batch,
                4,
                (0..batch * 4).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            assert_eq!(n.forward_with(&x, &mut s), &n.forward(&x));
        }

        let mut a = net();
        let mut b = net();
        let x = Mat::from_vec(2, 4, (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        let cache = a.forward_cached(&x);
        let grad_out = Mat::from_vec(2, 3, vec![0.5; 6]);
        a.zero_grad();
        b.zero_grad();
        let gi_alloc = a.backward(&cache, &grad_out);
        let gi_scratch = b.backward_with(&cache, &grad_out, &mut s).clone();
        assert_eq!(gi_alloc, gi_scratch);
        assert_eq!(a, b, "accumulated gradients must match exactly");
    }

    #[test]
    fn forward_survives_nan_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Identity, &mut rng);
        let poisoned = Mat::from_row(&[f32::NAN, 0.5, f32::INFINITY]);
        let out = mlp.forward(&poisoned);
        assert!(out.data().iter().all(|v| v.is_finite()));
        // The guard zeroes poisoned entries, so the output matches the
        // zero-substituted input exactly.
        let clean = Mat::from_row(&[0.0, 0.5, 0.0]);
        assert_eq!(out, mlp.forward(&clean));
    }

    #[test]
    fn backward_survives_nan_gradient() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Mat::from_row(&[0.3, -0.7]);
        let cache = mlp.forward_cached(&x);
        let bad_grad = Mat::from_row(&[f32::NAN]);
        let gin = mlp.backward(&cache, &bad_grad);
        assert!(gin.data().iter().all(|v| v.is_finite()));
        let mut all_finite = true;
        mlp.visit_params(&mut |_, grads| {
            all_finite &= grads.iter().all(|g| g.is_finite());
        });
        assert!(all_finite, "parameter gradients stayed finite");
    }
}
