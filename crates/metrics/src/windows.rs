//! Attack-effort windowing for Fig. 8.
//!
//! The paper bins the Fig. 5/7 scatter points along the attack-effort axis
//! with width 0.2 from 0.0 to 0.8+, and reports the attack success rate per
//! bin and agent.

use crate::episode::ScatterPoint;
use serde::{Deserialize, Serialize};

/// One effort window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffortWindow {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (`f64::INFINITY` for the final `0.8+` bin).
    pub hi: f64,
    /// Attack success rate within the window (`NaN`-free: 0 when empty).
    pub success_rate: f64,
    /// Points that fell in the window.
    pub count: usize,
}

impl EffortWindow {
    /// Label in the paper's style: `"0.0-0.2"` or `"0.8+"`.
    pub fn label(&self) -> String {
        if self.hi.is_infinite() {
            format!("{:.1}+", self.lo)
        } else {
            format!("{:.1}-{:.1}", self.lo, self.hi)
        }
    }
}

/// Bins points into windows of `width` from 0 up to `open_end`, with a
/// final open `open_end+` window, and computes per-window success rates.
///
/// # Panics
///
/// Panics if `width <= 0` or `open_end <= 0`.
pub fn effort_windows(points: &[ScatterPoint], width: f64, open_end: f64) -> Vec<EffortWindow> {
    assert!(
        width > 0.0 && open_end > 0.0,
        "window parameters must be positive"
    );
    let bins = (open_end / width).round() as usize;
    let mut windows: Vec<EffortWindow> = (0..bins)
        .map(|i| EffortWindow {
            lo: i as f64 * width,
            hi: (i + 1) as f64 * width,
            success_rate: 0.0,
            count: 0,
        })
        .chain(std::iter::once(EffortWindow {
            lo: open_end,
            hi: f64::INFINITY,
            success_rate: 0.0,
            count: 0,
        }))
        .collect();
    let mut successes = vec![0usize; windows.len()];
    for p in points {
        let idx = if p.effort >= open_end {
            windows.len() - 1
        } else {
            ((p.effort / width).floor() as usize).min(windows.len() - 2)
        };
        windows[idx].count += 1;
        if p.success {
            successes[idx] += 1;
        }
    }
    for (w, s) in windows.iter_mut().zip(successes) {
        if w.count > 0 {
            w.success_rate = s as f64 / w.count as f64;
        }
    }
    windows
}

/// The paper's exact Fig. 8 binning: width 0.2, bins to 0.8, then `0.8+`.
pub fn fig8_windows(points: &[ScatterPoint]) -> Vec<EffortWindow> {
    effort_windows(points, 0.2, 0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(effort: f64, success: bool) -> ScatterPoint {
        ScatterPoint {
            effort,
            deviation_rmse: 0.0,
            success,
        }
    }

    #[test]
    fn fig8_binning_layout() {
        let ws = fig8_windows(&[]);
        assert_eq!(ws.len(), 5);
        assert_eq!(ws[0].label(), "0.0-0.2");
        assert_eq!(ws[3].label(), "0.6-0.8");
        assert_eq!(ws[4].label(), "0.8+");
    }

    #[test]
    fn points_land_in_right_bins() {
        let ws = fig8_windows(&[
            pt(0.05, false),
            pt(0.25, true),
            pt(0.25, false),
            pt(0.9, true),
            pt(3.0, true),
        ]);
        assert_eq!(ws[0].count, 1);
        assert_eq!(ws[0].success_rate, 0.0);
        assert_eq!(ws[1].count, 2);
        assert_eq!(ws[1].success_rate, 0.5);
        assert_eq!(ws[4].count, 2);
        assert_eq!(ws[4].success_rate, 1.0);
    }

    #[test]
    fn boundary_goes_to_upper_bin() {
        let ws = fig8_windows(&[pt(0.2, true), pt(0.8, true)]);
        assert_eq!(ws[1].count, 1, "0.2 belongs to [0.2, 0.4)");
        assert_eq!(ws[4].count, 1, "0.8 belongs to 0.8+");
    }

    #[test]
    fn empty_bins_report_zero_rate() {
        let ws = fig8_windows(&[pt(0.1, true)]);
        assert_eq!(ws[2].count, 0);
        assert_eq!(ws[2].success_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = effort_windows(&[], 0.0, 0.8);
    }
}
