//! Wide batched deterministic inference over a frozen policy.
//!
//! [`BatchPolicy`] is the one batched-inference entry point shared by the
//! serving layer (`drive-serve` micro-batching) and the fleet simulation
//! driver: it pre-packs the trunk's transposed weights once, so each
//! forward pass is a single bias-fused GEMM per layer with no per-call
//! transpose. Outputs are bit-identical to
//! [`GaussianPolicy::act_batch_with`] and therefore to serial
//! `act_with(.., deterministic = true, ..)` — batching changes throughput,
//! never numerics.
//!
//! Two call styles cover both consumers:
//! - [`BatchPolicy::act_batch`]: gather from observation slices (the
//!   serving layer's shape — requests arrive as independent vectors).
//! - [`BatchPolicy::stage`] + [`BatchPolicy::infer_staged`]: write rows
//!   directly into the staging matrix (the fleet driver's shape — the
//!   feature extractor writes each live episode's observation in place,
//!   no intermediate copy).

use crate::gaussian::{squash_mean_rows, stage_obs_rows, GaussianPolicy};
use crate::mat::Mat;
use crate::scratch::BatchActScratch;
use std::sync::Arc;

/// A frozen [`GaussianPolicy`] with pre-packed weights for wide batched
/// deterministic inference.
///
/// The packs are a pure layout cache over the shared policy: the `Arc`
/// guarantees the weights cannot mutate while this wrapper is alive, so
/// the packs never go stale.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    policy: Arc<GaussianPolicy>,
    packs: Vec<Mat>,
}

impl BatchPolicy {
    /// Packs the policy's transposed weights once.
    pub fn new(policy: Arc<GaussianPolicy>) -> Self {
        let packs = policy.trunk().pack_weights();
        BatchPolicy { policy, packs }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &Arc<GaussianPolicy> {
        &self.policy
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.policy.obs_dim()
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.policy.action_dim()
    }

    /// Resizes the scratch's staging matrix to `(batch, obs_dim)` and
    /// returns it for the caller to fill row by row (contents are
    /// unspecified until every row is written). Follow with
    /// [`BatchPolicy::infer_staged`].
    pub fn stage<'s>(&self, batch: usize, s: &'s mut BatchActScratch) -> &'s mut Mat {
        s.obs.resize(batch, self.obs_dim());
        &mut s.obs
    }

    /// Runs one forward pass over the staged observation rows, returning
    /// the `(batch, action_dim)` matrix of `tanh(mean)` actions. Row `b`
    /// is bit-identical to serial `act_with(row_b, .., true, ..)`.
    pub fn infer_staged<'s>(&self, s: &'s mut BatchActScratch) -> &'s Mat {
        let BatchActScratch {
            obs: obs_m,
            trunk,
            actions,
        } = s;
        debug_assert_eq!(obs_m.cols(), self.obs_dim(), "stage() before infer");
        let raw = self
            .policy
            .trunk()
            .forward_prepacked_with(&self.packs, obs_m, trunk);
        squash_mean_rows(raw, self.action_dim(), actions);
        actions
    }

    /// Gather-style batched inference: stacks `obs` into the staging
    /// matrix and runs [`BatchPolicy::infer_staged`]. Bit-identical to
    /// [`GaussianPolicy::act_batch_with`] while skipping its per-call
    /// weight packs.
    ///
    /// # Panics
    ///
    /// Panics if any observation slice is not `obs_dim` long.
    pub fn act_batch<'s>(&self, obs: &[&[f32]], s: &'s mut BatchActScratch) -> &'s Mat {
        stage_obs_rows(obs, self.obs_dim(), &mut s.obs);
        self.infer_staged(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::randn_f32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn policy() -> Arc<GaussianPolicy> {
        let mut rng = StdRng::seed_from_u64(5);
        Arc::new(GaussianPolicy::new(4, &[16], 2, &mut rng))
    }

    /// The pre-packed batch path must match the unpacked
    /// `act_batch_with` BIT-FOR-BIT across batch sizes on both sides of
    /// the GEMM row-tile boundary, sharing one scratch across growing and
    /// shrinking batches.
    #[test]
    fn batch_policy_bit_identical_to_act_batch_with() {
        let p = policy();
        let bp = BatchPolicy::new(p.clone());
        let mut packed_s = BatchActScratch::default();
        let mut plain_s = BatchActScratch::default();
        let mut rng = StdRng::seed_from_u64(11);
        for &batch in &[1usize, 3, 4, 5, 9, 64, 2] {
            let obs: Vec<Vec<f32>> = (0..batch)
                .map(|_| (0..4).map(|_| randn_f32(&mut rng) * 2.0).collect())
                .collect();
            let refs: Vec<&[f32]> = obs.iter().map(Vec::as_slice).collect();
            let packed = bp.act_batch(&refs, &mut packed_s);
            let plain = p.act_batch_with(&refs, &mut plain_s);
            assert_eq!((packed.rows(), packed.cols()), (batch, 2));
            for b in 0..batch {
                for (i, (&got, &want)) in packed.row(b).iter().zip(plain.row(b)).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "batch {batch} row {b} dim {i}: packed {got} vs plain {want}"
                    );
                }
            }
        }
    }

    /// Writing rows into the staging matrix directly must equal the
    /// gather-style entry — the fleet driver fills rows in place.
    #[test]
    fn staged_entry_matches_gather_entry() {
        let p = policy();
        let bp = BatchPolicy::new(p);
        let mut s1 = BatchActScratch::default();
        let mut s2 = BatchActScratch::default();
        let mut rng = StdRng::seed_from_u64(3);
        for &batch in &[6usize, 1, 17] {
            let obs: Vec<Vec<f32>> = (0..batch)
                .map(|_| (0..4).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                .collect();
            let stage = bp.stage(batch, &mut s1);
            for (b, o) in obs.iter().enumerate() {
                stage.row_mut(b).copy_from_slice(o);
            }
            let staged = bp.infer_staged(&mut s1).clone();
            let refs: Vec<&[f32]> = obs.iter().map(Vec::as_slice).collect();
            let gathered = bp.act_batch(&refs, &mut s2);
            assert_eq!(&staged, gathered);
        }
    }

    #[test]
    fn handles_empty_batch() {
        let bp = BatchPolicy::new(policy());
        let mut s = BatchActScratch::default();
        assert_eq!(bp.act_batch(&[], &mut s).rows(), 0);
    }
}
