//! The `serve` and `loadgen` subcommands of the `repro_bench` binary.
//!
//! * `repro_bench serve …` drives the deterministic virtual-time
//!   simulator ([`drive_serve::sim::run_sim`]) and prints its
//!   byte-stable report — the CI smoke path: a fixed seed reproduces the
//!   output bit for bit, and `--expect-*` flags turn the run into a
//!   self-asserting gate.
//! * `repro_bench loadgen …` fires the open-loop wall-clock generator
//!   ([`crate::loadgen::run_loadgen`]) at a real threaded server and
//!   reconciles client tallies against the server's counters.
//!
//! Both accept the same serving/fault/attack shape flags; see `--help`.

use crate::loadgen::{self, LoadgenConfig};
use drive_core::retry::RetryPolicy;
use drive_nn::gaussian::GaussianPolicy;
use drive_serve::config::ServeConfig;
use drive_serve::faults::{FaultPlan, FaultPlanConfig};
use drive_serve::sim::{self, AttackWindow, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Which serving frontend to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Deterministic virtual-time simulator.
    Sim,
    /// Real threaded server under the open-loop generator.
    Loadgen,
}

/// Parsed `serve` / `loadgen` command line.
#[derive(Debug, Clone)]
pub struct ServeCliArgs {
    /// Simulator or real server.
    pub mode: ServeMode,
    /// Master seed (policy weights, arrivals, faults, observations).
    pub seed: u64,
    /// Total requests to fire.
    pub requests: u64,
    /// Open-loop request rate, requests per second.
    pub qps: u64,
    /// Serving shape (workers/queue/batching/deadline).
    pub serve: ServeConfig,
    /// Observation dimension of the synthesized policy.
    pub obs_dim: usize,
    /// Seeded fault-plan shape.
    pub faults: FaultPlanConfig,
    /// Optional action-space attack (simulator only).
    pub attack: Option<AttackWindow>,
    /// Write a small latency/outcome JSON artifact here.
    pub latency_json: Option<PathBuf>,
    /// Assert nothing was shed or timed out.
    pub expect_no_sheds: bool,
    /// Assert the ladder degraded at least one answer.
    pub expect_degraded: bool,
    /// p99 SLO for the `--qps-grid` sweep, µs.
    pub slo_p99_us: Option<u64>,
    /// Candidate rates for the max-QPS-at-SLO search.
    pub qps_grid: Vec<u64>,
    /// Client pool cap (loadgen only).
    pub max_clients: usize,
    /// Client retry attempts for backpressure sheds (loadgen only).
    pub retries: usize,
}

impl ServeCliArgs {
    fn new(mode: ServeMode) -> Self {
        ServeCliArgs {
            mode,
            seed: 42,
            requests: 400,
            qps: 1_000,
            serve: ServeConfig::default(),
            obs_dim: 6,
            faults: FaultPlanConfig::none(),
            attack: None,
            latency_json: None,
            expect_no_sheds: false,
            expect_degraded: false,
            slo_p99_us: None,
            qps_grid: Vec::new(),
            max_clients: 32,
            retries: 3,
        }
    }
}

/// A usage (exit 2) or assertion/runtime (exit 1) failure.
#[derive(Debug)]
pub struct ServeCliError {
    /// Process exit code.
    pub code: i32,
    /// Message for stderr.
    pub message: String,
}

impl ServeCliError {
    fn usage(message: impl Into<String>) -> Self {
        ServeCliError {
            code: 2,
            message: message.into(),
        }
    }

    fn failed(message: impl Into<String>) -> Self {
        ServeCliError {
            code: 1,
            message: message.into(),
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: Option<&String>) -> Result<T, ServeCliError> {
    let raw = raw.ok_or_else(|| ServeCliError::usage(format!("flag '{flag}' needs a value")))?;
    raw.parse()
        .map_err(|_| ServeCliError::usage(format!("flag '{flag}' got invalid value '{raw}'")))
}

/// Parses a `serve` / `loadgen` argument list (after the subcommand word).
///
/// # Errors
///
/// [`ServeCliError`] with exit code 2 on unknown flags or bad values.
pub fn parse(mode: ServeMode, args: &[String]) -> Result<ServeCliArgs, ServeCliError> {
    let mut out = ServeCliArgs::new(mode);
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => out.seed = parse_num("--seed", it.next())?,
            "--requests" => out.requests = parse_num("--requests", it.next())?,
            "--qps" => out.qps = parse_num("--qps", it.next())?,
            "--workers" => out.serve.workers = parse_num("--workers", it.next())?,
            "--queue-capacity" => {
                out.serve.queue_capacity = parse_num("--queue-capacity", it.next())?
            }
            "--max-batch" => out.serve.max_batch = parse_num("--max-batch", it.next())?,
            "--batch-window-us" => {
                out.serve.batch_window_us = parse_num("--batch-window-us", it.next())?
            }
            "--deadline-us" => out.serve.deadline_us = parse_num("--deadline-us", it.next())?,
            "--obs-dim" => out.obs_dim = parse_num("--obs-dim", it.next())?,
            "--kills" => out.faults.kills = parse_num("--kills", it.next())?,
            "--stalls" => out.faults.stalls = parse_num("--stalls", it.next())?,
            "--stall-us" => out.faults.stall_us = parse_num("--stall-us", it.next())?,
            "--corrupt-rate" => out.faults.corrupt_rate = parse_num("--corrupt-rate", it.next())?,
            "--attack-at-us" => {
                let start_us = parse_num("--attack-at-us", it.next())?;
                let delta = out.attack.map_or(0.3, |a| a.delta);
                out.attack = Some(AttackWindow { start_us, delta });
            }
            "--attack-delta" => {
                let delta = parse_num("--attack-delta", it.next())?;
                let start_us = out.attack.map_or(0, |a| a.start_us);
                out.attack = Some(AttackWindow { start_us, delta });
            }
            "--latency-json" => {
                let raw = it
                    .next()
                    .ok_or_else(|| ServeCliError::usage("flag '--latency-json' needs a value"))?;
                out.latency_json = Some(PathBuf::from(raw));
            }
            "--expect-no-sheds" => out.expect_no_sheds = true,
            "--expect-degraded" => out.expect_degraded = true,
            "--slo-p99-us" => out.slo_p99_us = Some(parse_num("--slo-p99-us", it.next())?),
            "--qps-grid" => {
                let raw = it
                    .next()
                    .ok_or_else(|| ServeCliError::usage("flag '--qps-grid' needs a value"))?;
                out.qps_grid = raw
                    .split(',')
                    .map(|part| {
                        part.trim().parse().map_err(|_| {
                            ServeCliError::usage(format!(
                                "flag '--qps-grid' got invalid value '{raw}'"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--max-clients" => out.max_clients = parse_num("--max-clients", it.next())?,
            "--retries" => out.retries = parse_num("--retries", it.next())?,
            flag => {
                return Err(ServeCliError::usage(format!(
                    "unknown {} flag '{flag}'",
                    match mode {
                        ServeMode::Sim => "serve",
                        ServeMode::Loadgen => "loadgen",
                    }
                )))
            }
        }
    }
    if out.qps == 0 {
        return Err(ServeCliError::usage("--qps must be positive"));
    }
    if out.obs_dim <= drive_serve::pipeline::STEER_FEATURE {
        return Err(ServeCliError::usage(format!(
            "--obs-dim must exceed the steering-readback feature index {}",
            drive_serve::pipeline::STEER_FEATURE
        )));
    }
    if !out.qps_grid.is_empty() && out.slo_p99_us.is_none() {
        return Err(ServeCliError::usage("--qps-grid needs --slo-p99-us"));
    }
    Ok(out)
}

/// The seeded stand-in policy both subcommands serve: weights are a pure
/// function of the seed, so the simulator's output is byte-stable.
fn synth_policy(args: &ServeCliArgs) -> Arc<GaussianPolicy> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    Arc::new(GaussianPolicy::new(args.obs_dim, &[32, 32], 2, &mut rng))
}

/// Tiny JSON artifact with the latency quantiles and outcome counts —
/// what the CI smoke job uploads.
fn latency_json(
    latency: &drive_metrics::histo::LatencyHistogram,
    counters: &drive_serve::request::Counters,
) -> String {
    format!(
        "{{\n  \"schema\": \"repro-bench/serve-latency-v1\",\n  \"count\": {},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"max_us\": {},\n  \"served\": {},\n  \"degraded\": {},\n  \"shed\": {},\n  \"timed_out\": {}\n}}\n",
        latency.count(),
        latency.p50(),
        latency.p99(),
        latency.p999(),
        latency.max(),
        counters.served,
        counters.degraded,
        counters.shed(),
        counters.timed_out,
    )
}

fn check_expectations(
    args: &ServeCliArgs,
    counters: &drive_serve::request::Counters,
) -> Result<(), ServeCliError> {
    if args.expect_no_sheds && (counters.shed() > 0 || counters.timed_out > 0) {
        return Err(ServeCliError::failed(format!(
            "--expect-no-sheds violated: {counters}"
        )));
    }
    if args.expect_degraded && counters.degraded == 0 {
        return Err(ServeCliError::failed(format!(
            "--expect-degraded violated: {counters}"
        )));
    }
    Ok(())
}

fn write_artifact(path: &PathBuf, body: &str) -> Result<(), ServeCliError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ServeCliError::failed(format!("{}: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, body)
        .map_err(|e| ServeCliError::failed(format!("{}: {e}", path.display())))?;
    eprintln!("[serve] wrote {}", path.display());
    Ok(())
}

fn run_sim_cmd(args: &ServeCliArgs) -> Result<(), ServeCliError> {
    let policy = synth_policy(args);
    let config = SimConfig {
        serve: args.serve.clone(),
        seed: args.seed,
        requests: args.requests,
        interarrival_us: (1_000_000 / args.qps).max(1),
        faults: args.faults,
        attack: args.attack,
        ..SimConfig::default()
    };
    let report = sim::run_sim(&policy, &config);
    print!("{}", report.render());
    report.counters.reconcile().map_err(ServeCliError::failed)?;
    check_expectations(args, &report.counters)?;
    if let Some(path) = &args.latency_json {
        write_artifact(path, &latency_json(&report.latency, &report.counters))?;
    }
    if let Some(slo) = args.slo_p99_us {
        match sim::max_qps_at_slo(&policy, &config, slo, &args.qps_grid) {
            Some(qps) => println!("max_qps_at_slo: {qps}"),
            None => {
                return Err(ServeCliError::failed(format!(
                    "no candidate rate in {:?} meets the p99 <= {slo}us SLO",
                    args.qps_grid
                )))
            }
        }
    }
    Ok(())
}

fn run_loadgen_cmd(args: &ServeCliArgs) -> Result<(), ServeCliError> {
    let policy = synth_policy(args);
    let retry = RetryPolicy::attempts(args.retries.max(1)).with_backoff(
        Duration::from_micros(200),
        Duration::from_millis(2),
        0.5,
    );
    let config = LoadgenConfig {
        qps: args.qps,
        requests: args.requests,
        seed: args.seed,
        obs_dim: args.obs_dim,
        retry,
        max_clients: args.max_clients,
    };
    let horizon_us = args.requests.saturating_mul(1_000_000 / args.qps.max(1));
    let plan = FaultPlan::seeded(args.seed, args.serve.workers, horizon_us, &args.faults);
    let report = loadgen::run_loadgen(policy.clone(), args.serve.clone(), plan, &config);
    print!("{}", report.render());
    report
        .reconcile(args.requests)
        .map_err(ServeCliError::failed)?;
    check_expectations(args, &report.server.counters)?;
    if args.expect_no_sheds && (report.logical.gave_up > 0 || report.logical.timed_out > 0) {
        return Err(ServeCliError::failed(format!(
            "--expect-no-sheds violated after retries: {} gave up, {} timed out",
            report.logical.gave_up, report.logical.timed_out
        )));
    }
    if let Some(path) = &args.latency_json {
        write_artifact(
            path,
            &latency_json(&report.client_latency, &report.client_attempts),
        )?;
    }
    if let Some(slo) = args.slo_p99_us {
        match loadgen::find_max_qps(&policy, &args.serve, &config, slo, &args.qps_grid) {
            Some(qps) => println!("max_qps_at_slo: {qps}"),
            None => {
                return Err(ServeCliError::failed(format!(
                    "no candidate rate in {:?} meets the p99 <= {slo}us SLO",
                    args.qps_grid
                )))
            }
        }
    }
    Ok(())
}

/// Entry point used by the `repro_bench` multiplexer: `args` excludes the
/// subcommand word itself. Returns the process exit code.
pub fn main(mode: ServeMode, args: &[String]) -> i32 {
    let parsed = match parse(mode, args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {}", e.message);
            return e.code;
        }
    };
    let result = match mode {
        ServeMode::Sim => run_sim_cmd(&parsed),
        ServeMode::Loadgen => run_loadgen_cmd(&parsed),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {}", e.message);
            e.code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_surface() {
        let args = parse(
            ServeMode::Sim,
            &argv(&[
                "--seed",
                "7",
                "--requests",
                "100",
                "--qps",
                "2000",
                "--workers",
                "3",
                "--queue-capacity",
                "32",
                "--max-batch",
                "4",
                "--batch-window-us",
                "500",
                "--deadline-us",
                "20000",
                "--obs-dim",
                "8",
                "--kills",
                "2",
                "--stalls",
                "1",
                "--stall-us",
                "5000",
                "--corrupt-rate",
                "0.25",
                "--attack-at-us",
                "100000",
                "--attack-delta",
                "0.5",
                "--latency-json",
                "/tmp/l.json",
                "--expect-no-sheds",
                "--expect-degraded",
                "--slo-p99-us",
                "30000",
                "--qps-grid",
                "100,200,400",
            ]),
        )
        .expect("parse");
        assert_eq!(args.seed, 7);
        assert_eq!(args.requests, 100);
        assert_eq!(args.qps, 2_000);
        assert_eq!(args.serve.workers, 3);
        assert_eq!(args.serve.queue_capacity, 32);
        assert_eq!(args.serve.max_batch, 4);
        assert_eq!(args.serve.batch_window_us, 500);
        assert_eq!(args.serve.deadline_us, 20_000);
        assert_eq!(args.obs_dim, 8);
        assert_eq!(args.faults.kills, 2);
        assert_eq!(args.faults.stalls, 1);
        assert_eq!(args.faults.stall_us, 5_000);
        assert_eq!(args.faults.corrupt_rate, 0.25);
        let attack = args.attack.expect("attack window");
        assert_eq!(attack.start_us, 100_000);
        assert_eq!(attack.delta, 0.5);
        assert!(args.expect_no_sheds && args.expect_degraded);
        assert_eq!(args.slo_p99_us, Some(30_000));
        assert_eq!(args.qps_grid, [100, 200, 400]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--frobnicate"],
            vec!["--qps", "zero"],
            vec!["--qps", "0"],
            vec!["--obs-dim", "3"],
            vec!["--qps-grid", "100"], // missing --slo-p99-us
            vec!["--requests"],        // dangling
        ] {
            let err = parse(ServeMode::Sim, &argv(&bad)).expect_err(&bad.join(" "));
            assert_eq!(err.code, 2, "{bad:?}: {}", err.message);
        }
    }

    #[test]
    fn sim_subcommand_is_byte_identical_at_a_fixed_seed() {
        let args = parse(
            ServeMode::Sim,
            &argv(&[
                "--seed",
                "11",
                "--requests",
                "120",
                "--kills",
                "1",
                "--corrupt-rate",
                "0.3",
            ]),
        )
        .expect("parse");
        let policy = synth_policy(&args);
        let config = SimConfig {
            serve: args.serve.clone(),
            seed: args.seed,
            requests: args.requests,
            interarrival_us: (1_000_000 / args.qps).max(1),
            faults: args.faults,
            attack: args.attack,
            ..SimConfig::default()
        };
        let a = sim::run_sim(&policy, &config).render();
        let b = sim::run_sim(&synth_policy(&args), &config).render();
        assert_eq!(a, b, "fixed-seed serve runs must be byte-identical");
    }

    #[test]
    fn sim_smoke_expectations_pass_and_fail_as_configured() {
        // Clean low-QPS run: no sheds expected, and the run must honor it.
        let clean = parse(
            ServeMode::Sim,
            &argv(&["--requests", "60", "--qps", "500", "--expect-no-sheds"]),
        )
        .expect("parse");
        run_sim_cmd(&clean).expect("clean run meets --expect-no-sheds");

        // Demanding degradation from a clean run must fail the gate.
        let wrong = parse(
            ServeMode::Sim,
            &argv(&["--requests", "60", "--qps", "500", "--expect-degraded"]),
        )
        .expect("parse");
        let err = run_sim_cmd(&wrong).expect_err("clean run cannot satisfy --expect-degraded");
        assert_eq!(err.code, 1);
    }

    #[test]
    fn sim_latency_artifact_is_written() {
        let dir = std::env::temp_dir().join("repro-bench-servecli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("latency.json");
        let args = parse(
            ServeMode::Sim,
            &argv(&[
                "--requests",
                "40",
                "--latency-json",
                path.to_str().expect("utf-8 temp path"),
            ]),
        )
        .expect("parse");
        run_sim_cmd(&args).expect("run");
        let body = std::fs::read_to_string(&path).expect("artifact");
        assert!(
            body.contains("\"schema\": \"repro-bench/serve-latency-v1\""),
            "{body}"
        );
        assert!(body.contains("\"p99_us\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
