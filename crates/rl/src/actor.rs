//! The actor abstraction SAC trains against.
//!
//! SAC only needs four capabilities from a policy: reparameterized batch
//! sampling, backprop of action/log-prob gradients, parameter visiting for
//! the optimizer, and single-observation action computation. Both the plain
//! [`GaussianPolicy`] and the progressive-network [`PnnPolicy`] (used by the
//! paper's PNN defense) satisfy this, so one generic [`crate::sac::Sac`]
//! learner covers victim training, attacker training, adversarial
//! fine-tuning, and PNN column training.

use drive_nn::gaussian::GaussianPolicy;
use drive_nn::mat::Mat;
use drive_nn::pnn::PnnPolicy;
use drive_nn::scratch::SampleBackScratch;
use rand::rngs::StdRng;

/// A sampled batch: actions in `[-1,1]` and their log-probabilities, plus
/// whatever the actor needs to run its backward pass.
pub trait ActorSample {
    /// Sampled actions, `(batch, action_dim)`.
    fn actions(&self) -> &Mat;
    /// Per-sample log-probabilities.
    fn log_prob(&self) -> &[f32];
}

impl ActorSample for drive_nn::gaussian::SampleCache {
    fn actions(&self) -> &Mat {
        self.actions()
    }
    fn log_prob(&self) -> &[f32] {
        self.log_prob()
    }
}

impl ActorSample for drive_nn::pnn::PnnSampleCache {
    fn actions(&self) -> &Mat {
        self.actions()
    }
    fn log_prob(&self) -> &[f32] {
        self.log_prob()
    }
}

/// A trainable stochastic policy.
pub trait Actor {
    /// The sample cache type produced by [`Actor::sample`]. `Clone + Debug`
    /// so persistent update scratches holding a sample slot stay derivable.
    type Sample: ActorSample + Clone + std::fmt::Debug;

    /// Observation dimensionality.
    fn obs_dim(&self) -> usize;
    /// Action dimensionality.
    fn action_dim(&self) -> usize;
    /// Reparameterized batch sample.
    fn sample(&self, obs: &Mat, rng: &mut StdRng) -> Self::Sample;
    /// Reparameterized batch sample into a reusable slot. Implementations
    /// with allocation-free caches overwrite the slot in place; the default
    /// just stores a fresh [`Actor::sample`]. Must consume the RNG in
    /// exactly the same order as `sample` and produce identical results.
    fn sample_into(&self, obs: &Mat, rng: &mut StdRng, slot: &mut Option<Self::Sample>) {
        *slot = Some(self.sample(obs, rng));
    }
    /// Backpropagates `dL/da` and `dL/dlogp` into trainable parameters.
    fn backward_sample(&mut self, cache: &Self::Sample, grad_action: &Mat, grad_logp: &[f32]);
    /// [`Actor::backward_sample`] through a reusable workspace. The default
    /// ignores the scratch and calls the allocating path; implementations
    /// with `_with` variants override. Gradients must accumulate
    /// identically either way.
    fn backward_sample_with(
        &mut self,
        cache: &Self::Sample,
        grad_action: &Mat,
        grad_logp: &[f32],
        _scratch: &mut SampleBackScratch,
    ) {
        self.backward_sample(cache, grad_action, grad_logp);
    }
    /// Clears accumulated gradients.
    fn zero_grad(&mut self);
    /// Visits `(params, grads)` slices of the trainable parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));
    /// Single-observation action (deterministic or sampled).
    fn act(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32>;
}

impl Actor for GaussianPolicy {
    type Sample = drive_nn::gaussian::SampleCache;

    fn obs_dim(&self) -> usize {
        GaussianPolicy::obs_dim(self)
    }
    fn action_dim(&self) -> usize {
        GaussianPolicy::action_dim(self)
    }
    fn sample(&self, obs: &Mat, rng: &mut StdRng) -> Self::Sample {
        GaussianPolicy::sample(self, obs, rng)
    }
    fn sample_into(&self, obs: &Mat, rng: &mut StdRng, slot: &mut Option<Self::Sample>) {
        let cache = slot.get_or_insert_with(Default::default);
        GaussianPolicy::sample_into(self, obs, rng, cache);
    }
    fn backward_sample(&mut self, cache: &Self::Sample, grad_action: &Mat, grad_logp: &[f32]) {
        GaussianPolicy::backward_sample(self, cache, grad_action, grad_logp);
    }
    fn backward_sample_with(
        &mut self,
        cache: &Self::Sample,
        grad_action: &Mat,
        grad_logp: &[f32],
        scratch: &mut SampleBackScratch,
    ) {
        GaussianPolicy::backward_sample_with(self, cache, grad_action, grad_logp, scratch);
    }
    fn zero_grad(&mut self) {
        self.trunk_mut().zero_grad();
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.trunk_mut().visit_params(f);
    }
    fn act(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        GaussianPolicy::act(self, obs, rng, deterministic)
    }
}

impl Actor for PnnPolicy {
    type Sample = drive_nn::pnn::PnnSampleCache;

    fn obs_dim(&self) -> usize {
        PnnPolicy::obs_dim(self)
    }
    fn action_dim(&self) -> usize {
        PnnPolicy::action_dim(self)
    }
    fn sample(&self, obs: &Mat, rng: &mut StdRng) -> Self::Sample {
        PnnPolicy::sample(self, obs, rng)
    }
    fn backward_sample(&mut self, cache: &Self::Sample, grad_action: &Mat, grad_logp: &[f32]) {
        PnnPolicy::backward_sample(self, cache, grad_action, grad_logp);
    }
    fn zero_grad(&mut self) {
        PnnPolicy::zero_grad(self);
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        PnnPolicy::visit_params(self, f);
    }
    fn act(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        PnnPolicy::act(self, obs, rng, deterministic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_nn::pnn::PnnInit;
    use rand::SeedableRng;

    #[test]
    fn gaussian_policy_satisfies_actor() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = GaussianPolicy::new(3, &[8], 2, &mut rng);
        assert_eq!(Actor::obs_dim(&p), 3);
        assert_eq!(Actor::action_dim(&p), 2);
        let obs = Mat::from_vec(2, 3, vec![0.1; 6]);
        let s = Actor::sample(&p, &obs, &mut rng);
        assert_eq!(s.actions().rows(), 2);
        assert_eq!(s.log_prob().len(), 2);
        let ga = Mat::zeros(2, 2);
        Actor::zero_grad(&mut p);
        Actor::backward_sample(&mut p, &s, &ga, &[0.0; 2]);
        let mut n = 0;
        Actor::visit_params(&mut p, &mut |p, _| n += p.len());
        assert!(n > 0);
    }

    #[test]
    fn pnn_policy_satisfies_actor() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = GaussianPolicy::new(3, &[8], 1, &mut rng);
        let p = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
        let obs = Mat::from_vec(1, 3, vec![0.2; 3]);
        let s = Actor::sample(&p, &obs, &mut rng);
        assert_eq!(s.actions().cols(), 1);
        let a = Actor::act(&p, &[0.0; 3], &mut rng, true);
        assert_eq!(a.len(), 1);
    }
}
