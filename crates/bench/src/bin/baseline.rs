//! Regenerates the paper's baseline report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("baseline");
}
