//! Scalar aggregation: five-number summaries (box plots), means, standard
//! deviations.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean — the contents of one box in the paper's
/// box plots (Fig. 4, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary of a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "box stats need at least one sample");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        BoxStats {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(samples),
            n: samples.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.2} | q1 {:.2} | med {:.2} | q3 {:.2} | max {:.2} (mean {:.2}, n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }
}

/// Linear-interpolation quantile of *pre-sorted* data.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean (0 for empty input).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_on_known_data() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile(&sorted, 0.5), 5.0);
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn box_stats_order_independent() {
        let a = BoxStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01, "std {s}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_box_stats_panics() {
        let _ = BoxStats::from_samples(&[]);
    }

    #[test]
    fn display_is_readable() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0]);
        let text = format!("{s}");
        assert!(text.contains("med 2.00"));
    }
}
