//! Uniform experience replay buffer.

use drive_nn::mat::Mat;
use rand::Rng;

/// One stored transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f32>,
    /// Action taken, in `[-1, 1]^action_dim`.
    pub action: Vec<f32>,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_obs: Vec<f32>,
    /// True terminal (no bootstrapping); time-limit truncations store
    /// `false` here.
    pub terminal: bool,
}

/// A sampled mini-batch in matrix form, ready for network passes.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Observations, `(batch, obs_dim)`.
    pub obs: Mat,
    /// Actions, `(batch, action_dim)`.
    pub actions: Mat,
    /// Rewards.
    pub rewards: Vec<f32>,
    /// Next observations.
    pub next_obs: Mat,
    /// Terminal flags as 0/1 masks.
    pub terminals: Vec<f32>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }
}

/// An empty batch — the natural seed for a reusable buffer filled by
/// [`ReplayBuffer::sample_into`].
impl Default for Batch {
    fn default() -> Self {
        Batch {
            obs: Mat::default(),
            actions: Mat::default(),
            rewards: Vec::new(),
            next_obs: Mat::default(),
            terminals: Vec::new(),
        }
    }
}

/// Fixed-capacity ring buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    storage: Vec<Transition>,
    capacity: usize,
    next: usize,
    obs_dim: usize,
    action_dim: usize,
}

impl ReplayBuffer {
    /// Creates a buffer for transitions of the given shapes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, obs_dim: usize, action_dim: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            storage: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next: 0,
            obs_dim,
            action_dim,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a transition, evicting the oldest once full.
    ///
    /// # Panics
    ///
    /// Panics if the transition's shapes do not match the buffer.
    pub fn push(&mut self, t: Transition) {
        assert_eq!(t.obs.len(), self.obs_dim, "obs dim mismatch");
        assert_eq!(t.next_obs.len(), self.obs_dim, "next_obs dim mismatch");
        assert_eq!(t.action.len(), self.action_dim, "action dim mismatch");
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples a uniform mini-batch with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    pub fn sample<R: Rng>(&self, batch: usize, rng: &mut R) -> Batch {
        let mut out = Batch::default();
        self.sample_into(batch, rng, &mut out);
        out
    }

    /// Samples a uniform mini-batch with replacement into a caller-provided
    /// [`Batch`], reusing its buffers — the allocation-free core of
    /// [`ReplayBuffer::sample`] for hot training loops (thousands of SAC
    /// updates per run). Draws the RNG in exactly the same order as
    /// `sample`, so the two are interchangeable mid-stream.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    pub fn sample_into<R: Rng>(&self, batch: usize, rng: &mut R, out: &mut Batch) {
        assert!(!self.is_empty(), "cannot sample from an empty buffer");
        assert!(batch > 0, "batch size must be positive");
        out.obs.resize(batch, self.obs_dim);
        out.actions.resize(batch, self.action_dim);
        out.next_obs.resize(batch, self.obs_dim);
        out.rewards.clear();
        out.rewards.reserve(batch);
        out.terminals.clear();
        out.terminals.reserve(batch);
        for b in 0..batch {
            let t = &self.storage[rng.gen_range(0..self.storage.len())];
            out.obs.row_mut(b).copy_from_slice(&t.obs);
            out.actions.row_mut(b).copy_from_slice(&t.action);
            out.next_obs.row_mut(b).copy_from_slice(&t.next_obs);
            out.rewards.push(t.reward);
            out.terminals.push(if t.terminal { 1.0 } else { 0.0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tr(v: f32) -> Transition {
        Transition {
            obs: vec![v, v],
            action: vec![v],
            reward: v,
            next_obs: vec![v + 1.0, v + 1.0],
            terminal: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut rb = ReplayBuffer::new(10, 2, 1);
        assert!(rb.is_empty());
        for i in 0..5 {
            rb.push(tr(i as f32));
        }
        assert_eq!(rb.len(), 5);
    }

    #[test]
    fn ring_eviction_keeps_capacity() {
        let mut rb = ReplayBuffer::new(4, 2, 1);
        for i in 0..10 {
            rb.push(tr(i as f32));
        }
        assert_eq!(rb.len(), 4);
        // Oldest entries were evicted: all rewards must be >= 2.
        let mut rng = StdRng::seed_from_u64(0);
        let batch = rb.sample(64, &mut rng);
        assert!(batch.rewards.iter().all(|&r| r >= 2.0));
    }

    #[test]
    fn sample_shapes() {
        let mut rb = ReplayBuffer::new(8, 2, 1);
        rb.push(tr(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let b = rb.sample(3, &mut rng);
        assert_eq!(b.len(), 3);
        assert_eq!((b.obs.rows(), b.obs.cols()), (3, 2));
        assert_eq!((b.actions.rows(), b.actions.cols()), (3, 1));
        assert_eq!(b.terminals, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn terminal_flag_round_trips() {
        let mut rb = ReplayBuffer::new(2, 2, 1);
        let mut t = tr(0.0);
        t.terminal = true;
        rb.push(t);
        let mut rng = StdRng::seed_from_u64(2);
        let b = rb.sample(4, &mut rng);
        assert!(b.terminals.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn sample_into_reuses_buffers_and_matches_sample() {
        let mut rb = ReplayBuffer::new(16, 2, 1);
        for i in 0..9 {
            rb.push(tr(i as f32));
        }
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut reused = Batch::default();
        for _ in 0..4 {
            let fresh = rb.sample(6, &mut r1);
            rb.sample_into(6, &mut r2, &mut reused);
            assert_eq!(fresh.obs, reused.obs);
            assert_eq!(fresh.actions, reused.actions);
            assert_eq!(fresh.next_obs, reused.next_obs);
            assert_eq!(fresh.rewards, reused.rewards);
            assert_eq!(fresh.terminals, reused.terminals);
        }
        // RNG streams stayed in lockstep.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(2, 2, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rb.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "obs dim mismatch")]
    fn shape_mismatch_panics() {
        let mut rb = ReplayBuffer::new(2, 3, 1);
        rb.push(tr(0.0));
    }
}
