//! Uniform experience replay buffer.

use drive_nn::checkpoint::{encode_floats, CheckpointError, Reader};
use drive_nn::mat::Mat;
use rand::Rng;

/// Version tag of the replay-buffer checkpoint section.
const REPLAY_VERSION: &str = "v1";

/// One stored transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f32>,
    /// Action taken, in `[-1, 1]^action_dim`.
    pub action: Vec<f32>,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_obs: Vec<f32>,
    /// True terminal (no bootstrapping); time-limit truncations store
    /// `false` here.
    pub terminal: bool,
}

/// A sampled mini-batch in matrix form, ready for network passes.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Observations, `(batch, obs_dim)`.
    pub obs: Mat,
    /// Actions, `(batch, action_dim)`.
    pub actions: Mat,
    /// Rewards.
    pub rewards: Vec<f32>,
    /// Next observations.
    pub next_obs: Mat,
    /// Terminal flags as 0/1 masks.
    pub terminals: Vec<f32>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }
}

/// An empty batch — the natural seed for a reusable buffer filled by
/// [`ReplayBuffer::sample_into`].
impl Default for Batch {
    fn default() -> Self {
        Batch {
            obs: Mat::default(),
            actions: Mat::default(),
            rewards: Vec::new(),
            next_obs: Mat::default(),
            terminals: Vec::new(),
        }
    }
}

/// Fixed-capacity ring buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    storage: Vec<Transition>,
    capacity: usize,
    next: usize,
    obs_dim: usize,
    action_dim: usize,
}

impl ReplayBuffer {
    /// Creates a buffer for transitions of the given shapes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, obs_dim: usize, action_dim: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            storage: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next: 0,
            obs_dim,
            action_dim,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a transition, evicting the oldest once full.
    ///
    /// # Panics
    ///
    /// Panics if the transition's shapes do not match the buffer.
    pub fn push(&mut self, t: Transition) {
        assert_eq!(t.obs.len(), self.obs_dim, "obs dim mismatch");
        assert_eq!(t.next_obs.len(), self.obs_dim, "next_obs dim mismatch");
        assert_eq!(t.action.len(), self.action_dim, "action dim mismatch");
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples a uniform mini-batch with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    pub fn sample<R: Rng>(&self, batch: usize, rng: &mut R) -> Batch {
        let mut out = Batch::default();
        self.sample_into(batch, rng, &mut out);
        out
    }

    /// Samples a uniform mini-batch with replacement into a caller-provided
    /// [`Batch`], reusing its buffers — the allocation-free core of
    /// [`ReplayBuffer::sample`] for hot training loops (thousands of SAC
    /// updates per run). Draws the RNG in exactly the same order as
    /// `sample`, so the two are interchangeable mid-stream.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    pub fn sample_into<R: Rng>(&self, batch: usize, rng: &mut R, out: &mut Batch) {
        assert!(!self.is_empty(), "cannot sample from an empty buffer");
        assert!(batch > 0, "batch size must be positive");
        out.obs.resize(batch, self.obs_dim);
        out.actions.resize(batch, self.action_dim);
        out.next_obs.resize(batch, self.obs_dim);
        out.rewards.clear();
        out.rewards.reserve(batch);
        out.terminals.clear();
        out.terminals.reserve(batch);
        for b in 0..batch {
            let t = &self.storage[rng.gen_range(0..self.storage.len())];
            out.obs.row_mut(b).copy_from_slice(&t.obs);
            out.actions.row_mut(b).copy_from_slice(&t.action);
            out.next_obs.row_mut(b).copy_from_slice(&t.next_obs);
            out.rewards.push(t.reward);
            out.terminals.push(if t.terminal { 1.0 } else { 0.0 });
        }
    }

    /// Appends the buffer — capacity, shapes, write cursor, and every
    /// stored transition — as a versioned checkpoint section. A restored
    /// buffer evicts and samples exactly like the original, which training
    /// snapshots rely on for deterministic resume.
    pub fn encode_into(&self, buf: &mut String) {
        buf.push_str(&format!(
            "replay {REPLAY_VERSION} {} {} {} {} {}\n",
            self.capacity,
            self.obs_dim,
            self.action_dim,
            self.storage.len(),
            self.next
        ));
        for t in &self.storage {
            buf.push_str(&format!(
                "t {} {}\n",
                t.reward,
                if t.terminal { 1 } else { 0 }
            ));
            encode_floats(buf, &t.obs);
            encode_floats(buf, &t.action);
            encode_floats(buf, &t.next_obs);
        }
    }

    /// Parses one buffer section from a reader positioned at its `replay`
    /// tag.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Version`] for a section written by a
    /// different format revision — an old snapshot must surface as a typed
    /// error, never load as garbage transitions — and
    /// [`CheckpointError::Parse`] on structural mismatch.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let parse_err = CheckpointError::Parse;
        let args = r.expect_tag("replay")?;
        let version = *args
            .first()
            .ok_or_else(|| parse_err("replay tag needs a version".into()))?;
        if version != REPLAY_VERSION {
            return Err(CheckpointError::Version {
                found: version.to_string(),
                expected: REPLAY_VERSION,
            });
        }
        if args.len() != 6 {
            return Err(parse_err(
                "replay tag needs '<version> <capacity> <obs_dim> <action_dim> <len> <next>'"
                    .into(),
            ));
        }
        let mut nums = [0usize; 5];
        for (dst, tok) in nums.iter_mut().zip(&args[1..6]) {
            *dst = tok
                .parse()
                .map_err(|_| parse_err(format!("bad replay field '{tok}'")))?;
        }
        let [capacity, obs_dim, action_dim, len, next] = nums;
        if capacity == 0 || len > capacity || next >= capacity.max(1) {
            return Err(parse_err(format!(
                "inconsistent replay geometry: capacity {capacity}, len {len}, next {next}"
            )));
        }
        let mut rb = ReplayBuffer::new(capacity, obs_dim, action_dim);
        for _ in 0..len {
            let targs = r.expect_tag("t")?;
            if targs.len() != 2 {
                return Err(parse_err(
                    "transition tag needs '<reward> <terminal>'".into(),
                ));
            }
            let reward: f32 = targs[0]
                .parse()
                .map_err(|_| parse_err(format!("bad reward '{}'", targs[0])))?;
            let terminal = match targs[1] {
                "0" => false,
                "1" => true,
                other => return Err(parse_err(format!("bad terminal flag '{other}'"))),
            };
            let obs = r.floats(obs_dim)?;
            let action = r.floats(action_dim)?;
            let next_obs = r.floats(obs_dim)?;
            rb.storage.push(Transition {
                obs,
                action,
                reward,
                next_obs,
                terminal,
            });
        }
        rb.next = next;
        Ok(rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tr(v: f32) -> Transition {
        Transition {
            obs: vec![v, v],
            action: vec![v],
            reward: v,
            next_obs: vec![v + 1.0, v + 1.0],
            terminal: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut rb = ReplayBuffer::new(10, 2, 1);
        assert!(rb.is_empty());
        for i in 0..5 {
            rb.push(tr(i as f32));
        }
        assert_eq!(rb.len(), 5);
    }

    #[test]
    fn ring_eviction_keeps_capacity() {
        let mut rb = ReplayBuffer::new(4, 2, 1);
        for i in 0..10 {
            rb.push(tr(i as f32));
        }
        assert_eq!(rb.len(), 4);
        // Oldest entries were evicted: all rewards must be >= 2.
        let mut rng = StdRng::seed_from_u64(0);
        let batch = rb.sample(64, &mut rng);
        assert!(batch.rewards.iter().all(|&r| r >= 2.0));
    }

    #[test]
    fn sample_shapes() {
        let mut rb = ReplayBuffer::new(8, 2, 1);
        rb.push(tr(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let b = rb.sample(3, &mut rng);
        assert_eq!(b.len(), 3);
        assert_eq!((b.obs.rows(), b.obs.cols()), (3, 2));
        assert_eq!((b.actions.rows(), b.actions.cols()), (3, 1));
        assert_eq!(b.terminals, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn terminal_flag_round_trips() {
        let mut rb = ReplayBuffer::new(2, 2, 1);
        let mut t = tr(0.0);
        t.terminal = true;
        rb.push(t);
        let mut rng = StdRng::seed_from_u64(2);
        let b = rb.sample(4, &mut rng);
        assert!(b.terminals.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn sample_into_reuses_buffers_and_matches_sample() {
        let mut rb = ReplayBuffer::new(16, 2, 1);
        for i in 0..9 {
            rb.push(tr(i as f32));
        }
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut reused = Batch::default();
        for _ in 0..4 {
            let fresh = rb.sample(6, &mut r1);
            rb.sample_into(6, &mut r2, &mut reused);
            assert_eq!(fresh.obs, reused.obs);
            assert_eq!(fresh.actions, reused.actions);
            assert_eq!(fresh.next_obs, reused.next_obs);
            assert_eq!(fresh.rewards, reused.rewards);
            assert_eq!(fresh.terminals, reused.terminals);
        }
        // RNG streams stayed in lockstep.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn checkpoint_round_trip_preserves_sampling_and_eviction() {
        let mut rb = ReplayBuffer::new(6, 2, 1);
        for i in 0..9 {
            let mut t = tr(i as f32);
            t.terminal = i % 3 == 0;
            rb.push(t);
        }
        let mut buf = String::new();
        rb.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let mut back = ReplayBuffer::decode_from(&mut r).expect("round trip");
        assert_eq!(back.capacity(), rb.capacity());
        assert_eq!(back.len(), rb.len());
        assert_eq!(back.storage, rb.storage);
        // Identical sampling stream...
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = rb.sample(8, &mut r1);
        let b = back.sample(8, &mut r2);
        assert_eq!(a.rewards, b.rewards);
        assert_eq!(a.obs, b.obs);
        // ...and the eviction cursor continues from the same slot.
        rb.push(tr(50.0));
        back.push(tr(50.0));
        assert_eq!(back.storage, rb.storage);
        assert_eq!(back.next, rb.next);
    }

    #[test]
    fn checkpoint_version_mismatch_is_typed_error() {
        let mut rb = ReplayBuffer::new(4, 2, 1);
        rb.push(tr(1.0));
        let mut buf = String::new();
        rb.encode_into(&mut buf);
        let tampered = buf.replacen("replay v1", "replay v0", 1);
        let mut r = Reader::new(&tampered);
        match ReplayBuffer::decode_from(&mut r) {
            Err(CheckpointError::Version { found, expected }) => {
                assert_eq!(found, "v0");
                assert_eq!(expected, REPLAY_VERSION);
            }
            other => panic!("old-version file must be a typed error, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_rejects_inconsistent_geometry() {
        let mut rb = ReplayBuffer::new(4, 2, 1);
        rb.push(tr(1.0));
        let mut buf = String::new();
        rb.encode_into(&mut buf);
        // len > capacity must be refused before reading transitions.
        let bad = buf.replacen("replay v1 4 2 1 1 0", "replay v1 4 2 1 9 0", 1);
        let mut r = Reader::new(&bad);
        assert!(matches!(
            ReplayBuffer::decode_from(&mut r),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(2, 2, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rb.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "obs dim mismatch")]
    fn shape_mismatch_panics() {
        let mut rb = ReplayBuffer::new(2, 3, 1);
        rb.push(tr(0.0));
    }
}
