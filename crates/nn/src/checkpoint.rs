//! Plain-text checkpointing for networks and policies.
//!
//! A deliberately simple line-oriented format (no extra dependencies):
//! each section is a tagged header line followed by whitespace-separated
//! `f32` values, which Rust formats/parses with guaranteed round-tripping.
//! Used by the experiment harnesses to cache trained policies under
//! `artifacts/`.

use crate::activation::Activation;
use crate::gaussian::GaussianPolicy;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::mlp::Mlp;
use crate::pnn::{PnnInit, PnnPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced when parsing a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The text did not match the expected structure.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file's trailing checksum does not match its contents.
    Corrupt {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the actual contents.
        found: u64,
    },
    /// The section carries a version tag this build does not support.
    Version {
        /// Version tag found in the file.
        found: String,
        /// Version tag this build reads.
        expected: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Parse(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt { expected, found } => write!(
                f,
                "corrupt checkpoint: checksum {found:016x} does not match recorded {expected:016x}"
            ),
            CheckpointError::Version { found, expected } => write!(
                f,
                "unsupported checkpoint version '{found}' (this build reads '{expected}')"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse(_)
            | CheckpointError::Corrupt { .. }
            | CheckpointError::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Parse(msg.into())
}

/// Line-cursor over checkpoint text.
///
/// Public so other crates can compose the section codecs below into larger
/// checkpoint formats (training snapshots chain policy, critic, optimizer,
/// and replay sections through one reader).
pub struct Reader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `text`.
    pub fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines(),
            line_no: 0,
        }
    }

    /// The next non-empty line, trimmed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Parse`] at end of input.
    pub fn next_line(&mut self) -> Result<&'a str, CheckpointError> {
        loop {
            self.line_no += 1;
            match self.lines.next() {
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => return Ok(l.trim()),
                None => return Err(parse_err("unexpected end of checkpoint")),
            }
        }
    }

    /// Consumes a line that must start with `tag`, returning the remaining
    /// whitespace-separated tokens.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Parse`] when the next line's head token
    /// differs from `tag`.
    pub fn expect_tag(&mut self, tag: &str) -> Result<Vec<&'a str>, CheckpointError> {
        let line = self.next_line()?;
        let mut parts = line.split_whitespace();
        let head = parts.next().ok_or_else(|| parse_err("empty line"))?;
        if head != tag {
            return Err(parse_err(format!(
                "line {}: expected tag '{tag}', found '{head}'",
                self.line_no
            )));
        }
        Ok(parts.collect())
    }

    /// Reads exactly `n` whitespace-separated `f32` values spanning as many
    /// lines as needed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Parse`] on a malformed float or a count
    /// mismatch.
    pub fn floats(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let line = self.next_line()?;
            for tok in line.split_whitespace() {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| parse_err(format!("line {}: bad float '{tok}'", self.line_no)))?;
                out.push(v);
            }
        }
        if out.len() != n {
            return Err(parse_err(format!(
                "expected {n} floats, found {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Reads exactly `n` whitespace-separated `usize` values spanning as
    /// many lines as needed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Parse`] on a malformed integer or a count
    /// mismatch.
    pub fn usizes(&mut self, n: usize) -> Result<Vec<usize>, CheckpointError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let line = self.next_line()?;
            for tok in line.split_whitespace() {
                let v: usize = tok.parse().map_err(|_| {
                    parse_err(format!("line {}: bad integer '{tok}'", self.line_no))
                })?;
                out.push(v);
            }
        }
        if out.len() != n {
            return Err(parse_err(format!(
                "expected {n} integers, found {}",
                out.len()
            )));
        }
        Ok(out)
    }
}

/// Writes a whitespace-separated `f32` block in the format [`Reader::floats`]
/// reads back. Rust's shortest round-trip `{}` formatting guarantees the
/// parsed values are bit-identical to the originals.
pub fn encode_floats(buf: &mut String, values: &[f32]) {
    write_floats(buf, values);
}

fn write_floats(buf: &mut String, values: &[f32]) {
    for chunk in values.chunks(16) {
        let mut first = true;
        for v in chunk {
            if !first {
                buf.push(' ');
            }
            buf.push_str(&format!("{v}"));
            first = false;
        }
        buf.push('\n');
    }
    if values.is_empty() {
        buf.push('\n');
    }
}

fn encode_linear(buf: &mut String, l: &Linear) {
    buf.push_str(&format!("linear {} {}\n", l.out_dim(), l.in_dim()));
    write_floats(buf, l.w.data());
    write_floats(buf, &l.b);
}

fn decode_linear(r: &mut Reader<'_>) -> Result<Linear, CheckpointError> {
    let args = r.expect_tag("linear")?;
    if args.len() != 2 {
        return Err(parse_err("linear tag needs '<out> <in>'"));
    }
    let out: usize = args[0].parse().map_err(|_| parse_err("bad out dim"))?;
    let inp: usize = args[1].parse().map_err(|_| parse_err("bad in dim"))?;
    if out == 0 || inp == 0 {
        return Err(parse_err("linear dims must be positive"));
    }
    let w = r.floats(out * inp)?;
    let b = r.floats(out)?;
    let mut rng = StdRng::seed_from_u64(0);
    let mut l = Linear::new(inp, out, &mut rng);
    l.w = Mat::from_vec(out, inp, w);
    l.b = b;
    Ok(l)
}

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
        Activation::Identity => "identity",
    }
}

fn act_from_name(s: &str) -> Result<Activation, CheckpointError> {
    match s {
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        "identity" => Ok(Activation::Identity),
        other => Err(parse_err(format!("unknown activation '{other}'"))),
    }
}

/// Serializes an [`Mlp`] to checkpoint text.
pub fn encode_mlp(net: &Mlp) -> String {
    let mut buf = String::new();
    encode_mlp_into(&mut buf, net);
    buf
}

/// Appends an [`Mlp`] section to a larger checkpoint buffer.
pub fn encode_mlp_into(buf: &mut String, net: &Mlp) {
    buf.push_str(&format!("mlp {}\n", net.num_layers()));
    for (i, l) in net.layers().iter().enumerate() {
        buf.push_str(&format!("act {}\n", act_name(net.activation(i))));
        encode_linear(buf, l);
    }
}

/// Parses an [`Mlp`] from checkpoint text.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on any structural mismatch.
pub fn decode_mlp(text: &str) -> Result<Mlp, CheckpointError> {
    let mut r = Reader::new(text);
    decode_mlp_from(&mut r)
}

/// Parses one [`Mlp`] section from a reader positioned at its `mlp` tag.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on any structural mismatch.
pub fn decode_mlp_from(r: &mut Reader<'_>) -> Result<Mlp, CheckpointError> {
    let args = r.expect_tag("mlp")?;
    let n: usize = args
        .first()
        .ok_or_else(|| parse_err("mlp tag needs layer count"))?
        .parse()
        .map_err(|_| parse_err("bad layer count"))?;
    if n == 0 {
        return Err(parse_err("mlp needs at least one layer"));
    }
    let mut sizes = Vec::with_capacity(n + 1);
    let mut layers = Vec::with_capacity(n);
    let mut acts = Vec::with_capacity(n);
    for i in 0..n {
        let a = r.expect_tag("act")?;
        acts.push(act_from_name(
            a.first().ok_or_else(|| parse_err("act needs a name"))?,
        )?);
        let l = decode_linear(r)?;
        if i == 0 {
            sizes.push(l.in_dim());
        } else if l.in_dim() != sizes[sizes.len() - 1] {
            return Err(parse_err(format!(
                "layer {i} input dim {} does not chain with previous output {}",
                l.in_dim(),
                sizes[sizes.len() - 1]
            )));
        }
        sizes.push(l.out_dim());
        layers.push(l);
    }
    // Rebuild through the public constructor, then overwrite weights.
    let mut rng = StdRng::seed_from_u64(0);
    let hidden_act = acts[0];
    // n >= 1 was checked above, so the last activation exists.
    let out_act = acts[n - 1];
    let mut net = Mlp::new(&sizes, hidden_act, out_act, &mut rng);
    // Fix up any mixed activation patterns beyond (hidden.., out).
    for (i, l) in net.layers_mut().iter_mut().enumerate() {
        l.copy_params_from(&layers[i]);
    }
    for (i, a) in acts.iter().enumerate() {
        if net.activation(i) != *a {
            return Err(parse_err(format!(
                "layer {i} activation pattern {:?} unsupported (expected uniform hidden + output)",
                a
            )));
        }
    }
    Ok(net)
}

/// Serializes a [`GaussianPolicy`].
pub fn encode_policy(p: &GaussianPolicy) -> String {
    let mut buf = String::new();
    encode_policy_into(&mut buf, p);
    buf
}

/// Appends a [`GaussianPolicy`] section to a larger checkpoint buffer.
pub fn encode_policy_into(buf: &mut String, p: &GaussianPolicy) {
    buf.push_str(&format!("policy {}\n", p.action_dim()));
    encode_mlp_into(buf, p.trunk());
}

/// Parses a [`GaussianPolicy`].
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on structural mismatch.
pub fn decode_policy(text: &str) -> Result<GaussianPolicy, CheckpointError> {
    let mut r = Reader::new(text);
    decode_policy_from(&mut r)
}

/// Parses one [`GaussianPolicy`] section from a reader positioned at its
/// `policy` tag.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on structural mismatch.
pub fn decode_policy_from(r: &mut Reader<'_>) -> Result<GaussianPolicy, CheckpointError> {
    let args = r.expect_tag("policy")?;
    let action_dim: usize = args
        .first()
        .ok_or_else(|| parse_err("policy tag needs action dim"))?
        .parse()
        .map_err(|_| parse_err("bad action dim"))?;
    let trunk = decode_mlp_from(r)?;
    if trunk.out_dim() != 2 * action_dim {
        return Err(parse_err(format!(
            "trunk output {} does not match 2 * action_dim {}",
            trunk.out_dim(),
            2 * action_dim
        )));
    }
    // Rebuild a policy with matching architecture, then copy the trunk.
    let hidden: Vec<usize> = trunk.layers()[..trunk.num_layers() - 1]
        .iter()
        .map(Linear::out_dim)
        .collect();
    let mut rng = StdRng::seed_from_u64(0);
    let mut p = GaussianPolicy::new(trunk.in_dim(), &hidden, action_dim, &mut rng);
    p.trunk_mut().copy_params_from(&trunk);
    Ok(p)
}

/// Version tag of the Adam optimizer section.
const ADAM_VERSION: &str = "v1";

/// Appends an [`Adam`](crate::adam::Adam) optimizer section — step counter,
/// hyper-parameters, and both moment buffers — to a checkpoint buffer.
/// Together with the network sections this lets a training snapshot resume
/// optimization bit-exactly.
pub fn encode_adam_into(buf: &mut String, opt: &crate::adam::Adam) {
    let (t, m, v) = opt.state();
    let c = opt.config;
    buf.push_str(&format!(
        "adam {ADAM_VERSION} {t} {} {} {} {} {} {}\n",
        m.len(),
        c.lr,
        c.beta1,
        c.beta2,
        c.eps,
        c.grad_clip
    ));
    for (ms, vs) in m.iter().zip(v) {
        buf.push_str(&format!("slice {}\n", ms.len()));
        write_floats(buf, ms);
        write_floats(buf, vs);
    }
}

/// Parses one [`Adam`](crate::adam::Adam) section from a reader positioned
/// at its `adam` tag.
///
/// # Errors
///
/// Returns [`CheckpointError::Version`] for a section written by a
/// different format revision, [`CheckpointError::Parse`] on structural
/// mismatch.
pub fn decode_adam_from(r: &mut Reader<'_>) -> Result<crate::adam::Adam, CheckpointError> {
    let args = r.expect_tag("adam")?;
    let version = *args
        .first()
        .ok_or_else(|| parse_err("adam tag needs a version"))?;
    if version != ADAM_VERSION {
        return Err(CheckpointError::Version {
            found: version.to_string(),
            expected: ADAM_VERSION,
        });
    }
    if args.len() != 8 {
        return Err(parse_err(
            "adam tag needs '<version> <t> <slices> <lr> <beta1> <beta2> <eps> <grad_clip>'",
        ));
    }
    let t: u64 = args[1]
        .parse()
        .map_err(|_| parse_err("bad adam step count"))?;
    let slices: usize = args[2]
        .parse()
        .map_err(|_| parse_err("bad adam slice count"))?;
    let mut floats = [0.0f32; 5];
    for (dst, tok) in floats.iter_mut().zip(&args[3..8]) {
        *dst = tok
            .parse()
            .map_err(|_| parse_err(format!("bad adam hyper-parameter '{tok}'")))?;
    }
    let config = crate::adam::AdamConfig {
        lr: floats[0],
        beta1: floats[1],
        beta2: floats[2],
        eps: floats[3],
        grad_clip: floats[4],
    };
    let mut m = Vec::with_capacity(slices);
    let mut v = Vec::with_capacity(slices);
    for _ in 0..slices {
        let sargs = r.expect_tag("slice")?;
        let len: usize = sargs
            .first()
            .ok_or_else(|| parse_err("slice tag needs a length"))?
            .parse()
            .map_err(|_| parse_err("bad slice length"))?;
        m.push(r.floats(len)?);
        v.push(r.floats(len)?);
    }
    Ok(crate::adam::Adam::from_state(config, t, m, v))
}

/// Serializes a [`PnnPolicy`].
pub fn encode_pnn(p: &PnnPolicy) -> String {
    let mut buf = String::new();
    buf.push_str(&format!("pnn {}\n", p.action_dim()));
    encode_policy_into(&mut buf, p.base());
    let (column, laterals) = p.parts();
    buf.push_str(&format!("column {}\n", column.len()));
    for l in column {
        encode_linear(&mut buf, l);
    }
    buf.push_str(&format!("laterals {}\n", laterals.len()));
    for l in laterals {
        encode_linear(&mut buf, l);
    }
    buf
}

/// Parses a [`PnnPolicy`].
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on structural mismatch.
pub fn decode_pnn(text: &str) -> Result<PnnPolicy, CheckpointError> {
    let mut r = Reader::new(text);
    let args = r.expect_tag("pnn")?;
    let _action_dim: usize = args
        .first()
        .ok_or_else(|| parse_err("pnn tag needs action dim"))?
        .parse()
        .map_err(|_| parse_err("bad action dim"))?;
    let base = decode_policy_from(&mut r)?;
    let cargs = r.expect_tag("column")?;
    let ncol: usize = cargs
        .first()
        .ok_or_else(|| parse_err("column tag needs count"))?
        .parse()
        .map_err(|_| parse_err("bad column count"))?;
    let mut column = Vec::with_capacity(ncol);
    for _ in 0..ncol {
        column.push(decode_linear(&mut r)?);
    }
    let largs = r.expect_tag("laterals")?;
    let nlat: usize = largs
        .first()
        .ok_or_else(|| parse_err("laterals tag needs count"))?
        .parse()
        .map_err(|_| parse_err("bad laterals count"))?;
    let mut laterals = Vec::with_capacity(nlat);
    for _ in 0..nlat {
        laterals.push(decode_linear(&mut r)?);
    }
    let mut rng = StdRng::seed_from_u64(0);
    let mut p = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
    p.set_parts(column, laterals)
        .map_err(CheckpointError::Parse)?;
    Ok(p)
}

/// FNV-1a 64-bit hash — the integrity checksum appended to saved files.
/// The same hash drive-seed exposes workspace-wide (run manifests use it
/// too), so checksums printed anywhere are comparable.
use drive_seed::fnv1a_64 as fnv1a64;

/// Prefix of the integrity line appended by [`save_to_file`].
const CHECKSUM_TAG: &str = "checksum ";

/// Flushes a directory's metadata to disk.
///
/// An atomic-rename save is only durable once the *directory entry* for the
/// renamed file is on disk: after a crash, a rename that was never fsynced
/// can roll back to the old (or no) file even though the data blocks were
/// written. No-op on platforms without directory fsync.
///
/// # Errors
///
/// Propagates I/O errors from opening or syncing the directory.
pub fn sync_dir(dir: impl AsRef<Path>) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir.as_ref())?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Writes checkpoint text to a file, creating parent directories.
///
/// The write is atomic and durable: a sibling temp file is synced, renamed
/// into place, and the parent directory is fsynced, so a crash at any point
/// leaves either the old checkpoint or the complete new one — never a
/// truncated file, and never a rename that vanishes on power loss. The
/// file ends with a `checksum <fnv1a-64>` line that [`load_from_file`]
/// verifies.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_to_file(path: impl AsRef<Path>, text: &str) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut body = text.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let sum = fnv1a64(body.as_bytes());
    body.push_str(&format!("{CHECKSUM_TAG}{sum:016x}\n"));
    let file_name = path.file_name().ok_or_else(|| {
        CheckpointError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "checkpoint path has no file name",
        ))
    })?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    {
        use std::io::Write as _;
        let mut f = fs::File::create(&tmp)?;
        if let Err(e) = f.write_all(body.as_bytes()).and_then(|()| f.sync_data()) {
            drop(f);
            let _ = fs::remove_file(&tmp);
            return Err(CheckpointError::Io(e));
        }
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // A bare file name has an empty parent; the entry lives in the
        // current directory.
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        sync_dir(parent)?;
    }
    Ok(())
}

/// Reads checkpoint text from a file, verifying and stripping the trailing
/// checksum line when present. Files written before checksums existed
/// (no trailing `checksum` line) load unverified for compatibility.
///
/// # Errors
///
/// Propagates I/O errors; returns [`CheckpointError::Corrupt`] when the
/// recorded checksum does not match the contents.
pub fn load_from_file(path: impl AsRef<Path>) -> Result<String, CheckpointError> {
    verify_and_strip_checksum(fs::read_to_string(path)?)
}

fn verify_and_strip_checksum(raw: String) -> Result<String, CheckpointError> {
    let trimmed = raw.trim_end_matches('\n');
    let (body_end, last_line) = match trimmed.rfind('\n') {
        Some(idx) => (idx + 1, &trimmed[idx + 1..]),
        None => (0, trimmed),
    };
    let Some(hex) = last_line.strip_prefix(CHECKSUM_TAG) else {
        // Legacy checkpoint without an integrity line.
        return Ok(raw);
    };
    let expected = u64::from_str_radix(hex.trim(), 16)
        .map_err(|_| parse_err(format!("unreadable checksum line '{last_line}'")))?;
    let body = &raw[..body_end];
    let found = fnv1a64(body.as_bytes());
    if found != expected {
        return Err(CheckpointError::Corrupt { expected, found });
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::randn_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_round_trip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(&[3, 7, 2], Activation::Relu, Activation::Identity, &mut rng);
        let text = encode_mlp(&net);
        let back = decode_mlp(&text)?;
        let x = Mat::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.5, -0.4, 0.0]);
        assert_eq!(net.forward(&x), back.forward(&x));
        Ok(())
    }

    #[test]
    fn policy_round_trip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(2);
        let p = GaussianPolicy::new(6, &[16, 16], 2, &mut rng);
        let back = decode_policy(&encode_policy(&p))?;
        let obs = Mat::from_vec(3, 6, (0..18).map(|i| (i as f32 * 0.11).sin()).collect());
        assert_eq!(p.mean_action(&obs), back.mean_action(&obs));
        let noise = randn_mat(3, 2, &mut rng);
        let s1 = p.sample_with_noise(&obs, noise.clone());
        let s2 = back.sample_with_noise(&obs, noise);
        assert_eq!(s1.log_prob(), s2.log_prob());
        Ok(())
    }

    #[test]
    fn pnn_round_trip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(3);
        let base = GaussianPolicy::new(4, &[8, 8], 1, &mut rng);
        let pnn = PnnPolicy::new(base, crate::pnn::PnnInit::Random, &mut rng);
        let back = decode_pnn(&encode_pnn(&pnn))?;
        let obs = Mat::from_vec(2, 4, (0..8).map(|i| (i as f32 * 0.2).cos()).collect());
        assert_eq!(pnn.mean_action(&obs), back.mean_action(&obs));
        // Base column preserved too.
        assert_eq!(pnn.base().mean_action(&obs), back.base().mean_action(&obs));
        Ok(())
    }

    #[test]
    fn file_round_trip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(4);
        let p = GaussianPolicy::new(3, &[8], 1, &mut rng);
        let dir = std::env::temp_dir().join("drive-nn-test");
        let path = dir.join("policy.ckpt");
        save_to_file(&path, &encode_policy(&p))?;
        let text = load_from_file(&path)?;
        let back = decode_policy(&text)?;
        let obs = Mat::from_row(&[0.1, 0.2, 0.3]);
        assert_eq!(p.mean_action(&obs), back.mean_action(&obs));
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn saved_file_carries_verified_checksum() -> Result<(), CheckpointError> {
        let dir = std::env::temp_dir().join("drive-nn-checksum-test");
        let path = dir.join("net.ckpt");
        let mut rng = StdRng::seed_from_u64(6);
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let text = encode_mlp(&net);
        save_to_file(&path, &text)?;

        let on_disk = std::fs::read_to_string(&path)?;
        let Some(last) = on_disk.lines().last() else {
            panic!("saved file is empty");
        };
        assert!(
            last.starts_with(CHECKSUM_TAG),
            "missing checksum line: {last}"
        );
        // Loading strips the integrity line, returning decodable text.
        let loaded = load_from_file(&path)?;
        assert!(!loaded.contains(CHECKSUM_TAG));
        decode_mlp(&loaded)?;
        // No temp file left behind by the atomic rename.
        assert!(!path.with_file_name("net.ckpt.tmp").exists());

        // Flip a payload byte: the load must fail as Corrupt.
        let tampered = on_disk.replacen("linear", "linaer", 1);
        std::fs::write(&path, tampered)?;
        match load_from_file(&path) {
            Err(CheckpointError::Corrupt { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn legacy_file_without_checksum_still_loads() -> Result<(), CheckpointError> {
        let dir = std::env::temp_dir().join("drive-nn-legacy-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("legacy.ckpt");
        let mut rng = StdRng::seed_from_u64(7);
        let net = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, &mut rng);
        // Write raw text the way the pre-checksum code did.
        std::fs::write(&path, encode_mlp(&net))?;
        let loaded = load_from_file(&path)?;
        decode_mlp(&loaded)?;
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn adam_section_round_trips_mid_training() -> Result<(), CheckpointError> {
        // Train a few steps, checkpoint the optimizer, keep training both
        // copies: trajectories must stay bit-identical.
        let mut pa = vec![4.0f32, -2.0, 0.5];
        let mut opt = crate::adam::Adam::with_lr(0.03);
        let grad = |p: &[f32]| p.iter().map(|x| 2.0 * x).collect::<Vec<f32>>();
        for _ in 0..13 {
            let mut g = grad(&pa);
            opt.step(|f| f(&mut pa, &mut g));
        }
        let mut buf = String::new();
        encode_adam_into(&mut buf, &opt);
        let mut r = Reader::new(&buf);
        let mut back = decode_adam_from(&mut r)?;
        assert_eq!(back.steps(), opt.steps());
        assert_eq!(back.config, opt.config);
        let mut pb = pa.clone();
        for _ in 0..13 {
            let mut ga = grad(&pa);
            opt.step(|f| f(&mut pa, &mut ga));
            let mut gb = grad(&pb);
            back.step(|f| f(&mut pb, &mut gb));
        }
        assert_eq!(pa, pb);
        Ok(())
    }

    #[test]
    fn adam_version_mismatch_is_typed() {
        let mut opt = crate::adam::Adam::with_lr(0.01);
        let mut p = vec![1.0f32];
        let mut g = vec![0.5f32];
        opt.step(|f| f(&mut p, &mut g));
        let mut buf = String::new();
        encode_adam_into(&mut buf, &opt);
        let tampered = buf.replacen("adam v1", "adam v0", 1);
        let mut r = Reader::new(&tampered);
        match decode_adam_from(&mut r) {
            Err(CheckpointError::Version { found, expected }) => {
                assert_eq!(found, "v0");
                assert_eq!(expected, ADAM_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn save_creates_nested_dirs_and_fsyncs_durably() -> Result<(), CheckpointError> {
        // The durable path: parents created, temp file cleaned up, rename
        // completed, and the result loadable. (The dir-fsync itself cannot
        // be observed without crashing the kernel; this pins the code path
        // and that it succeeds on a freshly created directory chain.)
        let dir = std::env::temp_dir().join("drive-nn-durable-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep").join("nested").join("net.ckpt");
        let mut rng = StdRng::seed_from_u64(8);
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Identity, &mut rng);
        save_to_file(&path, &encode_mlp(&net))?;
        assert!(path.exists());
        assert!(!path.with_file_name("net.ckpt.tmp").exists());
        decode_mlp(&load_from_file(&path)?)?;
        // Overwriting an existing checkpoint goes through the same
        // tmp+rename path and must also leave no droppings.
        save_to_file(&path, &encode_mlp(&net))?;
        assert!(!path.with_file_name("net.ckpt.tmp").exists());
        // And syncing the parent directory directly works.
        sync_dir(path.parent().unwrap())?;
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn reader_usizes_parse_and_reject() {
        let mut r = Reader::new("1 2 3\n4 5\n");
        assert_eq!(r.usizes(5).unwrap(), vec![1, 2, 3, 4, 5]);
        let mut r = Reader::new("1 x 3\n");
        assert!(r.usizes(3).is_err());
        let mut r = Reader::new("1 2 3 4\n");
        assert!(r.usizes(3).is_err(), "over-count must error");
    }

    #[test]
    fn corrupted_text_errors_cleanly() {
        assert!(decode_mlp("garbage").is_err());
        assert!(decode_policy("policy x\n").is_err());
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, &mut rng);
        let text = encode_mlp(&net);
        // Truncate the float payload.
        let cut = &text[..text.len() / 2];
        assert!(decode_mlp(cut).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let Err(e) = decode_mlp("mlp zero") else {
            panic!("expected a parse error");
        };
        let msg = format!("{e}");
        assert!(msg.contains("invalid checkpoint"), "{msg}");
        let corrupt = CheckpointError::Corrupt {
            expected: 1,
            found: 2,
        };
        assert!(format!("{corrupt}").contains("corrupt checkpoint"));
    }
}
