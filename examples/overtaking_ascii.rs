//! Watch the modular agent slalom through traffic, rendered as ASCII
//! frames of the road around the ego vehicle (via `drive_sim::render`).
//!
//! ```sh
//! cargo run --release --example overtaking_ascii
//! ```

use ad_action_attacks::prelude::*;
use ad_action_attacks::sim::render::{render_strip, RenderConfig};

fn main() {
    let scenario = Scenario::default();
    let mut world = World::new(scenario);
    let mut agent = ModularAgent::new(ModularConfig::default(), 1);
    agent.reset(&world);
    let config = RenderConfig::default();
    while !world.is_done() {
        let a = agent.act(&world);
        world.step(a);
        if world.step_index().is_multiple_of(15) || world.is_done() {
            println!("{}\n", render_strip(&world, &config));
        }
    }
    println!(
        "episode over: {:?}, passed {}/6",
        world.termination(),
        world.passed_count()
    );
}
