//! Serving configuration.

use crate::ladder::LadderConfig;
use attack_core::detector::DetectorConfig;
use drive_agents::fallback::SafetyConfig;

/// Everything the serving layer needs to know besides the policy itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (the simulator models the same number of virtual
    /// workers).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Most requests a single inference batch may hold.
    pub max_batch: usize,
    /// How long a worker holds an incomplete batch open waiting for more
    /// requests, µs. The micro-batching deadline window: latency floor
    /// for lone requests, throughput lever under load.
    pub batch_window_us: u64,
    /// Default per-request deadline, µs.
    pub deadline_us: u64,
    /// Degradation ladder thresholds.
    pub ladder: LadderConfig,
    /// Perturbation detector settings (the [`crate::ladder::Rung::Full`]
    /// rung).
    pub detector: DetectorConfig,
    /// Fallback safety-controller gains (the bottom rung).
    pub safety: SafetyConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            batch_window_us: 2_000,
            deadline_us: 50_000,
            ladder: LadderConfig::default(),
            detector: DetectorConfig::default(),
            safety: SafetyConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for zero workers, zero capacity, a zero batch
    /// size, or a batch window longer than the request deadline (every
    /// lone request would expire while its batch waited).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("serve config: workers must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("serve config: queue_capacity must be >= 1".into());
        }
        if self.max_batch == 0 {
            return Err("serve config: max_batch must be >= 1".into());
        }
        if self.batch_window_us >= self.deadline_us {
            return Err(format!(
                "serve config: batch window {}us must be shorter than the deadline {}us",
                self.batch_window_us, self.deadline_us
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate().expect("default valid");
    }

    #[test]
    fn rejects_degenerate_configs() {
        for broken in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                batch_window_us: 60_000,
                deadline_us: 50_000,
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }
}
