//! Robustness sweep of the modular pipeline: drives 30 jittered episodes
//! of the default scenario and prints the passed-NPC histogram and
//! collision count. Useful when tuning the behaviour layer or the PID
//! gains.
//!
//! ```sh
//! cargo run --release -p drive-agents --example sweep
//! ```

use drive_agents::prelude::*;
use drive_sim::prelude::*;

fn main() {
    let scenario = Scenario::default();
    let mut pass_hist = [0usize; 7];
    let mut collisions = 0;
    for seed in 0..30u64 {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let rec = run_episode(&mut agent, &scenario, seed, None, |_, _, _| {});
        pass_hist[rec.passed.min(6)] += 1;
        if let Some(c) = rec.collision {
            collisions += 1;
            println!("seed {seed}: {:?} collision at step {}", c.kind, c.step);
        }
    }
    println!("pass histogram [0..=6]: {pass_hist:?}");
    println!("collisions: {collisions}/30");
    let mean: f64 = pass_hist
        .iter()
        .enumerate()
        .map(|(k, c)| k as f64 * *c as f64)
        .sum::<f64>()
        / 30.0;
    println!("mean passed: {mean:.2} (paper's modular agent passes all six nominally)");
}
