//! The end-to-end driving task as an RL environment.
//!
//! Observations are stacked semantic features, actions are the
//! `(nu, gamma)` variation pair of Eq. (1), and the reward is the shaped
//! nominal driving reward of [`crate::reward`]. An optional steering attack
//! closure lets `attack-core` train adversarially-hardened victims on the
//! same environment (Section VI-A).

use crate::reward::{RewardConfig, RewardShaper};
use drive_rl::env::{Env, EnvStep};
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::vehicle::Actuation;
use drive_sim::world::{Termination, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-step steering perturbation source for adversarial training.
pub type SteerAttack = Box<dyn FnMut(&World) -> f64>;

/// The freeway driving environment.
pub struct DrivingEnv {
    scenario: Scenario,
    features: FeatureConfig,
    world: World,
    extractor: FeatureExtractor,
    shaper: RewardShaper,
    attack: Option<SteerAttack>,
    record: EpisodeRecord,
}

impl std::fmt::Debug for DrivingEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrivingEnv")
            .field("scenario", &self.scenario)
            .field("step", &self.world.step_index())
            .field("attacked", &self.attack.is_some())
            .finish()
    }
}

impl DrivingEnv {
    /// Creates an environment over the given scenario and feature config.
    pub fn new(scenario: Scenario, features: FeatureConfig) -> Self {
        let world = World::new(scenario.clone());
        let lane = scenario.ego_lane;
        DrivingEnv {
            extractor: FeatureExtractor::new(features.clone()),
            shaper: RewardShaper::new(
                RewardConfig::default(),
                crate::behavior::BehaviorConfig::default(),
                lane,
            ),
            world,
            scenario,
            features,
            attack: None,
            record: EpisodeRecord::default(),
        }
    }

    /// Installs (or removes) a steering attack applied to every future step.
    pub fn set_attack(&mut self, attack: Option<SteerAttack>) {
        self.attack = attack;
    }

    /// The current world (read access for attack closures' bookkeeping).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The record of the episode in progress (or just finished).
    pub fn record(&self) -> &EpisodeRecord {
        &self.record
    }
}

impl Env for DrivingEnv {
    fn obs_dim(&self) -> usize {
        self.features.observation_dim()
    }

    fn action_dim(&self) -> usize {
        2
    }

    fn reset(&mut self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let episode = self.scenario.jittered(&mut rng);
        self.world = World::new(episode);
        self.extractor.reset();
        self.shaper.reset(&self.world);
        self.record = EpisodeRecord {
            dt: self.world.scenario().dt,
            ..EpisodeRecord::default()
        };
        self.extractor.observe(&self.world)
    }

    fn step(&mut self, action: &[f32]) -> EnvStep {
        assert_eq!(action.len(), 2, "driving actions are (steer, thrust)");
        assert!(
            !self.world.is_done(),
            "step called after episode end; reset first"
        );
        let delta = match self.attack.as_mut() {
            Some(f) => f(&self.world),
            None => 0.0,
        };
        let actuation = Actuation::new(action[0] as f64 + delta, action[1] as f64);
        let outcome = self.world.step(actuation);
        let reward = self.shaper.step(&self.world, &outcome) as f32;

        self.record.steps += 1;
        self.record.nominal_return += reward as f64;
        self.record.deviation.push(self.shaper.last_deviation());
        self.record.perturbation.push(delta.abs());
        if delta.abs() > drive_sim::record::ATTACK_START_THRESHOLD
            && self.record.attack_start.is_none()
        {
            self.record.attack_start = Some(outcome.step);
        }
        self.record.passed = outcome.passed;
        self.record.collision = outcome.collision;
        self.record.termination = outcome.termination;

        let done = matches!(
            outcome.termination,
            Some(Termination::Collision(_)) | Some(Termination::RoadEnd)
        );
        let truncated = matches!(outcome.termination, Some(Termination::TimeLimit));
        EnvStep {
            obs: self.extractor.observe(&self.world),
            reward,
            done,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_rl::env::rollout;

    fn env() -> DrivingEnv {
        DrivingEnv::new(Scenario::default(), FeatureConfig::default())
    }

    #[test]
    fn dims_and_reset() {
        let mut e = env();
        assert_eq!(e.obs_dim(), FeatureConfig::default().observation_dim());
        assert_eq!(e.action_dim(), 2);
        let obs = e.reset(0);
        assert_eq!(obs.len(), e.obs_dim());
    }

    #[test]
    fn coasting_episode_truncates_at_limit() {
        let mut e = env();
        // Steering 0 / thrust 0 coasts in the middle lane and rear-ends the
        // first NPC eventually; with thrust -1 it brakes and survives.
        let (ret, len) = rollout(&mut e, |_| vec![0.0, -1.0], 7);
        assert_eq!(len, Scenario::default().max_steps);
        assert!(ret.is_finite());
        assert!(e.record().collision.is_none());
    }

    #[test]
    fn attack_closure_is_applied_and_recorded() {
        let mut e = env();
        e.set_attack(Some(Box::new(|_| 0.5)));
        let _ = e.reset(3);
        let _ = e.step(&[0.0, 0.0]);
        assert_eq!(e.record().attack_start, Some(0));
        assert!((e.record().attack_effort() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn seeds_change_spawns() {
        let mut e = env();
        let o1 = e.reset(1);
        let o2 = e.reset(2);
        assert_ne!(o1, o2, "different jitter should alter observations");
        let o1b = e.reset(1);
        assert_eq!(o1, o1b, "same seed reproduces the episode");
    }

    #[test]
    #[should_panic(expected = "reset first")]
    fn stepping_after_done_panics() {
        let mut e = env();
        let _ = e.reset(0);
        for _ in 0..Scenario::default().max_steps + 1 {
            let _ = e.step(&[0.0, -1.0]);
        }
    }
}
