//! A minimal dense `f32` matrix for batched neural-network math.
//!
//! Row-major storage; rows index batch elements, columns index features.
//! Only the operations the training stack needs are provided — this is not a
//! general linear-algebra library.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a 1-row matrix from a slice (a single observation/action).
    pub fn from_row(row: &[f32]) -> Self {
        Mat::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Replaces every non-finite entry (NaN, ±∞) with zero and returns how
    /// many entries were replaced. A no-op scan on healthy data — used as a
    /// numeric guard at network entry points so one poisoned sensor value
    /// cannot propagate through a forward or backward pass.
    pub fn sanitize_nonfinite(&mut self) -> usize {
        let mut replaced = 0;
        for v in &mut self.data {
            if !v.is_finite() {
                *v = 0.0;
                replaced += 1;
            }
        }
        replaced
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — standard matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        // i-k-j loop order: sequential access of `other` rows.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` — product with the transpose of `other`, the common
    /// shape for `x @ W^T` linear layers without materializing a transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dims: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self^T @ other` — used for weight-gradient accumulation
    /// (`x^T @ grad_out`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dims: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.cols, other.cols);
        for b in 0..self.rows {
            let a_row = self.row(b);
            let o_row = other.row(b);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &g) in out_row.iter_mut().zip(o_row) {
                    *o += a * g;
                }
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds `row` to every row of the matrix (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Sum over rows, returning a `cols`-length vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hcat needs equal row counts");
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits columns at `at`, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.cols`.
    pub fn split_cols(&self, at: usize) -> (Mat, Mat) {
        assert!(at <= self.cols);
        let mut left = Mat::zeros(self.rows, at);
        let mut right = Mat::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Mean of all elements (e.g. of a column of losses).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let bt = {
            let mut t = Mat::zeros(3, 4);
            for r in 0..4 {
                for c in 0..3 {
                    t.set(c, r, b.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Mat::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        let b = Mat::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.5).collect());
        let at = {
            let mut t = Mat::zeros(2, 4);
            for r in 0..4 {
                for c in 0..2 {
                    t.set(c, r, a.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_ish() {
        let mut m = Mat::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.sum_rows(), vec![3.0, -6.0]);
    }

    #[test]
    fn hcat_and_split_round_trip() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Mat::from_vec(2, 1, vec![5., 6.]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 5.]);
        let (l, r) = c.split_cols(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn map_and_mean() {
        let mut m = Mat::from_vec(1, 4, vec![1., 2., 3., 4.]);
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_row_is_single_row() {
        let m = Mat::from_row(&[1.0, 2.0]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
    }

    #[test]
    fn sanitize_nonfinite_zeroes_only_bad_entries() {
        let mut m = Mat::from_vec(
            1,
            5,
            vec![1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -2.0],
        );
        assert_eq!(m.sanitize_nonfinite(), 3);
        assert_eq!(m.data(), &[1.0, 0.0, 0.0, 0.0, -2.0]);
        // Healthy data is untouched.
        assert_eq!(m.sanitize_nonfinite(), 0);
    }
}
