//! Process-wide simulation throughput counter.
//!
//! [`crate::world::World::step`] bumps a relaxed atomic on every advanced
//! control step, so harnesses can compute steps/sec across any number of
//! worker threads without plumbing counters through every call site. The
//! single relaxed `fetch_add` is noise next to a physics step.

use std::sync::atomic::{AtomicU64, Ordering};

static STEPS: AtomicU64 = AtomicU64::new(0);

/// Records `n` executed control steps.
#[inline]
pub fn record_steps(n: u64) {
    STEPS.fetch_add(n, Ordering::Relaxed);
}

/// Total control steps executed by this process so far.
pub fn steps() -> u64 {
    STEPS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = steps();
        record_steps(3);
        assert!(steps() >= before + 3);
    }

    #[test]
    fn world_step_records() {
        use crate::scenario::Scenario;
        use crate::vehicle::Actuation;
        let before = steps();
        let mut world = crate::world::World::new(Scenario::default());
        world.step(Actuation::new(0.0, 0.0));
        world.step(Actuation::new(0.0, 0.0));
        assert!(steps() >= before + 2);
    }
}
