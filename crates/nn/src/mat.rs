//! A minimal dense `f32` matrix for batched neural-network math.
//!
//! Row-major storage; rows index batch elements, columns index features.
//! Only the operations the training stack needs are provided — this is not a
//! general linear-algebra library.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a 1-row matrix from a slice (a single observation/action).
    pub fn from_row(row: &[f32]) -> Self {
        Mat::from_vec(1, row.len(), row.to_vec())
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Replaces every non-finite entry (NaN, ±∞) with zero and returns how
    /// many entries were replaced. A no-op scan on healthy data — used as a
    /// numeric guard at network entry points so one poisoned sensor value
    /// cannot propagate through a forward or backward pass.
    pub fn sanitize_nonfinite(&mut self) -> usize {
        let mut replaced = 0;
        for v in &mut self.data {
            if !v.is_finite() {
                *v = 0.0;
                replaced += 1;
            }
        }
        replaced
    }

    /// Reshapes the matrix in place to `rows x cols`, reusing the existing
    /// allocation where possible. Element contents are unspecified after the
    /// call — callers are expected to overwrite every entry (or use
    /// [`Mat::fill`] first). Intended for scratch buffers on hot paths.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Makes `self` an element-wise copy of `other`, reusing the existing
    /// allocation where possible.
    pub fn copy_from(&mut self, other: &Mat) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Makes `self` a 1-row copy of `row` (allocation-free [`Mat::from_row`]).
    pub fn copy_from_row(&mut self, row: &[f32]) {
        self.resize(1, row.len());
        self.data.copy_from_slice(row);
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — standard matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into `out` (resized and overwritten) —
    /// allocation-free when `out`'s buffer is already large enough.
    ///
    /// The inner loops are branch-free and unrolled over `chunks_exact`
    /// blocks of the inner dimension; each output element still accumulates
    /// its products in ascending-`k` order, so results are bit-identical to
    /// the naive triple loop. Note non-finite inputs propagate: `0.0 * NaN`
    /// is `NaN` here (use [`Mat::sanitize_nonfinite`] to guard entry points).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.cols);
        out.fill(0.0);
        let oc = other.cols;
        if oc == 0 {
            return;
        }
        // i-k-j loop order: sequential access of `other` rows; k unrolled
        // by 4 with one vectorizable j-sweep per unrolled block.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * oc..(i + 1) * oc];
            let a_quads = a_row.chunks_exact(4);
            let a_rem = a_quads.remainder();
            let b_quads = other.data.chunks_exact(4 * oc);
            let b_rem = b_quads.remainder();
            for (aq, bq) in a_quads.zip(b_quads) {
                let (b0, rest) = bq.split_at(oc);
                let (b1, rest) = rest.split_at(oc);
                let (b2, b3) = rest.split_at(oc);
                for (j, o) in out_row.iter_mut().enumerate() {
                    // Separate statements keep per-element accumulation in
                    // ascending-k order (bit-identical to the scalar loop).
                    *o += aq[0] * b0[j];
                    *o += aq[1] * b1[j];
                    *o += aq[2] * b2[j];
                    *o += aq[3] * b3[j];
                }
            }
            for (&a, b_row) in a_rem.iter().zip(b_rem.chunks_exact(oc)) {
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self @ other^T` — product with the transpose of `other`, the common
    /// shape for `x @ W^T` linear layers without materializing a transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self @ other^T` written into `out` (resized and overwritten) —
    /// allocation-free when `out`'s buffer is already large enough.
    ///
    /// Each dot product unrolls over `chunks_exact(4)` blocks but keeps a
    /// single accumulator updated in ascending order, so results are
    /// bit-identical to the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dims: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                let a_quads = a_row.chunks_exact(4);
                let a_rem = a_quads.remainder();
                let b_quads = b_row.chunks_exact(4);
                let b_rem = b_quads.remainder();
                for (aq, bq) in a_quads.zip(b_quads) {
                    acc += aq[0] * bq[0];
                    acc += aq[1] * bq[1];
                    acc += aq[2] * bq[2];
                    acc += aq[3] * bq[3];
                }
                for (a, b) in a_rem.iter().zip(b_rem) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
    }

    /// `self^T @ other` — used for weight-gradient accumulation
    /// (`x^T @ grad_out`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `acc += self^T @ other` — accumulates the weight-gradient product
    /// directly into an existing matrix (e.g. `grad_w`), avoiding the
    /// temporary that `add_assign(&a.matmul_tn(b))` would allocate.
    ///
    /// Accumulation per output element runs in ascending batch-row order,
    /// matching the naive loop bit-for-bit when `acc` starts at zero.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `acc` is not
    /// `self.cols x other.cols`.
    pub fn matmul_tn_acc(&self, other: &Mat, acc: &mut Mat) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dims: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (acc.rows, acc.cols),
            (self.cols, other.cols),
            "matmul_tn_acc accumulator shape"
        );
        for b in 0..self.rows {
            let a_row = self.row(b);
            let o_row = other.row(b);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut acc.data[i * other.cols..(i + 1) * other.cols];
                for (o, &g) in out_row.iter_mut().zip(o_row) {
                    *o += a * g;
                }
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds `row` to every row of the matrix (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Sum over rows, returning a `cols`-length vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hcat needs equal row counts");
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits columns at `at`, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.cols`.
    pub fn split_cols(&self, at: usize) -> (Mat, Mat) {
        assert!(at <= self.cols);
        let mut left = Mat::zeros(self.rows, at);
        let mut right = Mat::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Mean of all elements (e.g. of a column of losses).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

/// An empty `0x0` matrix — the natural seed for scratch buffers that are
/// resized on first use.
impl Default for Mat {
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let bt = {
            let mut t = Mat::zeros(3, 4);
            for r in 0..4 {
                for c in 0..3 {
                    t.set(c, r, b.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Mat::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        let b = Mat::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.5).collect());
        let at = {
            let mut t = Mat::zeros(2, 4);
            for r in 0..4 {
                for c in 0..2 {
                    t.set(c, r, a.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_ish() {
        let mut m = Mat::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.sum_rows(), vec![3.0, -6.0]);
    }

    #[test]
    fn hcat_and_split_round_trip() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Mat::from_vec(2, 1, vec![5., 6.]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 5.]);
        let (l, r) = c.split_cols(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn map_and_mean() {
        let mut m = Mat::from_vec(1, 4, vec![1., 2., 3., 4.]);
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_row_is_single_row() {
        let m = Mat::from_row(&[1.0, 2.0]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
    }

    /// Regression for the removed zero-skip: IEEE-754 says `0.0 * NaN` is
    /// `NaN`, but the old `if a == 0.0 { continue }` branch silently
    /// dropped the product, masking poisoned operands. The kernels must
    /// surface the NaN so `sanitize_nonfinite` can catch it downstream.
    #[test]
    fn matmul_propagates_nan_through_zero_coefficients() {
        let a = Mat::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Mat::from_vec(2, 1, vec![f32::NAN, 2.0]);
        let mut c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0.0 * NaN must propagate in matmul");

        let t = Mat::from_vec(2, 1, vec![0.0, 1.0]);
        let g = Mat::from_vec(2, 1, vec![f32::NAN, 3.0]);
        let d = t.matmul_tn(&g);
        assert!(
            d.get(0, 0).is_nan(),
            "0.0 * NaN must propagate in matmul_tn"
        );

        // The numeric guard then catches what the kernel surfaced.
        assert_eq!(c.sanitize_nonfinite(), 1);
        assert_eq!(c.data(), &[0.0]);
    }

    #[test]
    fn into_variants_match_allocating_kernels_after_reuse() {
        let a = Mat::from_vec(3, 5, (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect());
        let b = Mat::from_vec(5, 4, (0..20).map(|i| (i as f32) * -0.21 + 1.5).collect());
        let bt = Mat::from_vec(4, 5, (0..20).map(|i| (i as f32) * 0.11).collect());

        // Deliberately mis-shaped, dirty scratch buffers: `_into` must
        // resize and fully overwrite them.
        let mut out = Mat::from_vec(1, 2, vec![9.9, -9.9]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        a.matmul_nt_into(&bt, &mut out);
        assert_eq!(out, a.matmul_nt(&bt));
    }

    #[test]
    fn matmul_tn_acc_accumulates_on_top() {
        let a = Mat::from_vec(3, 2, (0..6).map(|i| i as f32).collect());
        let g = Mat::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.5).collect());
        let mut acc = a.matmul_tn(&g);
        let once = acc.clone();
        a.matmul_tn_acc(&g, &mut acc);
        for (twice, one) in acc.data().iter().zip(once.data()) {
            assert_eq!(*twice, one * 2.0);
        }
    }

    #[test]
    fn resize_and_copy_helpers_reuse_buffers() {
        let mut m = Mat::zeros(2, 3);
        m.resize(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        m.fill(7.0);
        assert!(m.data().iter().all(|&v| v == 7.0));

        let src = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        m.copy_from(&src);
        assert_eq!(m, src);
        m.copy_from_row(&[4.0, 5.0]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
        assert_eq!(m.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn sanitize_nonfinite_zeroes_only_bad_entries() {
        let mut m = Mat::from_vec(
            1,
            5,
            vec![1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -2.0],
        );
        assert_eq!(m.sanitize_nonfinite(), 3);
        assert_eq!(m.data(), &[1.0, 0.0, 0.0, 0.0, -2.0]);
        // Healthy data is untouched.
        assert_eq!(m.sanitize_nonfinite(), 0);
    }
}
