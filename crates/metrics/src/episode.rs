//! Aggregation over sets of [`EpisodeRecord`]s — the quantities each figure
//! of the paper reports.

use crate::agg::{mean, BoxStats};
use drive_sim::record::EpisodeRecord;
use serde::{Deserialize, Serialize};

/// Summary of a batch of episodes under one (agent, attacker, budget) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Box statistics of the nominal driving reward (Fig. 4a / Fig. 6).
    pub nominal: BoxStats,
    /// Box statistics of the cumulative adversarial reward (Fig. 4b).
    pub adversarial: BoxStats,
    /// Side-collision success rate (Section V / Fig. 8).
    pub success_rate: f64,
    /// Rate of any collision.
    pub collision_rate: f64,
    /// Mean NPC vehicles passed.
    pub mean_passed: f64,
    /// Mean trajectory-deviation RMSE.
    pub mean_deviation_rmse: f64,
    /// Mean attack effort.
    pub mean_effort: f64,
    /// Episode count.
    pub episodes: usize,
}

impl CellSummary {
    /// Aggregates a non-empty batch of records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn from_records(records: &[EpisodeRecord]) -> Self {
        assert!(!records.is_empty(), "cell summary needs records");
        let nominal: Vec<f64> = records.iter().map(|r| r.nominal_return).collect();
        let adversarial: Vec<f64> = records.iter().map(|r| r.adv_return).collect();
        let n = records.len() as f64;
        CellSummary {
            nominal: BoxStats::from_samples(&nominal),
            adversarial: BoxStats::from_samples(&adversarial),
            success_rate: records.iter().filter(|r| r.attack_success()).count() as f64 / n,
            collision_rate: records.iter().filter(|r| r.collision.is_some()).count() as f64 / n,
            mean_passed: mean(&records.iter().map(|r| r.passed as f64).collect::<Vec<_>>()),
            mean_deviation_rmse: mean(
                &records
                    .iter()
                    .map(|r| r.deviation_rmse())
                    .collect::<Vec<_>>(),
            ),
            mean_effort: mean(
                &records
                    .iter()
                    .map(|r| r.attack_effort())
                    .collect::<Vec<_>>(),
            ),
            episodes: records.len(),
        }
    }
}

/// One scatter point of Fig. 5 / Fig. 7: an episode's mean attack effort
/// against its trajectory-deviation RMSE, marked by attack success.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Mean attack effort (x-axis).
    pub effort: f64,
    /// Deviation RMSE (y-axis).
    pub deviation_rmse: f64,
    /// Whether the episode ended in the attacker's side collision
    /// (red triangle vs black dot in the paper).
    pub success: bool,
}

/// Extracts the Fig. 5 / Fig. 7 scatter from records.
pub fn scatter_points(records: &[EpisodeRecord]) -> Vec<ScatterPoint> {
    records
        .iter()
        .map(|r| ScatterPoint {
            effort: r.attack_effort(),
            deviation_rmse: r.deviation_rmse(),
            success: r.attack_success(),
        })
        .collect()
}

/// The §V-B timing statistic: mean and minimum attack-to-collision time
/// over successful attacks, seconds. `None` when no attack succeeded.
pub fn time_to_collision_stats(records: &[EpisodeRecord]) -> Option<(f64, f64)> {
    let times: Vec<f64> = records
        .iter()
        .filter(|r| r.attack_success())
        .filter_map(|r| r.time_to_collision())
        .collect();
    if times.is_empty() {
        return None;
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    Some((mean(&times), min))
}

/// The effort level above which successful attacks dominate, in the
/// paper's windowed sense: points are binned into effort windows of width
/// 0.1, and the dominance threshold is the lower edge of the first window
/// from which every non-empty window has a success rate of at least
/// `threshold`. `None` when success never dominates.
pub fn dominance_threshold(points: &[ScatterPoint], threshold: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let width = 0.1;
    let max_effort = points.iter().map(|p| p.effort).fold(0.0f64, f64::max);
    let bins = ((max_effort / width).floor() as usize) + 1;
    let mut total = vec![0usize; bins];
    let mut wins = vec![0usize; bins];
    for p in points {
        let i = ((p.effort / width).floor() as usize).min(bins - 1);
        total[i] += 1;
        if p.success {
            wins[i] += 1;
        }
    }
    // Scan from the top down, keeping the longest suffix of windows that
    // all dominate (empty windows are neutral).
    let mut candidate = None;
    for i in (0..bins).rev() {
        if total[i] == 0 {
            continue;
        }
        let rate = wins[i] as f64 / total[i] as f64;
        if rate >= threshold {
            candidate = Some(i as f64 * width);
        } else {
            break;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::world::{CollisionEvent, CollisionKind};

    fn rec(nominal: f64, adv: f64, side: bool) -> EpisodeRecord {
        EpisodeRecord {
            steps: 10,
            dt: 0.1,
            nominal_return: nominal,
            adv_return: adv,
            collision: side.then_some(CollisionEvent {
                kind: CollisionKind::Side,
                npc_index: Some(0),
                step: 5,
            }),
            attack_start: Some(2),
            deviation: vec![0.1; 10],
            perturbation: vec![0.5; 10],
            passed: 3,
            termination: None,
            nonfinite_actions: 0,
        }
    }

    #[test]
    fn cell_summary_aggregates() {
        let records = vec![rec(100.0, -1.0, false), rec(50.0, 20.0, true)];
        let c = CellSummary::from_records(&records);
        assert_eq!(c.episodes, 2);
        assert_eq!(c.success_rate, 0.5);
        assert_eq!(c.collision_rate, 0.5);
        assert_eq!(c.mean_passed, 3.0);
        assert!((c.nominal.mean - 75.0).abs() < 1e-12);
        assert!((c.mean_effort - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scatter_marks_success() {
        let pts = scatter_points(&[rec(0.0, 0.0, true), rec(0.0, 0.0, false)]);
        assert!(pts[0].success);
        assert!(!pts[1].success);
        assert!((pts[0].deviation_rmse - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ttc_stats_only_over_successes() {
        let records = vec![rec(0.0, 0.0, true), rec(0.0, 0.0, false)];
        let (mean_t, min_t) = time_to_collision_stats(&records).unwrap();
        // Collision at step 5, attack start 2, dt 0.1 → 0.3 s.
        assert!((mean_t - 0.3).abs() < 1e-12);
        assert!((min_t - 0.3).abs() < 1e-12);
        assert_eq!(time_to_collision_stats(&[rec(0.0, 0.0, false)]), None);
    }

    #[test]
    fn dominance_threshold_finds_crossover() {
        let pts = vec![
            ScatterPoint {
                effort: 0.11,
                deviation_rmse: 0.0,
                success: false,
            },
            ScatterPoint {
                effort: 0.31,
                deviation_rmse: 0.0,
                success: false,
            },
            ScatterPoint {
                effort: 0.51,
                deviation_rmse: 0.0,
                success: true,
            },
            ScatterPoint {
                effort: 0.71,
                deviation_rmse: 0.0,
                success: true,
            },
        ];
        let t = dominance_threshold(&pts, 0.5).unwrap();
        assert!((t - 0.5).abs() < 1e-9, "threshold {t}");
        assert_eq!(
            dominance_threshold(
                &[ScatterPoint {
                    effort: 0.2,
                    deviation_rmse: 0.0,
                    success: false
                }],
                0.5
            ),
            None
        );
        assert_eq!(dominance_threshold(&[], 0.5), None);
    }

    #[test]
    fn dominance_ignores_low_effort_successes_below_break() {
        // A lone early success does not extend the dominated suffix past a
        // failing window.
        let pts = vec![
            ScatterPoint {
                effort: 0.05,
                deviation_rmse: 0.0,
                success: true,
            },
            ScatterPoint {
                effort: 0.25,
                deviation_rmse: 0.0,
                success: false,
            },
            ScatterPoint {
                effort: 0.45,
                deviation_rmse: 0.0,
                success: true,
            },
        ];
        let t = dominance_threshold(&pts, 0.5).unwrap();
        assert!((t - 0.4).abs() < 1e-9, "threshold {t}");
    }
}
