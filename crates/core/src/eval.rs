//! Evaluation harness: runs victim/attacker pairings and fills complete
//! [`EpisodeRecord`]s — including the cumulative adversarial reward — for
//! the metrics layer.

use crate::adv_reward::AdvReward;
use drive_agents::runner::{run_episode_with_faults, SteerAttacker};
use drive_agents::Agent;
use drive_sim::faults::FaultInjector;
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;

/// Runs one attacked episode, computing both the nominal driving reward
/// (inside the runner) and the cumulative adversarial reward.
pub fn run_attacked_episode(
    agent: &mut dyn Agent,
    attacker: Option<&mut dyn SteerAttacker>,
    adv: &AdvReward,
    scenario: &Scenario,
    seed: u64,
) -> EpisodeRecord {
    run_attacked_episode_with_faults(agent, attacker, adv, scenario, seed, None)
}

/// [`run_attacked_episode`] with an optional actuation-side fault injector
/// in the loop (see `drive-agents::runner::run_episode_with_faults`).
/// Sensor-side faults are configured on the agent itself (e.g.
/// [`crate::detector::DetectorSimplexAgent::with_observation_faults`]).
pub fn run_attacked_episode_with_faults(
    agent: &mut dyn Agent,
    attacker: Option<&mut dyn SteerAttacker>,
    adv: &AdvReward,
    scenario: &Scenario,
    seed: u64,
    faults: Option<&mut FaultInjector>,
) -> EpisodeRecord {
    let mut adv_return = 0.0;
    let mut record = run_episode_with_faults(
        agent,
        scenario,
        seed,
        attacker,
        faults,
        |world, outcome, delta| {
            adv_return += adv.step(world, outcome, delta);
        },
    );
    record.adv_return = adv_return;
    record
}

/// Runs `episodes` attacked episodes with seeds `base_seed..`.
///
/// `make_attacker` builds a fresh attacker per episode (or `None` for the
/// nominal case); this keeps per-episode attacker state (sensor windows,
/// RNG streams) independent and reproducible.
pub fn run_attacked_episodes<A, F>(
    agent: &mut dyn Agent,
    mut make_attacker: F,
    adv: &AdvReward,
    scenario: &Scenario,
    episodes: usize,
    base_seed: u64,
) -> Vec<EpisodeRecord>
where
    A: SteerAttacker,
    F: FnMut(u64) -> Option<A>,
{
    (0..episodes)
        .map(|e| {
            let seed = base_seed + e as u64;
            let mut attacker = make_attacker(seed);
            run_attacked_episode(
                agent,
                attacker.as_mut().map(|a| a as &mut dyn SteerAttacker),
                adv,
                scenario,
                seed,
            )
        })
        .collect()
}

/// Parallel [`run_attacked_episodes`]: runs the same seed grid across
/// worker threads, building a **fresh agent per episode** via
/// `make_agent`.
///
/// Because each episode gets a fresh agent and a fresh attacker, the
/// results are identical to the serial loop whenever the agent's
/// episode-start `reset` fully reinitializes it (true for the repo's
/// agents: evaluation policies act deterministically, so their RNGs are
/// never drawn). Records come back in seed order for any worker count —
/// see `drive_par::par_map`.
pub fn par_run_attacked_episodes<G, A, F>(
    make_agent: G,
    make_attacker: F,
    adv: &AdvReward,
    scenario: &Scenario,
    episodes: usize,
    base_seed: u64,
) -> Vec<EpisodeRecord>
where
    G: Fn(u64) -> Box<dyn Agent> + Sync,
    A: SteerAttacker,
    F: Fn(u64) -> Option<A> + Sync,
{
    let seeds: Vec<u64> = (0..episodes).map(|e| base_seed + e as u64).collect();
    drive_par::par_map(&seeds, |_, &seed| {
        let mut agent = make_agent(seed);
        let mut attacker = make_attacker(seed);
        run_attacked_episode(
            agent.as_mut(),
            attacker.as_mut().map(|a| a as &mut dyn SteerAttacker),
            adv,
            scenario,
            seed,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::AttackBudget;
    use crate::oracle::OracleAttacker;
    use drive_agents::modular::{ModularAgent, ModularConfig};

    /// The parallel factory-based runner must reproduce the serial
    /// shared-agent loop byte-for-byte (the agents reset fully between
    /// episodes, so fresh-per-episode agents are equivalent).
    #[test]
    fn par_episodes_match_serial_episodes() {
        let adv = AdvReward::default();
        let scenario = Scenario::default();
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let serial = run_attacked_episodes(
            &mut agent,
            |_| Some(OracleAttacker::new(AttackBudget::new(0.5))),
            &adv,
            &scenario,
            4,
            300,
        );
        for workers in [1usize, 3] {
            let par = drive_par::with_jobs(workers, || {
                par_run_attacked_episodes(
                    |_| Box::new(ModularAgent::new(ModularConfig::default(), 1)) as Box<dyn Agent>,
                    |_| Some(OracleAttacker::new(AttackBudget::new(0.5))),
                    &adv,
                    &scenario,
                    4,
                    300,
                )
            });
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn nominal_episode_has_negative_adv_return_and_no_attack() {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let adv = AdvReward::default();
        let rec = run_attacked_episode(&mut agent, None, &adv, &Scenario::default(), 0);
        assert!(rec.collision.is_none());
        // No collision bonus: the nominal case nets at most incidental
        // alongside-potential, far below a successful attack's return.
        assert!(rec.adv_return < AdvReward::default().config.collision_reward);
        assert_eq!(rec.attack_effort(), 0.0);
    }

    #[test]
    fn oracle_attack_scores_higher_than_nominal() {
        let adv = AdvReward::default();
        let scenario = Scenario::default();
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let nominal = run_attacked_episodes(
            &mut agent,
            |_| None::<OracleAttacker>,
            &adv,
            &scenario,
            5,
            0,
        );
        let attacked = run_attacked_episodes(
            &mut agent,
            |_| Some(OracleAttacker::new(AttackBudget::new(1.0))),
            &adv,
            &scenario,
            5,
            0,
        );
        let mean = |rs: &[drive_sim::record::EpisodeRecord]| {
            rs.iter().map(|r| r.adv_return).sum::<f64>() / rs.len() as f64
        };
        assert!(
            mean(&attacked) > mean(&nominal),
            "attacked {} vs nominal {}",
            mean(&attacked),
            mean(&nominal)
        );
        // The full-budget oracle also wrecks the nominal driving reward.
        let nom_ret = nominal.iter().map(|r| r.nominal_return).sum::<f64>() / 5.0;
        let atk_ret = attacked.iter().map(|r| r.nominal_return).sum::<f64>() / 5.0;
        assert!(atk_ret < nom_ret);
    }
}
