//! Fig. 4 — attack effects under various attack configurations.
//!
//! Box plots over 30 episodes per cell of (a) the nominal driving reward
//! and (b) the cumulative adversarial reward, for the camera- and
//! IMU-based attacks against the end-to-end victim across budgets
//! `{0, 0.25, 0.5, 0.75, 1.0}`. The headline statistic is the ≈84 %
//! nominal-reward reduction of the full-budget camera attack.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records, AgentKind};
use attack_core::budget::AttackBudget;
use attack_core::sensor::SensorKind;
use drive_metrics::agg::BoxStats;
use drive_metrics::episode::CellSummary;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, fmt_pct, Table};
use drive_metrics::svg::box_plot_svg;
use std::sync::Arc;

/// One (sensor, budget) cell.
#[derive(Debug, Clone)]
pub struct Fig4Cell {
    /// Attacker sensor.
    pub sensor: SensorKind,
    /// Attack budget `epsilon`.
    pub budget: f64,
    /// Aggregated episode statistics.
    pub summary: CellSummary,
}

/// Full Fig. 4 result.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// All cells, ordered by sensor then budget.
    pub cells: Vec<Fig4Cell>,
    /// `1 - mean(nominal | camera, eps=1) / mean(nominal | eps=0)` —
    /// the paper reports ≈0.84.
    pub camera_full_budget_reduction: f64,
}

impl Fig4Result {
    /// The cell for a given sensor and budget, if present.
    pub fn cell(&self, sensor: SensorKind, budget: f64) -> Option<&Fig4Cell> {
        self.cells
            .iter()
            .find(|c| c.sensor == sensor && (c.budget - budget).abs() < 1e-9)
    }
}

/// Runs (or reuses) the Fig. 4 experiment via the context memo.
///
/// The 10 (sensor, budget) cells are independent — each builds its own
/// victim and attacker off its own seed namespace
/// (`root/fig4/<sensor>/eps<budget>`) — so they run in parallel via
/// `drive_par::par_map`, which keeps the cell order (and thus the CSV)
/// byte-identical to a serial run for any `DRIVE_JOBS`.
pub fn run(ctx: &RunContext) -> Arc<Fig4Result> {
    ctx.memo("fig4", || {
        let ns = ctx.seeds_for("fig4");
        let mut grid = Vec::new();
        for (sensor, policy) in [
            (SensorKind::Camera, &ctx.artifacts.camera_attacker),
            (SensorKind::Imu, &ctx.artifacts.imu_attacker),
        ] {
            for budget in AttackBudget::fig4_grid() {
                grid.push((sensor, policy, budget));
            }
        }
        let cells = drive_par::par_map(&grid, |_, &(sensor, policy, budget)| {
            let seeds = ns
                .child(sensor)
                .child(format!("eps{:.2}", budget.epsilon()));
            let records = attacked_records(
                AgentKind::E2e,
                Some((policy, sensor)),
                budget,
                ctx,
                ctx.scale.box_episodes,
                &seeds,
            );
            Fig4Cell {
                sensor,
                budget: budget.epsilon(),
                summary: CellSummary::from_records(&records),
            }
        });
        let nominal = cells
            .iter()
            .find(|c| c.budget == 0.0)
            .expect("grid contains zero budget")
            .summary
            .nominal
            .mean;
        let attacked = cells
            .iter()
            .find(|c| c.sensor == SensorKind::Camera && (c.budget - 1.0).abs() < 1e-9)
            .expect("grid contains full budget")
            .summary
            .nominal
            .mean;
        let camera_full_budget_reduction = if nominal.abs() > 1e-9 {
            1.0 - attacked / nominal
        } else {
            0.0
        };
        Fig4Result {
            cells,
            camera_full_budget_reduction,
        }
    })
}

impl Fig4Result {
    /// Exports all cells as CSV (one row per sensor/budget cell).
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "sensor",
            "budget",
            "nominal_min",
            "nominal_q1",
            "nominal_median",
            "nominal_q3",
            "nominal_max",
            "nominal_mean",
            "adv_min",
            "adv_q1",
            "adv_median",
            "adv_q3",
            "adv_max",
            "adv_mean",
            "success_rate",
            "mean_passed",
            "episodes",
        ]);
        for c in &self.cells {
            let n = &c.summary.nominal;
            let a = &c.summary.adversarial;
            csv.row([
                c.sensor.to_string(),
                format!("{:.2}", c.budget),
                format!("{:.3}", n.min),
                format!("{:.3}", n.q1),
                format!("{:.3}", n.median),
                format!("{:.3}", n.q3),
                format!("{:.3}", n.max),
                format!("{:.3}", n.mean),
                format!("{:.3}", a.min),
                format!("{:.3}", a.q1),
                format!("{:.3}", a.median),
                format!("{:.3}", a.q3),
                format!("{:.3}", a.max),
                format!("{:.3}", a.mean),
                format!("{:.3}", c.summary.success_rate),
                format!("{:.3}", c.summary.mean_passed),
                c.summary.episodes.to_string(),
            ]);
        }
        csv
    }

    /// Builds the two Fig. 4 box plots (nominal / adversarial reward).
    pub fn to_svgs(&self) -> Vec<(String, String)> {
        let budgets: Vec<String> = AttackBudget::fig4_grid()
            .iter()
            .map(|b| format!("{b}"))
            .collect();
        let pick_series = |nominal: bool| -> Vec<(String, Vec<BoxStats>)> {
            [SensorKind::Camera, SensorKind::Imu]
                .into_iter()
                .map(|sensor| {
                    let boxes = AttackBudget::fig4_grid()
                        .iter()
                        .filter_map(|b| self.cell(sensor, b.epsilon()))
                        .map(|c| {
                            if nominal {
                                c.summary.nominal
                            } else {
                                c.summary.adversarial
                            }
                        })
                        .collect();
                    (sensor.to_string(), boxes)
                })
                .collect()
        };
        vec![
            (
                "fig4a_nominal".to_string(),
                box_plot_svg(
                    "Fig. 4a — nominal driving reward vs attack budget",
                    &budgets,
                    &pick_series(true),
                    "attack budget",
                    "nominal driving reward",
                ),
            ),
            (
                "fig4b_adversarial".to_string(),
                box_plot_svg(
                    "Fig. 4b — adversarial reward vs attack budget",
                    &budgets,
                    &pick_series(false),
                    "attack budget",
                    "cumulative adversarial reward",
                ),
            ),
        ]
    }
}

/// Registry entry for Fig. 4.
pub struct Fig4Experiment;

impl Experiment for Fig4Experiment {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "Attack effects vs budget for camera and IMU attacks on the end-to-end victim"
    }

    fn cells(&self) -> usize {
        10
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("fig4".to_string(), r.to_csv())],
            svgs: r.to_svgs(),
        }
    }
}

impl std::fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 4 — attack effects vs budget (victim: end-to-end agent)"
        )?;
        let mut t = Table::new([
            "attack",
            "eps",
            "nominal mean",
            "nominal med",
            "passed",
            "adv mean",
            "adv med",
            "success",
        ]);
        for c in &self.cells {
            t.row([
                c.sensor.to_string(),
                fmt_f(c.budget, 2),
                fmt_f(c.summary.nominal.mean, 1),
                fmt_f(c.summary.nominal.median, 1),
                fmt_f(c.summary.mean_passed, 2),
                fmt_f(c.summary.adversarial.mean, 1),
                fmt_f(c.summary.adversarial.median, 1),
                fmt_pct(c.summary.success_rate),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "camera attack at eps=1.0 reduces the nominal driving reward by {} (paper: ~84%)",
            fmt_pct(self.camera_full_budget_reduction)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig4_produces_full_grid() {
        let dir = std::env::temp_dir().join("repro-bench-fig4-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.cells.len(), 10, "2 sensors x 5 budgets");
        assert!(result.cell(SensorKind::Camera, 1.0).is_some());
        assert!(result.cell(SensorKind::Imu, 0.25).is_some());
        let text = format!("{result}");
        assert!(text.contains("Fig. 4"));
        assert_eq!(result.to_csv().len(), 10);
        assert!(text.contains("camera"));
        assert!(text.contains("imu"));
        let svgs = result.to_svgs();
        assert_eq!(svgs.len(), 2);
        assert!(svgs.iter().all(|(_, s)| s.starts_with("<svg")));
    }
}
