//! Regenerates the paper's ablations report. See `repro_bench::cli`.

fn main() {
    repro_bench::cli::run_experiment("ablations");
}
