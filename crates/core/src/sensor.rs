//! The attacker's observation sources (Section IV-C).
//!
//! The camera-based attacker sees stacked semantic features (wide-FOV
//! roof camera); the IMU-based attacker sees only the inertial window
//! (longitudinal acceleration + yaw rate at 20 sps over 3.2 s) — less
//! informative, nearly impossible to notice. One enum serves both so the
//! attack environment, the learned attacker, and the harnesses stay
//! sensor-agnostic.

use drive_sim::sensors::{FeatureConfig, FeatureExtractor, Imu, ImuConfig};
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which sensor the attacker deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Extra roof camera → semantic features.
    Camera,
    /// Hidden IMU → inertial window.
    Imu,
}

impl std::fmt::Display for SensorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorKind::Camera => write!(f, "camera"),
            SensorKind::Imu => write!(f, "imu"),
        }
    }
}

/// A stateful attacker sensor.
#[derive(Debug, Clone)]
pub enum AttackerSensor {
    /// Semantic-feature camera.
    Camera(FeatureExtractor),
    /// Inertial window with its noise source.
    Imu {
        /// The IMU model.
        imu: Imu,
        /// Noise RNG (reseeded per episode).
        rng: StdRng,
        /// Base seed for per-episode noise reseeding.
        base_seed: u64,
        /// Episodes started so far (noise stream selector).
        episodes: u64,
    },
}

impl AttackerSensor {
    /// Creates a camera sensor with the given feature configuration.
    pub fn camera(features: FeatureConfig) -> Self {
        AttackerSensor::Camera(FeatureExtractor::new(features))
    }

    /// Creates an IMU sensor.
    pub fn imu(config: ImuConfig, noise_seed: u64) -> Self {
        AttackerSensor::Imu {
            imu: Imu::new(config),
            rng: StdRng::seed_from_u64(noise_seed),
            base_seed: noise_seed,
            episodes: 0,
        }
    }

    /// Which kind of sensor this is.
    pub fn kind(&self) -> SensorKind {
        match self {
            AttackerSensor::Camera(_) => SensorKind::Camera,
            AttackerSensor::Imu { .. } => SensorKind::Imu,
        }
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        match self {
            AttackerSensor::Camera(fx) => fx.config().observation_dim(),
            AttackerSensor::Imu { imu, .. } => imu.config().observation_dim(),
        }
    }

    /// Clears per-episode state (stacked frames / inertial window).
    pub fn reset(&mut self) {
        match self {
            AttackerSensor::Camera(fx) => fx.reset(),
            AttackerSensor::Imu {
                imu,
                rng,
                base_seed,
                episodes,
            } => {
                imu.reset();
                *episodes += 1;
                *rng = StdRng::seed_from_u64(base_seed.wrapping_add(*episodes));
            }
        }
    }

    /// Produces the observation for the current world state. Call exactly
    /// once per control step (both sensors are stateful).
    ///
    /// Allocates the returned vector; hot loops should hold a reused
    /// buffer and call [`AttackerSensor::observe_into`] instead.
    pub fn observe(&mut self, world: &World) -> Vec<f32> {
        let mut out = Vec::new();
        self.observe_into(world, &mut out);
        out
    }

    /// [`AttackerSensor::observe`], writing into `out` (cleared first).
    pub fn observe_into(&mut self, world: &World, out: &mut Vec<f32>) {
        match self {
            AttackerSensor::Camera(fx) => fx.observe_into(world, out),
            AttackerSensor::Imu { imu, rng, .. } => {
                imu.record(world, rng);
                imu.window_into(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::Scenario;
    use drive_sim::vehicle::Actuation;

    #[test]
    fn dims_match_configs() {
        let cam = AttackerSensor::camera(FeatureConfig::default());
        assert_eq!(cam.obs_dim(), FeatureConfig::default().observation_dim());
        assert_eq!(cam.kind(), SensorKind::Camera);
        let imu = AttackerSensor::imu(ImuConfig::default(), 0);
        assert_eq!(imu.obs_dim(), 128);
        assert_eq!(imu.kind(), SensorKind::Imu);
    }

    #[test]
    fn observe_tracks_world() {
        let mut world = World::new(Scenario::default());
        let mut cam = AttackerSensor::camera(FeatureConfig::default());
        let mut imu = AttackerSensor::imu(ImuConfig::default(), 1);
        let o1c = cam.observe(&world);
        let o1i = imu.observe(&world);
        world.step(Actuation::new(0.3, 1.0));
        let o2c = cam.observe(&world);
        let o2i = imu.observe(&world);
        assert_ne!(o1c, o2c);
        assert_ne!(o1i, o2i);
        assert_eq!(o1c.len(), cam.obs_dim());
        assert_eq!(o1i.len(), imu.obs_dim());
    }

    #[test]
    fn imu_reset_reseeds_noise_deterministically() {
        let run = || {
            let mut world = World::new(Scenario::default());
            let mut imu = AttackerSensor::imu(ImuConfig::default(), 7);
            imu.reset();
            world.step(Actuation::new(0.1, 0.5));
            imu.observe(&world)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn camera_reset_clears_stack() {
        let world = World::new(Scenario::default());
        let mut cam = AttackerSensor::camera(FeatureConfig::default());
        let a = cam.observe(&world);
        cam.observe(&world);
        cam.reset();
        let b = cam.observe(&world);
        assert_eq!(a, b);
    }
}
