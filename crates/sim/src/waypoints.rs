//! Waypoint paths and path-generation primitives.
//!
//! The modular pipeline plans "safe and legal driving waypoints" (the green
//! arrows of the paper's Fig. 1a) and its PID controllers track them; the
//! end-to-end agent's shaped reward also uses the same privileged path
//! (Section III-C). This module provides the shared path representation,
//! lane-keeping and lane-change path generators, and projection queries
//! (cross-track error, heading error).

use crate::geometry::{angle_diff, Vec2};
use crate::road::Road;
use serde::{Deserialize, Serialize};

/// One sample of a planned path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this sample, radians.
    pub heading: f64,
    /// Desired speed at this sample, m/s.
    pub target_speed: f64,
}

/// Result of projecting a query point onto a [`Path`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathProjection {
    /// Index of the nearest waypoint.
    pub index: usize,
    /// Signed lateral offset from the path, positive to the left of travel.
    pub cross_track: f64,
    /// Heading error `query_heading - path_heading`, radians in `[-pi, pi)`.
    pub heading_error: f64,
    /// Target speed at the nearest waypoint.
    pub target_speed: f64,
}

/// A polyline of waypoints, ordered by increasing longitudinal position.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Path {
    points: Vec<Waypoint>,
}

impl Path {
    /// Creates a path from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: Vec<Waypoint>) -> Self {
        assert!(
            !points.is_empty(),
            "path must contain at least one waypoint"
        );
        Path { points }
    }

    /// The waypoints in order.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.points
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the path has no waypoints (never true for a constructed path).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Projects a pose onto the path.
    ///
    /// Finds the nearest waypoint, then computes the signed cross-track
    /// error relative to that waypoint's tangent and the heading error.
    pub fn project(&self, position: Vec2, heading: f64) -> PathProjection {
        // Argmin by squared distance: monotone in the true distance, so the
        // winning index matches an argmin by `hypot` (exact ties keep the
        // first index under both metrics) while the scan skips a libm call
        // per waypoint. Two phases — an index-free 4-chain min reduction
        // (ILP-friendly; `f64::min` is a single instruction) and then a
        // first-index-equal scan — return exactly the sequential
        // first-minimum index, because the scan compares the very same
        // f64 values. This runs once per slot-step in the fleet's reward
        // shaping, so the scalar-fold latency chain matters.
        assert!(!self.points.is_empty(), "path is non-empty");
        let pts = &self.points[..];
        let d_at = |w: &Waypoint| (w.position - position).norm_sq();
        let (mut m0, mut m1, mut m2, mut m3) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut chunks = pts.chunks_exact(4);
        for c in &mut chunks {
            m0 = m0.min(d_at(&c[0]));
            m1 = m1.min(d_at(&c[1]));
            m2 = m2.min(d_at(&c[2]));
            m3 = m3.min(d_at(&c[3]));
        }
        for w in chunks.remainder() {
            m0 = m0.min(d_at(w));
        }
        let best = m0.min(m1).min(m2).min(m3);
        let index = pts
            .iter()
            .position(|w| d_at(w) == best)
            // All-NaN distances leave `best` at infinity with no exact
            // match; the sequential fold would keep index 0 there too.
            .unwrap_or(0);
        let w = self.points[index];
        let to_query = position - w.position;
        // Signed lateral offset: positive when the query point is to the
        // left of the path tangent.
        let cross_track = Vec2::from_angle(w.heading).cross(to_query);
        PathProjection {
            index,
            cross_track,
            heading_error: angle_diff(heading, w.heading),
            target_speed: w.target_speed,
        }
    }

    /// Returns the waypoint `lookahead` samples past the nearest one
    /// (saturating at the end of the path). This is the classic pure-pursuit
    /// style target used by the lateral PID controller.
    pub fn lookahead(&self, position: Vec2, lookahead: usize) -> Waypoint {
        let proj = self.project(position, 0.0);
        let idx = (proj.index + lookahead).min(self.points.len() - 1);
        self.points[idx]
    }

    /// Shifts every waypoint laterally by `dy`, in place (headings and
    /// speeds are unchanged). Used for the planner's wide-berth bias.
    pub fn offset_lateral(&mut self, dy: f64) {
        for w in &mut self.points {
            w.position.y += dy;
        }
    }

    /// Replaces this path's waypoints with a copy of `other`'s, reusing
    /// the existing buffer. Allocation-free once the buffer has grown to
    /// `other.len()`.
    pub fn copy_from(&mut self, other: &Path) {
        self.points.clear();
        self.points.extend_from_slice(&other.points);
    }

    /// Pre-allocates capacity for `n` waypoints (used by planners that
    /// memoize a path so the cache never allocates mid-episode).
    pub fn with_capacity(n: usize) -> Self {
        Path {
            points: Vec::with_capacity(n),
        }
    }
}

/// Smoothstep-style quintic blend: 0 at `u = 0`, 1 at `u = 1`, with zero
/// first and second derivatives at both ends. This is the standard smooth
/// lateral profile for a comfortable lane change.
pub fn quintic_blend(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    u * u * u * (10.0 + u * (-15.0 + 6.0 * u))
}

/// Generates a lane-keeping path along `lane`, starting at `x0`, with `n`
/// samples spaced `spacing` meters apart.
///
/// # Panics
///
/// Panics if `n == 0` or `spacing <= 0`.
pub fn lane_keep_path(
    road: &Road,
    lane: usize,
    x0: f64,
    n: usize,
    spacing: f64,
    speed: f64,
) -> Path {
    let mut out = Path::default();
    lane_keep_path_into(road, lane, x0, n, spacing, speed, &mut out);
    out
}

/// [`lane_keep_path`], writing into `out` (cleared first) so the waypoint
/// buffer can be reused across control steps without reallocating.
///
/// # Panics
///
/// Panics if `n == 0` or `spacing <= 0`.
pub fn lane_keep_path_into(
    road: &Road,
    lane: usize,
    x0: f64,
    n: usize,
    spacing: f64,
    speed: f64,
    out: &mut Path,
) {
    assert!(
        n > 0 && spacing > 0.0,
        "need n > 0 samples and positive spacing"
    );
    let y = road.lane_center_y(lane);
    out.points.clear();
    out.points.extend((0..n).map(|i| Waypoint {
        position: Vec2::new(x0 + i as f64 * spacing, y),
        heading: 0.0,
        target_speed: speed,
    }));
}

/// Generates a lane-change path: starting from lateral position `y0` at
/// `x0`, blending into the center of `target_lane` over `change_distance`
/// meters, then continuing straight until `n` samples are produced.
///
/// The lateral profile is a quintic blend, so the generated headings are
/// continuous and settle back to zero.
///
/// # Panics
///
/// Panics if `n == 0`, `spacing <= 0`, or `change_distance <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn lane_change_path(
    road: &Road,
    y0: f64,
    target_lane: usize,
    x0: f64,
    change_distance: f64,
    n: usize,
    spacing: f64,
    speed: f64,
) -> Path {
    let mut out = Path::default();
    lane_change_path_into(
        road,
        y0,
        target_lane,
        x0,
        change_distance,
        n,
        spacing,
        speed,
        &mut out,
    );
    out
}

/// [`lane_change_path`], writing into `out` (cleared first) so the waypoint
/// buffer can be reused across control steps without reallocating.
///
/// # Panics
///
/// Panics if `n == 0`, `spacing <= 0`, or `change_distance <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn lane_change_path_into(
    road: &Road,
    y0: f64,
    target_lane: usize,
    x0: f64,
    change_distance: f64,
    n: usize,
    spacing: f64,
    speed: f64,
    out: &mut Path,
) {
    assert!(
        n > 0 && spacing > 0.0,
        "need n > 0 samples and positive spacing"
    );
    assert!(change_distance > 0.0, "change distance must be positive");
    let y1 = road.lane_center_y(target_lane);
    let dy = y1 - y0;
    out.points.clear();
    out.points.extend((0..n).map(|i| {
        let x = x0 + i as f64 * spacing;
        let u = ((x - x0) / change_distance).clamp(0.0, 1.0);
        let y = y0 + dy * quintic_blend(u);
        // Tangent from the derivative of the blend.
        let du = 1.0 / change_distance;
        let dblend = {
            let u = u.clamp(0.0, 1.0);
            30.0 * u * u * (1.0 - u) * (1.0 - u)
        };
        let slope = dy * dblend * du;
        Waypoint {
            position: Vec2::new(x, y),
            heading: slope.atan(),
            target_speed: speed,
        }
    }));
}

/// Generates a topology-aware route along `lane`: identical to
/// [`lane_keep_path`] on lanes that run the whole road, but when `lane`
/// ends ([`Road::lane_end_x`]) the path blends into the merge target
/// lane's center over the `merge_lookahead` meters before the deadline.
///
/// # Panics
///
/// Panics if `n == 0`, `spacing <= 0`, or `merge_lookahead <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn route_path(
    road: &Road,
    lane: usize,
    x0: f64,
    n: usize,
    spacing: f64,
    speed: f64,
    merge_lookahead: f64,
) -> Path {
    let mut out = Path::default();
    route_path_into(road, lane, x0, n, spacing, speed, merge_lookahead, &mut out);
    out
}

/// [`route_path`], writing into `out` (cleared first) so the waypoint
/// buffer can be reused across control steps without reallocating.
///
/// # Panics
///
/// Panics if `n == 0`, `spacing <= 0`, or `merge_lookahead <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn route_path_into(
    road: &Road,
    lane: usize,
    x0: f64,
    n: usize,
    spacing: f64,
    speed: f64,
    merge_lookahead: f64,
    out: &mut Path,
) {
    assert!(merge_lookahead > 0.0, "merge lookahead must be positive");
    let Some(end) = road.lane_end_x(lane) else {
        lane_keep_path_into(road, lane, x0, n, spacing, speed, out);
        return;
    };
    assert!(
        n > 0 && spacing > 0.0,
        "need n > 0 samples and positive spacing"
    );
    let y0 = road.lane_center_y(lane);
    let y1 = road.lane_center_y(road.merge_target(lane));
    let dy = y1 - y0;
    let blend_start = end - merge_lookahead;
    out.points.clear();
    out.points.extend((0..n).map(|i| {
        let x = x0 + i as f64 * spacing;
        let u = ((x - blend_start) / merge_lookahead).clamp(0.0, 1.0);
        let y = y0 + dy * quintic_blend(u);
        let dblend = 30.0 * u * u * (1.0 - u) * (1.0 - u);
        let slope = dy * dblend / merge_lookahead;
        Waypoint {
            position: Vec2::new(x, y),
            heading: slope.atan(),
            target_speed: speed,
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn road() -> Road {
        Road::default()
    }

    #[test]
    fn quintic_blend_endpoints_and_monotone() {
        assert_eq!(quintic_blend(0.0), 0.0);
        assert_eq!(quintic_blend(1.0), 1.0);
        assert_eq!(quintic_blend(-1.0), 0.0);
        assert_eq!(quintic_blend(2.0), 1.0);
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = quintic_blend(i as f64 / 100.0);
            assert!(v >= prev - 1e-12, "blend must be monotone");
            prev = v;
        }
    }

    #[test]
    fn lane_keep_path_stays_on_center() {
        let r = road();
        let p = lane_keep_path(&r, 1, 0.0, 20, 2.0, 16.0);
        assert_eq!(p.len(), 20);
        for w in p.waypoints() {
            assert!((w.position.y - r.lane_center_y(1)).abs() < 1e-12);
            assert_eq!(w.heading, 0.0);
            assert_eq!(w.target_speed, 16.0);
        }
    }

    #[test]
    fn lane_change_path_reaches_target_lane() {
        let r = road();
        let y0 = r.lane_center_y(0);
        let p = lane_change_path(&r, y0, 1, 0.0, 40.0, 40, 2.0, 16.0);
        let last = p.waypoints().last().unwrap();
        assert!((last.position.y - r.lane_center_y(1)).abs() < 1e-9);
        // Heading returns to straight at the end.
        assert!(last.heading.abs() < 1e-9);
        // Mid-change heading is positive (moving left).
        let mid = p.waypoints()[10];
        assert!(mid.heading > 0.0);
    }

    #[test]
    fn projection_cross_track_sign() {
        let r = road();
        let p = lane_keep_path(&r, 1, 0.0, 50, 2.0, 16.0);
        let y_center = r.lane_center_y(1);
        // Left of the path: positive cross-track.
        let proj = p.project(Vec2::new(10.0, y_center + 0.5), 0.0);
        assert!(proj.cross_track > 0.49 && proj.cross_track < 0.51);
        // Right of the path: negative.
        let proj = p.project(Vec2::new(10.0, y_center - 0.5), 0.0);
        assert!(proj.cross_track < -0.49);
    }

    #[test]
    fn projection_heading_error() {
        let r = road();
        let p = lane_keep_path(&r, 1, 0.0, 50, 2.0, 16.0);
        let proj = p.project(Vec2::new(10.0, 0.0), 0.2);
        assert!((proj.heading_error - 0.2).abs() < 1e-12);
    }

    #[test]
    fn lookahead_saturates_at_path_end() {
        let r = road();
        let p = lane_keep_path(&r, 0, 0.0, 10, 2.0, 16.0);
        let w = p.lookahead(Vec2::new(100.0, r.lane_center_y(0)), 50);
        assert_eq!(w.position, p.waypoints()[9].position);
    }

    #[test]
    fn projection_picks_nearest_index() {
        let r = road();
        let p = lane_keep_path(&r, 0, 0.0, 50, 2.0, 16.0);
        let proj = p.project(Vec2::new(21.0, r.lane_center_y(0)), 0.0);
        // x = 21 with spacing 2 → nearest sample index 10 or 11.
        assert!(proj.index == 10 || proj.index == 11);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_path_rejected() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn route_path_on_straight_equals_lane_keep() {
        let r = road();
        let keep = lane_keep_path(&r, 1, 5.0, 30, 2.0, 16.0);
        let route = route_path(&r, 1, 5.0, 30, 2.0, 16.0, 60.0);
        assert_eq!(keep.waypoints(), route.waypoints());
    }

    #[test]
    fn route_path_merges_off_the_ramp() {
        let r = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        let p = route_path(&r, 3, 0.0, 150, 2.0, 10.0, 60.0);
        let first = p.waypoints().first().unwrap();
        let last = p.waypoints().last().unwrap();
        // Starts on the ramp center, ends on lane 0's center, level.
        assert!((first.position.y - r.lane_center_y(3)).abs() < 1e-12);
        assert!((last.position.y - r.lane_center_y(0)).abs() < 1e-9);
        assert!(last.heading.abs() < 1e-9);
        // The merge completes by the deadline.
        let at_deadline = p
            .waypoints()
            .iter()
            .find(|w| w.position.x >= 250.0)
            .unwrap();
        assert!((at_deadline.position.y - r.lane_center_y(0)).abs() < 1e-9);
    }

    #[test]
    fn into_builders_match_allocating_builders_and_reuse_capacity() {
        let r = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        let mut out = Path::default();
        lane_keep_path_into(&r, 1, 3.0, 40, 2.0, 16.0, &mut out);
        assert_eq!(
            out.waypoints(),
            lane_keep_path(&r, 1, 3.0, 40, 2.0, 16.0).waypoints()
        );
        let cap = out.points.capacity();
        lane_change_path_into(
            &r,
            r.lane_center_y(1),
            2,
            5.0,
            30.0,
            40,
            2.0,
            16.0,
            &mut out,
        );
        assert_eq!(
            out.waypoints(),
            lane_change_path(&r, r.lane_center_y(1), 2, 5.0, 30.0, 40, 2.0, 16.0).waypoints()
        );
        route_path_into(&r, 3, 0.0, 40, 2.0, 10.0, 60.0, &mut out);
        assert_eq!(
            out.waypoints(),
            route_path(&r, 3, 0.0, 40, 2.0, 10.0, 60.0).waypoints()
        );
        assert_eq!(out.points.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn offset_lateral_shifts_positions_only() {
        let r = road();
        let mut p = lane_keep_path(&r, 1, 0.0, 10, 2.0, 16.0);
        let before: Vec<_> = p.waypoints().to_vec();
        p.offset_lateral(0.7);
        for (w, b) in p.waypoints().iter().zip(&before) {
            assert_eq!(w.position.x, b.position.x);
            assert_eq!(w.position.y, b.position.y + 0.7);
            assert_eq!(w.heading, b.heading);
            assert_eq!(w.target_speed, b.target_speed);
        }
    }

    #[test]
    fn route_path_merges_before_lane_drop() {
        let r = Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0);
        let p = route_path(&r, 2, 200.0, 80, 2.0, 12.0, 60.0);
        let last = p.waypoints().last().unwrap();
        assert!((last.position.y - r.lane_center_y(1)).abs() < 1e-9);
    }
}
