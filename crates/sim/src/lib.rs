#![warn(missing_docs)]

//! # drive-sim — deterministic freeway driving simulator
//!
//! A 2-D substitute for the CARLA scenario of *"Susceptibility of Autonomous
//! Driving Agents to Learning-Based Action-Space Attacks"* (DSN 2023): a
//! straight multi-lane freeway, a kinematic-bicycle ego vehicle whose
//! actuation follows the paper's Eq. (1) first-order smoothing, six slower
//! NPC vehicles to overtake, collision detection with side / rear-end /
//! barrier classification, and the attacker-relevant sensors (semantic
//! features / occupancy camera, IMU window).
//!
//! The simulation is fully deterministic given a scenario and a seed; every
//! experiment in this repository is reproducible bit-for-bit.
//!
//! ```
//! use drive_sim::prelude::*;
//!
//! let mut world = World::new(Scenario::default());
//! // Coast straight for one control step (0.1 s).
//! let out = world.step(Actuation::new(0.0, 0.0));
//! assert_eq!(out.step, 0);
//! assert!(out.collision.is_none());
//! ```

pub mod batch;
pub mod faults;
pub mod generate;
pub mod geometry;
pub mod npc;
pub mod perf;
pub mod record;
pub mod render;
pub mod road;
pub mod scenario;
pub mod sensors;
pub mod trace;
pub mod vehicle;
pub mod waypoints;
pub mod world;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::batch::{Precision, WorldBatch};
    pub use crate::faults::{
        FaultInjector, FaultKind, FaultSchedule, FaultSpec, FaultStats, FaultedCamera,
        FaultedFeatureExtractor, FaultedImu,
    };
    pub use crate::generate::{
        GeneratedScenario, ScenarioAxes, SpeedMix, TopologyKind, TrafficDensity,
    };
    pub use crate::geometry::{normalize_angle, Obb, Pose, Vec2};
    pub use crate::npc::{LeadInfo, Npc};
    pub use crate::record::EpisodeRecord;
    pub use crate::render::{render_strip, RenderConfig};
    pub use crate::road::{Road, RoadTopology};
    pub use crate::scenario::{NpcSpawn, Scenario, ScenarioSpec};
    pub use crate::sensors::{
        FeatureConfig, FeatureExtractor, Imu, ImuConfig, SemanticCamera, SemanticClass,
    };
    pub use crate::trace::{EpisodeTrace, StepTrace, VehicleSnapshot};
    pub use crate::vehicle::{Actuation, Vehicle, VehicleParams};
    pub use crate::waypoints::{
        lane_change_path, lane_keep_path, route_path, Path, PathProjection, Waypoint,
    };
    pub use crate::world::{
        classify_contact, CollisionEvent, CollisionKind, RelativeGeometry, StepOutcome,
        Termination, World,
    };
}
