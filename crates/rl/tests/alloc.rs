//! Regression test: `Sac::update_batch` performs zero heap allocations
//! once its persistent scratches have warmed up.
//!
//! The whole point of `UpdateScratch` (and the `_into`/`_with` kernel
//! variants under it) is that steady-state SAC training never touches the
//! allocator. A counting `#[global_allocator]` wrapping the system
//! allocator makes that a hard invariant instead of a benchmark hope: the
//! counters are thread-local, so other test threads can't pollute the
//! measurement.

use drive_rl::replay::{Batch, ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events on this thread.
/// Only `alloc`/`realloc` count — frees are irrelevant to the invariant.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping around it is a
// thread-local counter bump with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn update_batch_is_allocation_free_after_warmup() {
    let mut rng = StdRng::seed_from_u64(42);
    // actor_delay 0 so the very first update already exercises the actor
    // and temperature paths (warming the Adam moment buffers too).
    let cfg = SacConfig {
        batch_size: 32,
        actor_delay: 0,
        ..SacConfig::default()
    };
    let mut sac = Sac::new(6, 2, &[16, 16], cfg, &mut rng);

    let mut rb = ReplayBuffer::new(256, 6, 2);
    for _ in 0..128 {
        let obs: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let action: Vec<f32> = (0..2).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let next_obs: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        rb.push(Transition {
            obs,
            action,
            reward: rng.gen_range(-1.0f32..1.0),
            next_obs,
            terminal: rng.gen::<f32>() < 0.1,
        });
    }
    // One fixed batch: the invariant under test is update_batch itself,
    // not replay sampling.
    let mut batch = Batch::default();
    rb.sample_into(cfg.batch_size, &mut rng, &mut batch);

    // Warm-up: first call sizes every scratch buffer and lazily creates
    // the Adam moment vectors; a second call catches stragglers.
    sac.update_batch(&batch, &mut rng);
    sac.update_batch(&batch, &mut rng);

    let before = allocs();
    for _ in 0..10 {
        let losses = sac.update_batch(&batch, &mut rng);
        assert!(losses.q1_loss.is_finite());
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "Sac::update_batch allocated {} times across 10 warmed-up calls",
        after - before
    );
}
