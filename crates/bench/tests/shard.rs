//! Sharded multi-process integration tests: the kill matrix.
//!
//! Four `repro_bench shard` worker processes race the scenario-matrix
//! grid in one shared directory while SIGKILLs land at randomized
//! points; killed workers are replaced, stale leases are stolen, and
//! `repro_bench merge` must assemble CSVs/SVGs/manifests byte-identical
//! to an uninterrupted single-process golden run. The merge must also
//! exit nonzero on an injected conflicting sidecar (naming both owners)
//! and on a deleted (missing) cell. A separate test covers the polite
//! path: SIGTERM drains a worker at a cell boundary, exits 130, and
//! releases every held lease.

#![cfg(unix)]

use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use repro_bench::manifest::Manifest;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

/// One quick-trained artifact cache shared by every test in this file and
/// by every worker subprocess (they load it instead of retraining).
fn setup() -> (&'static Artifacts, &'static PipelineConfig) {
    static SETUP: OnceLock<(Artifacts, PipelineConfig)> = OnceLock::new();
    let (a, c) = SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join("repro-bench-shard-artifacts");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    });
    (a, c)
}

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-bench-shard-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn base_cmd() -> Command {
    let (_, config) = setup();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro_bench"));
    cmd.env_remove("REPRO_SCALE");
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    // Every subcommand below shares the pipeline flags; paper evaluation
    // scale over quick artifacts gives a multi-second window for kills.
    let _ = config;
    cmd
}

/// A worker process joining `dir`. Short TTL so survivors steal a killed
/// worker's leases within the test's patience.
fn worker_cmd(dir: &Path, worker: &str) -> Command {
    let (_, config) = setup();
    let mut cmd = base_cmd();
    cmd.arg("shard")
        .arg(dir)
        .arg("scenario-matrix")
        .arg("--quick")
        .arg("--ttl-ms")
        .arg("1000")
        .arg("--worker")
        .arg(worker)
        .arg("--artifacts")
        .arg(&config.dir);
    cmd
}

fn merge_cmd(dir: &Path, out: &Path) -> Command {
    let (_, config) = setup();
    let mut cmd = base_cmd();
    cmd.arg("merge")
        .arg(dir)
        .arg("--out")
        .arg(out)
        .arg("--quick")
        .arg("--artifacts")
        .arg(&config.dir);
    cmd
}

/// Same outputs-match contract as the resume tests: identical CSV/SVG
/// bytes, manifests listing identical outputs. Wall-clock fields are
/// run-dependent and excluded.
fn assert_outputs_match(golden: &Path, other: &Path) {
    let mut names: Vec<String> = fs::read_dir(golden)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".csv") || n.ends_with(".svg") || n.ends_with(".manifest.json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden run produced no outputs");
    for name in &names {
        let g = golden.join(name);
        let o = other.join(name);
        if name.ends_with(".manifest.json") {
            let gm = Manifest::load(&g).unwrap();
            let om = Manifest::load(&o).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(gm.outputs, om.outputs, "{name}: output lists differ");
            assert_eq!(gm.seed_root, om.seed_root, "{name}");
        } else {
            let gb = fs::read(&g).unwrap();
            let ob = fs::read(&o).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(gb, ob, "{name}: bytes differ from the golden run");
        }
    }
}

#[test]
fn kill_matrix_four_workers_merge_matches_single_process_golden() {
    setup();

    // Golden: one uninterrupted single-process run, journal disabled.
    let golden = out_dir("km-golden");
    let (_, config) = setup();
    let status = base_cmd()
        .arg("scenario-matrix")
        .arg("--quick")
        .arg("--csv")
        .arg(&golden)
        .arg("--svg")
        .arg(&golden)
        .arg("--no-journal")
        .arg("--artifacts")
        .arg(&config.dir)
        .status()
        .expect("spawn golden run");
    assert!(status.success(), "golden run failed: {status}");

    // Kill matrix: keep a fleet of 4 workers on the shared directory,
    // SIGKILL randomly chosen workers at randomized delays (respawning
    // replacements), until at least 3 genuine kills have landed.
    let shared = out_dir("km-shared");
    let mut fleet: Vec<Child> = Vec::new();
    let mut spawned = 0usize;
    let mut kills = 0usize;
    let mut attempts = 0usize;
    let mut completed_ok = false;
    let mut lcg: u64 = 0x0dd5_eed5_0fac_e011 ^ 0x5eed;
    while kills < 3 {
        attempts += 1;
        assert!(
            attempts <= 16,
            "needed more than 16 attempts to land 3 kills"
        );
        while fleet.len() < 4 {
            spawned += 1;
            fleet.push(
                worker_cmd(&shared, &format!("w{spawned}"))
                    .spawn()
                    .expect("spawn worker"),
            );
        }
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let delay = 150 + (lcg >> 33) % 450; // 150..600 ms
        std::thread::sleep(Duration::from_millis(delay));
        // Reap finished workers first: an exit 0 proves its completing
        // pass saw every cell published.
        let mut alive = Vec::new();
        for mut child in fleet.drain(..) {
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "worker failed: {status}");
                    completed_ok = true;
                }
                None => alive.push(child),
            }
        }
        fleet = alive;
        if fleet.is_empty() {
            continue; // everyone finished before this kill; respawn and retry
        }
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let victim = (lcg >> 33) as usize % fleet.len();
        let mut child = fleet.swap_remove(victim);
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");
        kills += 1;
    }
    // Let the survivors finish, then guarantee completion with one final
    // worker: it steals any stale leases the kills left behind, computes
    // whatever is still unpublished, and exits 0 only once the whole
    // grid is on disk.
    for mut child in fleet.drain(..) {
        let status = child.wait().expect("reap survivor");
        assert!(status.success(), "surviving worker failed: {status}");
        completed_ok = true;
    }
    if !completed_ok {
        // every worker was killed before any completed
        let status = worker_cmd(&shared, "w-final")
            .status()
            .expect("spawn finisher");
        assert!(status.success(), "finisher worker failed: {status}");
    }

    // Merge and compare byte-for-byte against the golden run.
    let merged = out_dir("km-merged");
    let status = merge_cmd(&shared, &merged).status().expect("spawn merge");
    assert!(status.success(), "merge failed: {status}");
    assert_outputs_match(&golden, &merged);

    // The shard bookkeeping is in place: a header, no leaked leases
    // (completion releases them; stolen ones were consumed), per-worker
    // WALs and progress logs.
    assert!(shared.join("shard.header").exists());
    let leases: Vec<_> = fs::read_dir(shared.join("leases"))
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "lease"))
                .collect()
        })
        .unwrap_or_default();
    assert!(leases.is_empty(), "no leases survive a completed run");
    assert!(shared.join("workers").join("w1").join("wal.bin").exists());
    assert!(shared
        .join("workers")
        .join("w1")
        .join("progress.csv")
        .exists());

    // Injected conflict: a valid sidecar for an existing key but with
    // different records (another cell's), under a new owner. The merge
    // must refuse, naming both owners.
    let cells: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = fs::read_dir(shared.join("cells"))
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        v.sort();
        v
    };
    assert!(cells.len() >= 2, "kill-matrix run published sidecars");
    let victim_name = cells[0].file_name().unwrap().to_string_lossy().into_owned();
    let victim_key = &victim_name["cell-".len().."cell-".len() + 16];
    let donor = cells
        .iter()
        .find(|p| {
            !p.file_name()
                .unwrap()
                .to_string_lossy()
                .contains(victim_key)
        })
        .expect("a sidecar for a different cell");
    fs::copy(
        donor,
        shared
            .join("cells")
            .join(format!("cell-{victim_key}-evil.ckpt")),
    )
    .unwrap();
    let conflict_out = out_dir("km-conflict-merged");
    let output = merge_cmd(&shared, &conflict_out)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn conflict merge");
    assert!(
        !output.status.success(),
        "merge must fail on a conflicting sidecar"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("conflicting") && stderr.contains("evil"),
        "conflict report names the injected owner:\n{stderr}"
    );
    assert!(
        stderr.contains(victim_key),
        "conflict report names the cell key:\n{stderr}"
    );

    // Remove the injected sidecar AND the victim's real one: now the
    // cell is missing entirely, and the merge must say which one.
    fs::remove_file(
        shared
            .join("cells")
            .join(format!("cell-{victim_key}-evil.ckpt")),
    )
    .unwrap();
    fs::remove_file(&cells[0]).unwrap();
    let missing_out = out_dir("km-missing-merged");
    let output = merge_cmd(&shared, &missing_out)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn missing merge");
    assert!(
        !output.status.success(),
        "merge must fail on a missing cell"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no published sidecar"),
        "missing-cell report:\n{stderr}"
    );
}

/// Sends a real SIGTERM (std's `Child::kill` is SIGKILL on unix).
fn sigterm(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let rc = unsafe { kill(child.id() as i32, 15) };
    assert_eq!(rc, 0, "kill(pid, SIGTERM) failed");
}

/// A polite SIGTERM mid-run must exit 130 after draining: the worker
/// unwinds at the next safe point and its drain hook releases every held
/// lease, so no `.lease` files survive and a successor worker never
/// waits out the TTL. The successor then completes the run.
#[test]
fn sigterm_drains_shard_worker_and_releases_leases() {
    setup();
    let shared = out_dir("term-shared");
    let mut landed = false;
    let mut attempts = 0;
    while !landed {
        attempts += 1;
        assert!(attempts <= 8, "could not land a mid-run SIGTERM in 8 tries");
        // Long TTL: released leases must come from the drain hook, not
        // from TTL expiry.
        let (_, config) = setup();
        let mut cmd = base_cmd();
        cmd.arg("shard")
            .arg(&shared)
            .arg("scenario-matrix")
            .arg("--quick")
            .arg("--ttl-ms")
            .arg("60000")
            .arg("--worker")
            .arg(format!("term{attempts}"))
            .arg("--artifacts")
            .arg(&config.dir)
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn worker");
        std::thread::sleep(Duration::from_millis(400));
        match child.try_wait().expect("try_wait") {
            None => {
                sigterm(&child);
                let output = child.wait_with_output().expect("reap");
                assert_eq!(
                    output.status.code(),
                    Some(130),
                    "graceful interruption exits 130 (status: {})",
                    output.status
                );
                landed = true;
            }
            Some(status) => assert!(status.success(), "early completion failed: {status}"),
        }
    }
    let leases: Vec<_> = fs::read_dir(shared.join("leases"))
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "lease"))
                .map(|e| e.path())
                .collect()
        })
        .unwrap_or_default();
    assert!(
        leases.is_empty(),
        "drain hook releases every held lease on SIGTERM: {leases:?}"
    );

    // A successor worker completes the run from the published sidecars.
    let status = worker_cmd(&shared, "w-successor")
        .status()
        .expect("spawn successor");
    assert!(status.success(), "successor worker failed: {status}");
    let merged = out_dir("term-merged");
    let status = merge_cmd(&shared, &merged).status().expect("spawn merge");
    assert!(status.success(), "merge after SIGTERM recovery: {status}");
}
