//! Property tests of the latency histogram: for ANY sample set, the
//! histogram's quantile estimate must land inside the bucket of the exact
//! nearest-rank quantile (i.e. "within one bucket of exact"), and merging
//! split histograms must be indistinguishable from recording everything
//! into one.

use drive_metrics::histo::{bucket_bounds, LatencyHistogram};
use proptest::prelude::*;

const QUANTILES: [f64; 8] = [0.0, 0.001, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0];

/// Exact nearest-rank quantile of an unsorted sample set.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Widens raw byte-sized draws across latency magnitudes: mixes exact
/// small values, microsecond/millisecond scales, and huge outliers.
fn stretch(raw: &[i64]) -> Vec<u64> {
    raw.iter()
        .enumerate()
        .map(|(i, &v)| {
            let v = v as u64;
            match i % 4 {
                0 => v % 64,                  // exact buckets
                1 => v % 1_000_000,           // sub-millisecond
                2 => (v % 1_000) * 1_000_000, // millisecond scale
                _ => v,                       // full u64 range
            }
        })
        .collect()
}

proptest! {
    /// Histogram quantiles are never more than one bucket from exact:
    /// every estimate falls within the bucket bounds of the exact
    /// nearest-rank sample.
    #[test]
    fn quantile_estimates_land_in_the_exact_value_bucket(
        raw in proptest::collection::vec(any::<i64>(), 1..200)
    ) {
        let samples = stretch(&raw);
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        for &q in &QUANTILES {
            let exact = exact_quantile(&samples, q);
            let est = h.quantile(q);
            let (lo, hi) = bucket_bounds(exact);
            prop_assert!(
                lo <= est && est <= hi,
                "q={} exact={} (bucket [{}, {}]) but estimate={}",
                q, exact, lo, hi, est
            );
            // Estimates never undershoot the true quantile.
            prop_assert!(est >= exact, "q={} estimate {} < exact {}", q, est, exact);
        }
        // The tracked extremes are exact, not bucketed.
        prop_assert_eq!(h.quantile(0.0), *samples.iter().min().unwrap());
        prop_assert_eq!(h.quantile(1.0), *samples.iter().max().unwrap());
    }

    /// Splitting a sample set at any point and merging the two histograms
    /// matches recording the whole set into one histogram, for every
    /// tracked statistic.
    #[test]
    fn merge_is_equivalent_to_single_recording(
        raw in proptest::collection::vec(any::<i64>(), 1..120),
        split_raw in any::<u16>()
    ) {
        let samples = stretch(&raw);
        let split = (split_raw as usize) % (samples.len() + 1);
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i < split { left.record(v) } else { right.record(v) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert_eq!(left.mean(), whole.mean());
        for &q in &QUANTILES {
            prop_assert_eq!(left.quantile(q), whole.quantile(q));
        }
        prop_assert_eq!(left.to_string(), whole.to_string());
    }
}
