//! The unified experiment engine: one trait, one registry, one run
//! context — every experiment of the paper's evaluation dispatches
//! through here.
//!
//! The engine replaces the previous per-figure plumbing (seven hand-rolled
//! `run()` entry points, a string-match dispatcher, per-binary CSV/SVG
//! glue) with three pieces:
//!
//! * [`Experiment`] — a named, self-describing unit of evaluation that
//!   turns a [`RunContext`] into an [`ExperimentOutput`] (report text plus
//!   CSV/SVG payloads).
//! * [`Registry`] — the static table of all experiments; the CLI and every
//!   binary dispatch through it (`--list`, `--filter`, `--all`), so adding
//!   an experiment is one module plus one registry line.
//! * [`RunContext`] — everything a run needs, bundled: trained
//!   [`Artifacts`], the [`Scale`], the hierarchical [`SeedTree`] all
//!   stochastic streams derive from, the pinned [`drive_par::Executor`],
//!   resilience/fault knobs, and the output sinks. A result memo lets
//!   derived experiments (Fig. 8) reuse upstream sweeps (Fig. 5/7) without
//!   recomputation — and guarantees a standalone run and an `--all` run
//!   produce byte-identical outputs, because seeds are namespaced by
//!   experiment, not by execution order.
//!
//! [`execute`] runs one experiment end to end: pin the worker count, run,
//! write CSV/SVG outputs (atomically), and emit a
//! [`Manifest`](crate::manifest::Manifest) recording the seed namespace,
//! config hash, throughput, and an FNV-1a checksum of every written file —
//! enough to re-derive (and verify) any figure from the manifest alone.

use crate::harness::Scale;
use crate::manifest::{Manifest, OutputEntry};
use crate::perf::{PerfSample, ThroughputProbe};
use crate::resilience::ResilienceConfig;
use attack_core::pipeline::{Artifacts, PipelineConfig};
use drive_metrics::export::Csv;
use drive_metrics::report::Table;
use drive_seed::{fnv1a_64, SeedTree};
use drive_sim::batch::Precision;
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Everything an [`Experiment::run`] produces: a human-readable report and
/// named CSV/SVG payloads for the engine to sink.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// The printable report (tables + headline statistics).
    pub report: String,
    /// `(file stem, data)` CSV outputs.
    pub csvs: Vec<(String, Csv)>,
    /// `(file stem, document)` SVG outputs.
    pub svgs: Vec<(String, String)>,
}

/// One experiment of the paper's evaluation grid.
///
/// Implementations are stateless unit structs registered in [`Registry`];
/// all inputs arrive through the [`RunContext`].
pub trait Experiment: Sync {
    /// Registry name (CLI argument, seed namespace, manifest key).
    fn name(&self) -> &'static str;
    /// One-line description shown by `--list`.
    fn description(&self) -> &'static str;
    /// Number of independent work cells the experiment fans out over
    /// (0 for purely derived experiments).
    fn cells(&self) -> usize;
    /// Runs the experiment against the context.
    fn run(&self, ctx: &RunContext) -> ExperimentOutput;
}

/// Shared state for one engine invocation: artifacts, scale, seeds,
/// executor, resilience knobs, and output sinks.
///
/// The context also carries a type-erased result memo keyed by experiment
/// name ([`RunContext::memo`]); experiment modules route their computation
/// through it so derived experiments reuse upstream results.
pub struct RunContext<'a> {
    /// Trained artifacts all experiments evaluate against.
    pub artifacts: &'a Artifacts,
    /// The pipeline configuration the artifacts came from.
    pub config: &'a PipelineConfig,
    /// Episode counts per cell.
    pub scale: Scale,
    /// Root of the hierarchical seed namespace (`root/<experiment>/...`);
    /// every stochastic stream of a run derives from this tree.
    pub seeds: SeedTree,
    /// Worker-count handle; [`execute`] pins it for the whole run.
    pub executor: drive_par::Executor,
    /// Per-cell retry/watchdog knobs used by
    /// [`attacked_records`](crate::harness::attacked_records).
    pub resilience: ResilienceConfig,
    /// Benign fault-schedule intensities swept by ablation arm 7.
    pub fault_intensities: Vec<f64>,
    /// Where CSV outputs (and the manifest) land; `None` disables them.
    pub csv_dir: Option<PathBuf>,
    /// Where SVG outputs land; `None` disables them.
    pub svg_dir: Option<PathBuf>,
    /// Crash-safety journal ([`crate::journal`]): when set, completed
    /// cells and experiments are logged as they finish, journaled cells
    /// are replayed from their sidecars instead of re-simulated, and
    /// already-completed experiments (with verified manifests) are
    /// skipped. `None` (the default) runs without crash safety.
    pub journal: Option<Arc<crate::journal::JournalHandle>>,
    /// Lockstep fleet batch size for
    /// [`attacked_records`](crate::harness::attacked_records) cells whose
    /// victim/attacker pairing is fleet-steppable. `None` (the default)
    /// keeps every cell on the serial path.
    pub fleet: Option<usize>,
    /// Numeric policy of fleet-stepped cells. [`Precision::Fast`] cells
    /// are journaled under a distinct key so `f32` results can never
    /// masquerade as golden ones.
    pub precision: Precision,
    /// Sharded multi-process coordination ([`crate::shard`]): when set,
    /// every grid cell goes through the lease protocol — load a peer's
    /// published sidecar, claim-and-compute, or wait — instead of the
    /// single-process journal path. Mutually exclusive with
    /// [`RunContext::journal`] by construction (the shard worker driver
    /// never sets both).
    pub shard: Option<Arc<crate::shard::ShardState>>,
    /// Strict-replay probe used by `repro_bench merge`: when set, a cell
    /// that the journal cannot replay records its label here and yields
    /// default-filled episodes instead of simulating, so one cheap pass
    /// over the real experiment grid enumerates exactly which cells a
    /// sharded run is still missing.
    pub missing_cells: Option<Arc<Mutex<Vec<String>>>>,
    cache: Mutex<HashMap<&'static str, Arc<dyn Any + Send + Sync>>>,
}

impl<'a> RunContext<'a> {
    /// A context with default knobs: seeds rooted at `scale.seed`, the
    /// ambient worker count, default resilience, no output sinks.
    pub fn new(artifacts: &'a Artifacts, config: &'a PipelineConfig, scale: Scale) -> Self {
        RunContext {
            artifacts,
            config,
            scale,
            seeds: SeedTree::root(scale.seed),
            executor: drive_par::Executor::current(),
            resilience: ResilienceConfig::default(),
            fault_intensities: vec![0.0, 0.5, 1.0],
            csv_dir: None,
            svg_dir: None,
            journal: None,
            fleet: None,
            precision: Precision::Golden,
            shard: None,
            missing_cells: None,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the memoized value for `key`, computing it on first use.
    ///
    /// Experiment modules call this with their registry name so a result
    /// is computed at most once per context (Fig. 8 reuses the Fig. 5 and
    /// Fig. 7 sweeps this way). The seed namespace is keyed by experiment
    /// name, so memoization never changes results — only cost.
    ///
    /// # Panics
    ///
    /// Panics if `key` was previously memoized with a different type.
    pub fn memo<T: Send + Sync + 'static>(
        &self,
        key: &'static str,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(hit) = self.cache.lock().expect("memo lock").get(key).cloned() {
            return hit
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("memo key '{key}' holds a different type"));
        }
        // Compute outside the lock: `compute` may itself memoize upstream
        // results (fig8 -> fig5/fig7).
        let value = Arc::new(compute());
        self.cache
            .lock()
            .expect("memo lock")
            .insert(key, value.clone() as Arc<dyn Any + Send + Sync>);
        value
    }

    /// The seed namespace for one experiment: `root/<name>`.
    pub fn seeds_for(&self, experiment: &str) -> SeedTree {
        self.seeds.child(experiment)
    }

    /// The run parameters a crash-safety journal is pinned to (same
    /// config hash as the manifests).
    pub fn run_header(&self) -> crate::journal::RunHeader {
        crate::journal::RunHeader::for_run(self.config, self.scale)
    }
}

/// The static experiment registry.
///
/// Order matters: `--all` runs experiments in this order, which puts the
/// Fig. 5 / Fig. 7 sweeps before the derived Fig. 8.
pub struct Registry;

static EXPERIMENTS: &[&dyn Experiment] = &[
    &crate::experiments::baseline::BaselineExperiment,
    &crate::experiments::fig4::Fig4Experiment,
    &crate::experiments::fig5::Fig5Experiment,
    &crate::experiments::fig6::Fig6Experiment,
    &crate::experiments::fig7::Fig7Experiment,
    &crate::experiments::fig8::Fig8Experiment,
    &crate::experiments::ablations::AblationsExperiment,
    &crate::experiments::scenario_matrix::ScenarioMatrixExperiment,
];

impl Registry {
    /// Every registered experiment, in `--all` execution order.
    pub fn all() -> &'static [&'static dyn Experiment] {
        EXPERIMENTS
    }

    /// The experiment with the given registry name, if any.
    pub fn find(name: &str) -> Option<&'static dyn Experiment> {
        EXPERIMENTS.iter().copied().find(|e| e.name() == name)
    }

    /// All experiments whose name contains `substr` (case-insensitive).
    pub fn filter(substr: &str) -> Vec<&'static dyn Experiment> {
        let needle = substr.to_ascii_lowercase();
        EXPERIMENTS
            .iter()
            .copied()
            .filter(|e| e.name().to_ascii_lowercase().contains(&needle))
            .collect()
    }

    /// The `--list` table for the given experiments (pass
    /// [`Registry::all`] for the full listing).
    pub fn list(experiments: &[&dyn Experiment]) -> String {
        let mut t = Table::new(["experiment", "cells", "description"]);
        for e in experiments {
            t.row([
                e.name().to_string(),
                e.cells().to_string(),
                e.description().to_string(),
            ]);
        }
        t.to_string()
    }
}

/// The outcome of one [`execute`] call.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Registry name of the experiment that ran.
    pub name: &'static str,
    /// The printable report.
    pub report: String,
    /// Wall-clock + throughput sample for the run.
    pub sample: PerfSample,
    /// The emitted manifest (`None` when the context has no output sink).
    pub manifest: Option<Manifest>,
    /// Every file written, manifest included.
    pub written: Vec<PathBuf>,
}

/// Runs one experiment end to end: pins the executor, runs, sinks CSV/SVG
/// outputs atomically, and writes `<name>.manifest.json` next to the CSVs
/// recording seed namespace, config hash, throughput, and per-file
/// checksums.
///
/// # Errors
///
/// Propagates I/O errors from the output sinks; the experiment itself ran
/// to completion by then (its report is lost only on sink failure).
pub fn execute(exp: &dyn Experiment, ctx: &RunContext) -> std::io::Result<EngineRun> {
    let probe = ThroughputProbe::start();
    // Resume fast path: an experiment journaled as complete is skipped
    // outright — but only if its manifest still loads and every listed
    // output verifies byte-for-byte, so a deleted or edited CSV forces a
    // re-run instead of a silent gap.
    if let (Some(journal), Some(dir)) =
        (&ctx.journal, ctx.csv_dir.as_ref().or(ctx.svg_dir.as_ref()))
    {
        if journal.experiment_done(exp.name()) {
            let manifest_path = dir.join(format!("{}.manifest.json", exp.name()));
            match Manifest::load(&manifest_path).map(|m| match m.verify(dir) {
                Ok(()) => Ok(m),
                Err(problems) => Err(problems.join("; ")),
            }) {
                Ok(Ok(m)) => {
                    eprintln!(
                        "[resume] {} already complete ({} output file(s) verified) — skipping",
                        exp.name(),
                        m.outputs.len()
                    );
                    return Ok(EngineRun {
                        name: exp.name(),
                        report: format!(
                            "[resume] {} already complete — outputs verified, skipping\n",
                            exp.name()
                        ),
                        sample: probe.sample(exp.name()),
                        manifest: Some(m),
                        written: Vec::new(),
                    });
                }
                Ok(Err(problems)) => eprintln!(
                    "[resume] {} journaled but outputs fail verification ({problems}); re-running",
                    exp.name()
                ),
                Err(e) => eprintln!(
                    "[resume] {} journaled but manifest unreadable ({e}); re-running",
                    exp.name()
                ),
            }
        }
    }
    let out = ctx.executor.run(|| exp.run(ctx));
    let sample = probe.sample(exp.name());

    let mut written = Vec::new();
    if let Some(dir) = &ctx.csv_dir {
        for (stem, csv) in &out.csvs {
            let path = dir.join(format!("{stem}.csv"));
            csv.write_to(&path)?;
            written.push(path);
        }
    }
    if let Some(dir) = &ctx.svg_dir {
        for (stem, svg) in &out.svgs {
            let path = dir.join(format!("{stem}.svg"));
            drive_metrics::svg::write_svg(&path, svg)?;
            written.push(path);
        }
    }

    // The manifest lives next to the CSVs (falling back to the SVG dir
    // when only SVGs were requested). Checksums are computed from the
    // bytes on disk, so a later `validate-manifest` compares like with
    // like.
    let manifest_dir = ctx.csv_dir.as_ref().or(ctx.svg_dir.as_ref()).cloned();
    let manifest = if let Some(dir) = manifest_dir {
        let mut outputs = Vec::new();
        for path in &written {
            let bytes = std::fs::read(path)?;
            let file = path
                .strip_prefix(&dir)
                .map(|p| p.to_string_lossy().into_owned())
                .unwrap_or_else(|_| path.to_string_lossy().into_owned());
            outputs.push(OutputEntry {
                file,
                bytes: bytes.len() as u64,
                fnv64: fnv1a_64(&bytes),
            });
        }
        let m = Manifest {
            schema: Manifest::SCHEMA.to_string(),
            experiment: exp.name().to_string(),
            description: exp.description().to_string(),
            seed_root: ctx.scale.seed,
            seed_path: ctx.seeds_for(exp.name()).path().to_string(),
            box_episodes: ctx.scale.box_episodes,
            scatter_rounds: ctx.scale.scatter_rounds,
            jobs: ctx.executor.jobs(),
            config_hash: fnv1a_64(format!("{:?}", ctx.config).as_bytes()),
            wall_secs: sample.wall_secs,
            steps: sample.steps,
            steps_per_sec: sample.steps_per_sec(),
            outputs,
        };
        let path = dir.join(format!("{}.manifest.json", exp.name()));
        m.write_to(&path)?;
        // The manifest is the experiment's commit point: only after it is
        // on disk is the experiment journaled as done, so a kill anywhere
        // earlier re-runs the experiment (replaying its journaled cells).
        if let Some(journal) = &ctx.journal {
            let manifest_fnv = std::fs::read(&path).map(|b| fnv1a_64(&b)).unwrap_or(0);
            if let Err(e) = journal.record_experiment(exp.name(), manifest_fnv) {
                eprintln!(
                    "warning: could not journal completion of {}: {e}",
                    exp.name()
                );
            }
        }
        written.push(path);
        Some(m)
    } else {
        None
    };

    Ok(EngineRun {
        name: exp.name(),
        report: out.report,
        sample,
        manifest,
        written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut seen = std::collections::HashSet::new();
        for e in Registry::all() {
            assert!(seen.insert(e.name()), "duplicate name {}", e.name());
            assert!(std::ptr::eq(
                Registry::find(e.name()).expect("findable"),
                *e
            ));
            assert!(!e.description().is_empty());
        }
        assert!(Registry::find("nope").is_none());
    }

    #[test]
    fn registry_covers_the_paper_grid_in_order() {
        let names: Vec<&str> = Registry::all().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "baseline",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "ablations",
                "scenario-matrix"
            ],
            "fig8 must come after the fig5/fig7 sweeps it derives from"
        );
    }

    #[test]
    fn filter_is_case_insensitive_substring() {
        let figs = Registry::filter("FIG");
        assert_eq!(figs.len(), 5);
        assert!(Registry::filter("ablat").len() == 1);
        assert!(Registry::filter("zzz").is_empty());
    }

    #[test]
    fn list_renders_every_experiment() {
        let text = Registry::list(Registry::all());
        for e in Registry::all() {
            assert!(text.contains(e.name()), "missing {}", e.name());
        }
        assert!(text.contains("description"));
    }

    #[test]
    fn memo_computes_once_per_key() {
        // A context over dummy borrows is awkward; test the memo through a
        // real quick pipeline at the integration level (tests/golden.rs).
        // Here: the seed namespace helper.
        let dir = std::env::temp_dir().join("repro-bench-engine-memo-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = attack_core::pipeline::prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let mut calls = 0;
        let a = ctx.memo("k", || {
            calls += 1;
            41 + calls
        });
        let b = ctx.memo::<i32>("k", || unreachable!("second compute must not run"));
        assert_eq!(*a, 42);
        assert_eq!(*b, 42);
        assert_eq!(
            ctx.seeds_for("fig4").path(),
            "root/fig4",
            "seed namespaces are keyed by experiment name"
        );
        assert_ne!(ctx.seeds_for("fig4").seed(), ctx.seeds_for("fig5").seed());
    }
}
