//! Tanh-squashed Gaussian policy head — the stochastic actor of SAC.
//!
//! The trunk network maps observations to `(mean, log_std)`; actions are
//! `a = tanh(mean + sigma * n)` with `n ~ N(0, I)` (the reparameterization
//! trick), and log-probabilities include the tanh change-of-variables
//! correction. The head math is factored out ([`HeadSample`],
//! [`sample_head`], [`head_backward`]) so both the plain [`GaussianPolicy`]
//! and the progressive-network policy (see [`crate::pnn`]) share one tested
//! implementation.

use crate::activation::Activation;
use crate::mat::Mat;
use crate::mlp::{Mlp, MlpCache};
use crate::scratch::{ActScratch, BatchActScratch, SampleBackScratch};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Lower clamp on `log_std` (PyTorch-SAC convention).
pub const LOG_STD_MIN: f32 = -5.0;
/// Upper clamp on `log_std`.
pub const LOG_STD_MAX: f32 = 2.0;
const LOG_2PI: f32 = 1.837_877_1;
const TANH_EPS: f32 = 1e-6;

/// Draws a standard normal `f32` via Box–Muller.
pub fn randn_f32<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
}

/// Fills a matrix with standard normal noise.
pub fn randn_mat<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Mat {
    let mut m = Mat::default();
    fill_randn(&mut m, rows, cols, rng);
    m
}

/// Resizes `m` and refills it with standard normal noise, drawing values
/// in the same row-major order as [`randn_mat`] (so the two are
/// interchangeable without perturbing a seeded RNG stream).
pub fn fill_randn<R: Rng>(m: &mut Mat, rows: usize, cols: usize, rng: &mut R) {
    m.resize(rows, cols);
    for v in m.data_mut() {
        *v = randn_f32(rng);
    }
}

/// A sampled batch from a tanh-Gaussian head, with everything needed for
/// the backward pass.
#[derive(Debug, Clone, Default)]
pub struct HeadSample {
    /// Pre-squash mean, `(batch, action_dim)`.
    pub mean: Mat,
    /// Clamped log standard deviation.
    pub log_std: Mat,
    /// Whether each `log_std` element hit a clamp (zero gradient there).
    pub clamped: Vec<bool>,
    /// Reparameterization noise `n`.
    pub noise: Mat,
    /// Squashed actions `a = tanh(mean + sigma * n)`.
    pub actions: Mat,
    /// Per-sample log-probabilities.
    pub log_prob: Vec<f32>,
}

/// Splits a raw head output `(batch, 2*action_dim)` into mean and clamped
/// log-std, then computes squashed actions and log-probabilities under the
/// given noise.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn sample_head(raw: &Mat, action_dim: usize, noise: Mat) -> HeadSample {
    let mut out = HeadSample {
        noise,
        ..HeadSample::default()
    };
    sample_head_into(raw, action_dim, &mut out);
    out
}

/// [`sample_head`] into a reusable [`HeadSample`] whose `noise` field must
/// already hold the `(batch, action_dim)` reparameterization noise.
/// Allocation-free once the buffers have warmed up; bit-identical results.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn sample_head_into(raw: &Mat, action_dim: usize, out: &mut HeadSample) {
    assert_eq!(
        raw.cols(),
        2 * action_dim,
        "raw head output must be 2*action_dim wide"
    );
    assert_eq!(
        (out.noise.rows(), out.noise.cols()),
        (raw.rows(), action_dim)
    );
    let batch = raw.rows();
    let HeadSample {
        mean,
        log_std,
        clamped,
        noise,
        actions,
        log_prob,
    } = out;
    mean.resize(batch, action_dim);
    log_std.resize(batch, action_dim);
    actions.resize(batch, action_dim);
    clamped.clear();
    clamped.resize(batch * action_dim, false);
    log_prob.clear();
    log_prob.resize(batch, 0.0);
    for b in 0..batch {
        let raw_row = raw.row(b);
        let mean_row = mean.row_mut(b);
        mean_row.copy_from_slice(&raw_row[..action_dim]);
        let ls_row = log_std.row_mut(b);
        for (i, (ls, &v)) in ls_row.iter_mut().zip(&raw_row[action_dim..]).enumerate() {
            *ls = v;
            if v < LOG_STD_MIN {
                *ls = LOG_STD_MIN;
                clamped[b * action_dim + i] = true;
            } else if v > LOG_STD_MAX {
                *ls = LOG_STD_MAX;
                clamped[b * action_dim + i] = true;
            }
        }
        // One fused pass: squash and accumulate the log-density in the same
        // ascending-element order as the allocating path.
        let lp = &mut log_prob[b];
        for (((a, &m), &ls), &n) in actions
            .row_mut(b)
            .iter_mut()
            .zip(&*mean_row)
            .zip(&*ls_row)
            .zip(noise.row(b))
        {
            let sigma = ls.exp();
            let u = m + sigma * n;
            *a = u.tanh();
            *lp += -0.5 * n * n - 0.5 * LOG_2PI - ls - (1.0 - *a * *a + TANH_EPS).ln();
        }
    }
}

/// Converts gradients on actions (`dL/da`) and log-probabilities
/// (`dL/dlogp`, per sample) into the gradient with respect to the raw head
/// output `(mean | log_std)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn head_backward(sample: &HeadSample, grad_action: &Mat, grad_logp: &[f32]) -> Mat {
    let mut grad_raw = Mat::default();
    head_backward_into(sample, grad_action, grad_logp, &mut grad_raw);
    grad_raw
}

/// [`head_backward`] into a reusable `(batch, 2 * action_dim)` buffer,
/// writing the mean and log-std gradient halves of each row directly —
/// no `grad_mean`/`grad_ls` temporaries, no `hcat`. Bit-identical results.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn head_backward_into(
    sample: &HeadSample,
    grad_action: &Mat,
    grad_logp: &[f32],
    grad_raw: &mut Mat,
) {
    let batch = sample.actions.rows();
    let action_dim = sample.actions.cols();
    assert_eq!(
        (grad_action.rows(), grad_action.cols()),
        (batch, action_dim)
    );
    assert_eq!(grad_logp.len(), batch);
    grad_raw.resize(batch, 2 * action_dim);
    for (b, &gl) in grad_logp.iter().enumerate() {
        let clamped = &sample.clamped[b * action_dim..(b + 1) * action_dim];
        let (gm_row, gls_row) = grad_raw.row_mut(b).split_at_mut(action_dim);
        for (i, (gm, gls)) in gm_row.iter_mut().zip(gls_row).enumerate() {
            let a = sample.actions.row(b)[i];
            let sigma = sample.log_std.row(b)[i].exp();
            let n = sample.noise.row(b)[i];
            let one_m_a2 = 1.0 - a * a;
            let da_dmean = one_m_a2;
            let da_dls = one_m_a2 * sigma * n;
            let dlogp_dmean = 2.0 * a * one_m_a2 / (one_m_a2 + TANH_EPS);
            let dlogp_dls = -1.0 + 2.0 * a * da_dls / (one_m_a2 + TANH_EPS);
            let ga = grad_action.row(b)[i];
            *gm = ga * da_dmean + gl * dlogp_dmean;
            let mut g = ga * da_dls + gl * dlogp_dls;
            if clamped[i] {
                g = 0.0;
            }
            *gls = g;
        }
    }
}

/// A stochastic policy `pi(a | s)` with a plain MLP trunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianPolicy {
    trunk: Mlp,
    action_dim: usize,
}

/// Everything needed to backpropagate through one sampled batch of a
/// [`GaussianPolicy`].
#[derive(Debug, Clone, Default)]
pub struct SampleCache {
    trunk: MlpCache,
    /// The head sample (actions, log-probs, intermediates).
    pub head: HeadSample,
}

impl SampleCache {
    /// Sampled actions.
    pub fn actions(&self) -> &Mat {
        &self.head.actions
    }

    /// Per-sample log-probabilities.
    pub fn log_prob(&self) -> &[f32] {
        &self.head.log_prob
    }
}

impl GaussianPolicy {
    /// Builds a policy with the given trunk hidden sizes.
    ///
    /// # Panics
    ///
    /// Panics if `obs_dim` or `action_dim` is zero.
    pub fn new<R: Rng>(obs_dim: usize, hidden: &[usize], action_dim: usize, rng: &mut R) -> Self {
        assert!(obs_dim > 0 && action_dim > 0, "dims must be positive");
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(obs_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(2 * action_dim);
        GaussianPolicy {
            trunk: Mlp::new(&sizes, Activation::Relu, Activation::Identity, rng),
            action_dim,
        }
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.trunk.in_dim()
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// The underlying trunk network.
    pub fn trunk(&self) -> &Mlp {
        &self.trunk
    }

    /// Mutable access to the trunk (for optimizers via `visit_params`).
    pub fn trunk_mut(&mut self) -> &mut Mlp {
        &mut self.trunk
    }

    /// Deterministic action `tanh(mean)` for a batch of observations.
    pub fn mean_action(&self, obs: &Mat) -> Mat {
        let raw = self.trunk.forward(obs);
        let (mut mean, _) = raw.split_cols(self.action_dim);
        mean.map_inplace(f32::tanh);
        mean
    }

    /// Samples actions with reparameterization, returning a cache for
    /// [`GaussianPolicy::backward_sample`].
    pub fn sample<R: Rng>(&self, obs: &Mat, rng: &mut R) -> SampleCache {
        let noise = randn_mat(obs.rows(), self.action_dim, rng);
        self.sample_with_noise(obs, noise)
    }

    /// [`GaussianPolicy::sample`] into a reusable cache — allocation-free
    /// once the cache has warmed up. Draws RNG values in exactly the same
    /// order as `sample` (noise first, row-major), so the two paths are
    /// interchangeable mid-stream without perturbing seeded runs, and
    /// computes bit-identical results.
    pub fn sample_into<R: Rng>(&self, obs: &Mat, rng: &mut R, cache: &mut SampleCache) {
        let SampleCache { trunk, head } = cache;
        fill_randn(&mut head.noise, obs.rows(), self.action_dim, rng);
        self.trunk.forward_cached_into(obs, trunk);
        sample_head_into(trunk.output(), self.action_dim, head);
    }

    /// Like [`GaussianPolicy::sample`] but with caller-provided noise
    /// (deterministic tests, finite differencing).
    ///
    /// # Panics
    ///
    /// Panics if `noise` has the wrong shape.
    pub fn sample_with_noise(&self, obs: &Mat, noise: Mat) -> SampleCache {
        let trunk = self.trunk.forward_cached(obs);
        let head = sample_head(trunk.output(), self.action_dim, noise);
        SampleCache { trunk, head }
    }

    /// Backpropagates `dL/da` (per action element) and `dL/dlogp` (per
    /// sample) through the sampling path into the trunk parameters.
    /// Returns the gradient with respect to the observations.
    pub fn backward_sample(
        &mut self,
        cache: &SampleCache,
        grad_action: &Mat,
        grad_logp: &[f32],
    ) -> Mat {
        let grad_raw = head_backward(&cache.head, grad_action, grad_logp);
        self.trunk.backward(&cache.trunk, &grad_raw)
    }

    /// [`GaussianPolicy::backward_sample`] through reusable buffers —
    /// allocation-free once the scratch has warmed up, with parameter
    /// gradients accumulating bit-identically. The observation gradient is
    /// left in the scratch rather than returned (SAC never uses it).
    pub fn backward_sample_with(
        &mut self,
        cache: &SampleCache,
        grad_action: &Mat,
        grad_logp: &[f32],
        s: &mut SampleBackScratch,
    ) {
        let SampleBackScratch { grad_raw, trunk } = s;
        head_backward_into(&cache.head, grad_action, grad_logp, grad_raw);
        self.trunk.backward_with(&cache.trunk, grad_raw, trunk);
    }

    /// Backpropagates a gradient on the *deterministic* action `tanh(mean)`
    /// (used for behaviour cloning). Returns the observation gradient.
    pub fn backward_mean(&mut self, obs: &Mat, grad_tanh_mean: &Mat) -> Mat {
        let trunk = self.trunk.forward_cached(obs);
        let (mean, _) = trunk.output().split_cols(self.action_dim);
        let batch = obs.rows();
        let mut grad_mean = Mat::zeros(batch, self.action_dim);
        for b in 0..batch {
            for i in 0..self.action_dim {
                let t = mean.get(b, i).tanh();
                grad_mean.set(b, i, grad_tanh_mean.get(b, i) * (1.0 - t * t));
            }
        }
        let grad_ls = Mat::zeros(batch, self.action_dim);
        let grad_raw = grad_mean.hcat(&grad_ls);
        self.trunk.backward(&trunk, &grad_raw)
    }

    /// Convenience: act on a single observation.
    ///
    /// With `deterministic`, returns `tanh(mean)`; otherwise a sample.
    pub fn act<R: Rng>(&self, obs: &[f32], rng: &mut R, deterministic: bool) -> Vec<f32> {
        let mut s = ActScratch::default();
        self.act_with(obs, rng, deterministic, &mut s);
        s.action
    }

    /// Allocation-free [`GaussianPolicy::act`]: evaluates the trunk through
    /// the scratch's reusable buffers and returns a slice of the action
    /// vector held by the scratch.
    ///
    /// Computes bit-identical actions to `act` and draws RNG values in
    /// exactly the same order, so scratch and allocating paths are
    /// interchangeable mid-stream without perturbing seeded runs.
    pub fn act_with<'s, R: Rng>(
        &self,
        obs: &[f32],
        rng: &mut R,
        deterministic: bool,
        s: &'s mut ActScratch,
    ) -> &'s [f32] {
        let ActScratch {
            obs: obs_m,
            trunk,
            action,
        } = s;
        obs_m.copy_from_row(obs);
        let raw = self.trunk.forward_with(obs_m, trunk);
        let row = raw.row(0);
        action.clear();
        if deterministic {
            action.extend(row[..self.action_dim].iter().map(|m| m.tanh()));
        } else {
            for i in 0..self.action_dim {
                let mean = row[i];
                // Same clamp as `sample_head`.
                let ls = row[self.action_dim + i].clamp(LOG_STD_MIN, LOG_STD_MAX);
                let n = randn_f32(rng);
                action.push((mean + ls.exp() * n).tanh());
            }
        }
        action
    }

    /// Micro-batched deterministic inference: stacks `obs` into one
    /// `(batch, obs_dim)` matrix, runs a single trunk forward, and returns
    /// a `(batch, action_dim)` matrix of `tanh(mean)` actions.
    ///
    /// Row `b` of the result is **bit-identical** to
    /// `act_with(obs[b], .., deterministic = true, ..)`: the GEMM kernels
    /// compute every output element as one ascending-`k` accumulation
    /// regardless of how many rows share the call, so batching changes
    /// throughput but never numerics. The serving layer relies on this —
    /// micro-batching under a deadline window must not make answers depend
    /// on which requests happened to share a batch. Allocation-free once
    /// the scratch has warmed to the largest batch seen.
    ///
    /// # Panics
    ///
    /// Panics if any observation slice is not `obs_dim` long.
    pub fn act_batch_with<'s>(&self, obs: &[&[f32]], s: &'s mut BatchActScratch) -> &'s Mat {
        let BatchActScratch {
            obs: obs_m,
            trunk,
            actions,
        } = s;
        stage_obs_rows(obs, self.obs_dim(), obs_m);
        let raw = self.trunk.forward_with(obs_m, trunk);
        squash_mean_rows(raw, self.action_dim, actions);
        actions
    }
}

/// Gathers observation slices into the `(batch, obs_dim)` staging matrix —
/// the one gather implementation behind [`GaussianPolicy::act_batch_with`]
/// and [`crate::batch::BatchPolicy`] (the serving layer and the fleet
/// driver must not grow separate copies of this plumbing).
///
/// # Panics
///
/// Panics if any observation slice is not `obs_dim` long.
pub(crate) fn stage_obs_rows(obs: &[&[f32]], obs_dim: usize, obs_m: &mut Mat) {
    obs_m.resize(obs.len(), obs_dim);
    for (b, o) in obs.iter().enumerate() {
        obs_m.row_mut(b).copy_from_slice(o);
    }
}

/// Extracts the deterministic action `tanh(mean)` from every row of a raw
/// trunk output `(batch, 2 * action_dim)` — the shared scatter half of the
/// batched-inference entry points.
pub(crate) fn squash_mean_rows(raw: &Mat, action_dim: usize, actions: &mut Mat) {
    let batch = raw.rows();
    actions.resize(batch, action_dim);
    for b in 0..batch {
        let raw_row = raw.row(b);
        for (a, m) in actions.row_mut(b).iter_mut().zip(&raw_row[..action_dim]) {
            *a = m.tanh();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(5);
        GaussianPolicy::new(4, &[16], 2, &mut rng)
    }

    /// `act_with` must be a drop-in for `act`: identical actions AND
    /// identical RNG consumption, for both deterministic and stochastic
    /// paths, across repeated scratch reuse.
    #[test]
    fn act_with_matches_act_and_rng_stream() {
        let p = policy();
        let mut s = ActScratch::default();
        for deterministic in [true, false] {
            let mut r1 = StdRng::seed_from_u64(33);
            let mut r2 = StdRng::seed_from_u64(33);
            for step in 0..5 {
                let obs = [0.1 * step as f32, -0.4, 0.9, 0.2];
                let a = p.act(&obs, &mut r1, deterministic);
                let b = p.act_with(&obs, &mut r2, deterministic, &mut s);
                assert_eq!(a.as_slice(), b, "step {step} det={deterministic}");
            }
            // Both RNGs must have advanced identically.
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn actions_are_bounded() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = Mat::from_vec(8, 4, (0..32).map(|_| randn_f32(&mut rng) * 3.0).collect());
        let s = p.sample(&obs, &mut rng);
        for &a in s.actions().data() {
            assert!((-1.0..=1.0).contains(&a), "action {a} out of range");
        }
        for &a in p.mean_action(&obs).data() {
            assert!((-1.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn log_prob_matches_analytic_density() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = GaussianPolicy::new(2, &[8], 1, &mut rng);
        let obs = Mat::from_row(&[0.3, -0.2]);
        let noise = Mat::from_row(&[0.7]);
        let s = p.sample_with_noise(&obs, noise);
        let mean = s.head.mean.get(0, 0);
        let ls = s.head.log_std.get(0, 0);
        let sigma = ls.exp();
        let u = mean + sigma * 0.7;
        let a = u.tanh();
        let gauss = -0.5 * (0.7f32 * 0.7) - 0.5 * LOG_2PI - ls;
        let correction = (1.0 - a * a + TANH_EPS).ln();
        assert!((s.log_prob()[0] - (gauss - correction)).abs() < 1e-5);
        assert!((s.actions().get(0, 0) - a).abs() < 1e-6);
    }

    #[test]
    fn sample_backward_matches_finite_differences() {
        // Loss = sum(actions) + 0.5 * sum(log_prob); verify trunk weight
        // gradients against finite differences with fixed noise.
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = GaussianPolicy::new(3, &[8], 2, &mut rng);
        let obs = Mat::from_vec(2, 3, vec![0.1, -0.4, 0.8, -0.2, 0.5, 0.3]);
        let noise = Mat::from_vec(2, 2, vec![0.3, -0.6, 1.1, 0.2]);

        let loss = |p: &GaussianPolicy| {
            let s = p.sample_with_noise(&obs, noise.clone());
            s.actions().data().iter().sum::<f32>() + 0.5 * s.log_prob().iter().sum::<f32>()
        };

        let cache = p.sample_with_noise(&obs, noise.clone());
        let grad_action = Mat::from_vec(2, 2, vec![1.0; 4]);
        let grad_logp = vec![0.5f32; 2];
        p.trunk_mut().zero_grad();
        p.backward_sample(&cache, &grad_action, &grad_logp);

        let eps = 1e-2f32;
        for layer_idx in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 1)] {
                let mut pp = p.clone();
                let v = pp.trunk().layers()[layer_idx].w.get(r, c);
                pp.trunk_mut().layers_mut()[layer_idx].w.set(r, c, v + eps);
                let up = loss(&pp);
                pp.trunk_mut().layers_mut()[layer_idx].w.set(r, c, v - eps);
                let down = loss(&pp);
                let fd = (up - down) / (2.0 * eps);
                let got = p.trunk().layers()[layer_idx].grad_w.get(r, c);
                assert!(
                    (fd - got).abs() < 0.05 * (1.0 + fd.abs()),
                    "layer {layer_idx} dW[{r},{c}] fd {fd} vs {got}"
                );
            }
        }
    }

    #[test]
    fn backward_mean_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = GaussianPolicy::new(3, &[8], 1, &mut rng);
        let obs = Mat::from_vec(1, 3, vec![0.2, -0.1, 0.6]);
        let loss = |p: &GaussianPolicy| p.mean_action(&obs).data().iter().sum::<f32>();
        p.trunk_mut().zero_grad();
        let grad = Mat::from_vec(1, 1, vec![1.0]);
        p.backward_mean(&obs, &grad);
        let eps = 1e-2f32;
        let mut pp = p.clone();
        let v = pp.trunk().layers()[0].w.get(0, 0);
        pp.trunk_mut().layers_mut()[0].w.set(0, 0, v + eps);
        let up = loss(&pp);
        pp.trunk_mut().layers_mut()[0].w.set(0, 0, v - eps);
        let down = loss(&pp);
        let fd = (up - down) / (2.0 * eps);
        let got = p.trunk().layers()[0].grad_w.get(0, 0);
        assert!((fd - got).abs() < 0.02, "fd {fd} vs {got}");
    }

    #[test]
    fn clamped_log_std_blocks_gradient() {
        // Force an absurdly large raw log_std by constructing the head
        // sample directly.
        let raw = Mat::from_row(&[0.0, 99.0]); // mean 0, log_std clamps to MAX
        let s = sample_head(&raw, 1, Mat::from_row(&[0.5]));
        assert_eq!(s.log_std.get(0, 0), LOG_STD_MAX);
        assert!(s.clamped[0]);
        let g = head_backward(&s, &Mat::from_row(&[1.0]), &[1.0]);
        // Gradient w.r.t. the log_std half must be zeroed.
        assert_eq!(g.get(0, 1), 0.0);
    }

    #[test]
    fn act_single_shapes() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.act(&[0.0; 4], &mut rng, true).len(), 2);
        assert_eq!(p.act(&[0.0; 4], &mut rng, false).len(), 2);
    }

    /// `sample_into` must be a drop-in for `sample`: bit-identical caches
    /// AND identical RNG consumption across repeated scratch reuse.
    #[test]
    fn sample_into_matches_sample_and_rng_stream() {
        let p = policy();
        let mut r1 = StdRng::seed_from_u64(21);
        let mut r2 = StdRng::seed_from_u64(21);
        let mut cache = SampleCache::default();
        for batch in [3usize, 1, 5] {
            let obs = Mat::from_vec(batch, 4, (0..batch * 4).map(|i| (i as f32).sin()).collect());
            let alloc = p.sample(&obs, &mut r1);
            p.sample_into(&obs, &mut r2, &mut cache);
            assert_eq!(alloc.actions(), cache.actions());
            assert_eq!(alloc.log_prob(), cache.log_prob());
            assert_eq!(alloc.head.noise, cache.head.noise);
            assert_eq!(alloc.head.clamped, cache.head.clamped);
        }
        // Both RNGs must have advanced identically.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    /// `backward_sample_with` must accumulate exactly the same parameter
    /// gradients as the allocating `backward_sample`.
    #[test]
    fn backward_sample_with_matches_allocating_backward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p1 = GaussianPolicy::new(3, &[8], 2, &mut rng);
        let mut p2 = p1.clone();
        let obs = Mat::from_vec(2, 3, vec![0.1, -0.4, 0.8, -0.2, 0.5, 0.3]);
        let noise = Mat::from_vec(2, 2, vec![0.3, -0.6, 1.1, 0.2]);
        let cache = p1.sample_with_noise(&obs, noise);
        let grad_action = Mat::from_vec(2, 2, vec![1.0, -0.5, 0.25, 2.0]);
        let grad_logp = vec![0.5f32, -1.5];
        p1.trunk_mut().zero_grad();
        p2.trunk_mut().zero_grad();
        p1.backward_sample(&cache, &grad_action, &grad_logp);
        let mut s = SampleBackScratch::default();
        p2.backward_sample_with(&cache, &grad_action, &grad_logp, &mut s);
        // Repeat with the warmed scratch: gradients keep accumulating
        // identically.
        p1.backward_sample(&cache, &grad_action, &grad_logp);
        p2.backward_sample_with(&cache, &grad_action, &grad_logp, &mut s);
        assert_eq!(p1, p2);
    }

    /// Micro-batched inference must equal serial single-observation
    /// inference BIT-FOR-BIT, for batch sizes on both sides of the GEMM
    /// row-tile boundary, with one scratch reused across growing and
    /// shrinking batches.
    #[test]
    fn act_batch_with_is_bit_identical_to_serial_act() {
        let p = policy();
        let mut batch_s = BatchActScratch::default();
        let mut single_s = ActScratch::default();
        let mut rng = StdRng::seed_from_u64(11);
        for &batch in &[1usize, 3, 4, 5, 9, 2] {
            let obs: Vec<Vec<f32>> = (0..batch)
                .map(|_| (0..4).map(|_| randn_f32(&mut rng) * 2.0).collect())
                .collect();
            let refs: Vec<&[f32]> = obs.iter().map(Vec::as_slice).collect();
            let acted = p.act_batch_with(&refs, &mut batch_s);
            assert_eq!((acted.rows(), acted.cols()), (batch, 2));
            for (b, o) in obs.iter().enumerate() {
                let serial = p.act_with(o, &mut rng, true, &mut single_s);
                for (i, (&got, &want)) in acted.row(b).iter().zip(serial).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "batch {batch} row {b} dim {i}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn act_batch_with_handles_empty_batch() {
        let p = policy();
        let mut s = BatchActScratch::default();
        let acted = p.act_batch_with(&[], &mut s);
        assert_eq!(acted.rows(), 0);
    }

    #[test]
    fn deterministic_sampling_per_seed() {
        let p = policy();
        let obs = Mat::from_row(&[0.1, 0.2, 0.3, 0.4]);
        let a1 = p.sample(&obs, &mut StdRng::seed_from_u64(7)).head.actions;
        let a2 = p.sample(&obs, &mut StdRng::seed_from_u64(7)).head.actions;
        assert_eq!(a1, a2);
    }
}
