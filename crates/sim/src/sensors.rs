//! Attacker- and agent-side sensors.
//!
//! Three observation sources are modeled, mirroring Sections III-C and IV-C
//! of the paper:
//!
//! * [`FeatureExtractor`] — the compact semantic encoding of what the
//!   paper's stacked semantic-segmentation panorama conveys: ego pose within
//!   the lane plus relative kinematics of the nearest NPC vehicles, stacked
//!   over several frames. This is the policy input used for training (see
//!   DESIGN.md §1 for the substitution argument).
//! * [`SemanticCamera`] — a bird's-eye semantic occupancy grid with
//!   road / barrier / vehicle classes, the grid-shaped analogue of the
//!   paper's camera, for visualization and consistency testing.
//! * [`Imu`] — a triaxial-equivalent inertial window (longitudinal
//!   acceleration + yaw rate, the paper's informative x/z channels) sampled
//!   at 20 sps over 3.2 s, with Gaussian noise and bias.

use crate::geometry::Vec2;
use crate::world::World;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Draws a standard normal sample via Box–Muller (rand 0.8 has no normal
/// distribution without `rand_distr`).
pub fn randn<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Number of per-frame ego features produced by [`FeatureExtractor`].
pub const EGO_FEATURES: usize = 8;
/// Number of features per tracked NPC.
pub const NPC_FEATURES: usize = 4;

/// Configuration of the semantic feature extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of nearest NPCs encoded per frame.
    pub k_npcs: usize,
    /// Number of stacked frames (the paper stacks 3).
    pub frames: usize,
    /// Longitudinal normalization range, meters.
    pub range_lon: f64,
    /// Lateral normalization range, meters.
    pub range_lat: f64,
    /// Speed normalization, m/s.
    pub speed_norm: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            k_npcs: 3,
            frames: 3,
            range_lon: 50.0,
            range_lat: 10.0,
            speed_norm: 16.0,
        }
    }
}

impl FeatureConfig {
    /// Dimensionality of one frame.
    pub fn frame_dim(&self) -> usize {
        EGO_FEATURES + NPC_FEATURES * self.k_npcs
    }

    /// Dimensionality of the stacked observation.
    pub fn observation_dim(&self) -> usize {
        self.frame_dim() * self.frames
    }
}

/// Stateful frame-stacking semantic feature extractor.
///
/// Call [`FeatureExtractor::reset`] at episode start and
/// [`FeatureExtractor::observe`] once per control step; the returned vector
/// always has [`FeatureConfig::observation_dim`] entries (zero-padded before
/// enough frames have accumulated).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
    history: VecDeque<Vec<f32>>,
    /// Reused per-frame NPC workspace for [`FeatureExtractor::observe_into`].
    npc_scratch: Vec<(f64, Vec2, f64)>,
}

impl FeatureExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: FeatureConfig) -> Self {
        FeatureExtractor {
            history: VecDeque::with_capacity(config.frames),
            config,
            npc_scratch: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Clears stacked history (call at episode start).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Extracts the current frame, pushes it onto the stack, and returns the
    /// stacked observation (most recent frame first).
    ///
    /// Allocates the returned vector; hot loops should hold a reused buffer
    /// and call [`FeatureExtractor::observe_into`] instead.
    pub fn observe(&mut self, world: &World) -> Vec<f32> {
        let mut out = Vec::new();
        self.observe_into(world, &mut out);
        out
    }

    /// [`FeatureExtractor::observe`], writing the stacked observation into
    /// `out` (resized to [`FeatureConfig::observation_dim`]). The evicted
    /// frame buffer is reused for the incoming frame, so steady-state calls
    /// are allocation-free.
    pub fn observe_into(&mut self, world: &World, out: &mut Vec<f32>) {
        let mut frame = if self.history.len() == self.config.frames {
            self.history.pop_back().expect("history is non-empty")
        } else {
            Vec::with_capacity(self.config.frame_dim())
        };
        extract_frame_into(&self.config, world, &mut self.npc_scratch, &mut frame);
        self.history.push_front(frame);
        let dim = self.config.frame_dim();
        out.clear();
        out.resize(self.config.observation_dim(), 0.0);
        for (i, f) in self.history.iter().enumerate() {
            out[i * dim..(i + 1) * dim].copy_from_slice(f);
        }
    }

    /// Computes a single un-stacked frame.
    pub fn extract_frame(&self, world: &World) -> Vec<f32> {
        let mut npcs = Vec::new();
        let mut out = Vec::new();
        extract_frame_into(&self.config, world, &mut npcs, &mut out);
        out
    }
}

/// Writes one un-stacked feature frame into `out` (cleared first), using
/// `npcs` as sort workspace. Shared by the allocating and the `_into`
/// observation paths so the arithmetic has a single home.
fn extract_frame_into(
    c: &FeatureConfig,
    world: &World,
    npcs: &mut Vec<(f64, Vec2, f64)>,
    out: &mut Vec<f32>,
) {
    let road = &world.scenario().road;
    let ego = world.ego();
    let pos = ego.pose.position;
    let half_lane = road.lane_width / 2.0;

    out.clear();
    out.reserve(c.frame_dim());
    out.push((road.lane_offset(pos.y) / half_lane) as f32);
    out.push(ego.pose.heading as f32);
    out.push((ego.speed / c.speed_norm) as f32);
    out.push(ego.actuation.steer as f32);
    out.push(ego.actuation.thrust as f32);
    let (right_edge, left_edge) = road.edge_ys_at(pos.x);
    out.push(((left_edge - pos.y) / road.width()) as f32);
    out.push(((pos.y - right_edge) / road.width()) as f32);
    out.push((road.lane_of(pos.y) as f64 / (road.num_lanes.max(2) - 1) as f64) as f32);
    debug_assert_eq!(out.len(), EGO_FEATURES);

    // Nearest NPCs by absolute longitudinal distance, keeping only those
    // not already far behind.
    npcs.clear();
    npcs.extend(
        world
            .npcs()
            .iter()
            .map(|n| {
                let rel = n.vehicle.pose.position - pos;
                (rel.x, rel, n.vehicle.speed)
            })
            .filter(|(dx, _, _)| *dx > -c.range_lon / 2.0),
    );
    npcs.sort_by(|a, b| a.0.abs().total_cmp(&b.0.abs()));
    for k in 0..c.k_npcs {
        if let Some((_, rel, speed)) = npcs.get(k) {
            out.push((rel.x / c.range_lon).clamp(-1.0, 1.0) as f32);
            out.push((rel.y / c.range_lat).clamp(-1.0, 1.0) as f32);
            out.push(((speed - ego.speed) / c.speed_norm) as f32);
            out.push(1.0);
        } else {
            out.extend_from_slice(&[0.0, 0.0, 0.0, 0.0]);
        }
    }
}

/// Semantic classes rendered by the [`SemanticCamera`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemanticClass {
    /// Outside the road and its barriers.
    Offroad,
    /// Drivable surface.
    Road,
    /// Roadside barrier.
    Barrier,
    /// Any vehicle footprint (ego or NPC).
    Vehicle,
}

impl SemanticClass {
    /// Normalized intensity used in grid observations.
    pub fn intensity(self) -> f32 {
        match self {
            SemanticClass::Offroad => 0.0,
            SemanticClass::Road => 1.0 / 3.0,
            SemanticClass::Barrier => 2.0 / 3.0,
            SemanticClass::Vehicle => 1.0,
        }
    }
}

/// Bird's-eye semantic occupancy camera centered on the ego vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticCamera {
    /// Grid columns (longitudinal).
    pub cols: usize,
    /// Grid rows (lateral).
    pub rows: usize,
    /// Meters ahead of the ego covered by the grid.
    pub range_ahead: f64,
    /// Meters behind the ego covered by the grid.
    pub range_behind: f64,
    /// Meters to each side of the ego covered by the grid.
    pub range_side: f64,
}

impl Default for SemanticCamera {
    fn default() -> Self {
        SemanticCamera {
            cols: 48,
            rows: 16,
            range_ahead: 60.0,
            range_behind: 12.0,
            range_side: 8.0,
        }
    }
}

impl SemanticCamera {
    /// Renders the class of each cell, row-major (row 0 = leftmost lateral
    /// band, column 0 = farthest behind).
    pub fn render_classes(&self, world: &World) -> Vec<SemanticClass> {
        let ego = world.ego().pose.position;
        let road = &world.scenario().road;
        let obbs: Vec<_> = std::iter::once(world.ego().obb())
            .chain(world.npcs().iter().map(|n| n.vehicle.obb()))
            .collect();
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            // Row 0 at +range_side (left), descending.
            let fy = (r as f64 + 0.5) / self.rows as f64;
            let y = ego.y + self.range_side - fy * 2.0 * self.range_side;
            for c in 0..self.cols {
                let fx = (c as f64 + 0.5) / self.cols as f64;
                let x = ego.x - self.range_behind + fx * (self.range_ahead + self.range_behind);
                let p = Vec2::new(x, y);
                let (right_edge, left_edge) = road.edge_ys_at(x);
                let class = if obbs.iter().any(|o| o.contains(p)) {
                    SemanticClass::Vehicle
                } else if road.on_road(p) {
                    SemanticClass::Road
                } else if (y >= left_edge && y <= left_edge + road.barrier_thickness)
                    || (y <= right_edge && y >= right_edge - road.barrier_thickness)
                {
                    SemanticClass::Barrier
                } else {
                    SemanticClass::Offroad
                };
                out.push(class);
            }
        }
        out
    }

    /// Renders normalized intensities suitable as a flat NN observation.
    pub fn render(&self, world: &World) -> Vec<f32> {
        self.render_classes(world)
            .into_iter()
            .map(SemanticClass::intensity)
            .collect()
    }

    /// Observation dimensionality of one rendered frame.
    pub fn dim(&self) -> usize {
        self.rows * self.cols
    }
}

/// Configuration of the [`Imu`] sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImuConfig {
    /// Samples per second (the paper uses 20 sps).
    pub sample_rate: f64,
    /// Window length in seconds (the paper uses 3.2 s).
    pub window: f64,
    /// Standard deviation of additive Gaussian noise on acceleration, m/s^2.
    pub accel_noise_std: f64,
    /// Standard deviation of additive Gaussian noise on yaw rate, rad/s.
    pub gyro_noise_std: f64,
    /// Constant bias on acceleration, m/s^2.
    pub accel_bias: f64,
    /// Constant bias on yaw rate, rad/s.
    pub gyro_bias: f64,
}

impl Default for ImuConfig {
    fn default() -> Self {
        ImuConfig {
            sample_rate: 20.0,
            window: 3.2,
            accel_noise_std: 0.05,
            gyro_noise_std: 0.005,
            accel_bias: 0.0,
            gyro_bias: 0.0,
        }
    }
}

impl ImuConfig {
    /// Number of samples in a full window.
    pub fn window_samples(&self) -> usize {
        (self.sample_rate * self.window).round() as usize
    }

    /// Observation dimensionality: two channels per sample.
    pub fn observation_dim(&self) -> usize {
        2 * self.window_samples()
    }
}

/// Rolling-window IMU with two informative channels: longitudinal
/// acceleration (body x) and yaw rate (body z). The paper discards the
/// lateral (y) channel as uninformative; so do we.
#[derive(Debug, Clone)]
pub struct Imu {
    config: ImuConfig,
    buffer: VecDeque<(f64, f64)>,
}

impl Imu {
    /// Creates an IMU with an empty (zero-filled) window.
    pub fn new(config: ImuConfig) -> Self {
        let n = config.window_samples();
        Imu {
            config,
            buffer: VecDeque::from(vec![(0.0, 0.0); n]),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ImuConfig {
        &self.config
    }

    /// Clears the window to zeros (call at episode start).
    pub fn reset(&mut self) {
        let n = self.config.window_samples();
        self.buffer = VecDeque::from(vec![(0.0, 0.0); n]);
    }

    /// Records the samples for one control step from the ego vehicle's
    /// inertial substep records, adding noise and bias from `rng`.
    ///
    /// With `dt = 0.1 s` and 20 sps this appends 2 samples per call, drawn
    /// evenly from the recorded substeps.
    pub fn record<R: Rng>(&mut self, world: &World, rng: &mut R) {
        let inertial = &world.ego().inertial;
        if inertial.is_empty() {
            return;
        }
        let dt = world.scenario().dt;
        let samples_per_step = (self.config.sample_rate * dt).round().max(1.0) as usize;
        for k in 0..samples_per_step {
            // Evenly spaced substep indices.
            let idx = ((k as f64 + 0.5) / samples_per_step as f64 * inertial.len() as f64).floor()
                as usize;
            let s = inertial[idx.min(inertial.len() - 1)];
            let ax =
                s.accel_lon + self.config.accel_bias + self.config.accel_noise_std * randn(rng);
            let wz = s.yaw_rate + self.config.gyro_bias + self.config.gyro_noise_std * randn(rng);
            if self.buffer.len() == self.config.window_samples() {
                self.buffer.pop_front();
            }
            self.buffer.push_back((ax, wz));
        }
    }

    /// The current window flattened to `[ax_0, wz_0, ax_1, wz_1, ...]`,
    /// normalized to roughly unit scale.
    pub fn window(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.window_into(&mut out);
        out
    }

    /// [`Imu::window`], writing into `out` (cleared first) so hot loops can
    /// reuse one buffer.
    pub fn window_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.config.observation_dim());
        for &(ax, wz) in &self.buffer {
            out.push((ax / 10.0) as f32);
            out.push((wz / 2.0) as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::vehicle::Actuation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn feature_dims_match_config() {
        let c = FeatureConfig::default();
        assert_eq!(c.frame_dim(), 8 + 4 * 3);
        assert_eq!(c.observation_dim(), 3 * 20);
        let mut fx = FeatureExtractor::new(c.clone());
        let world = World::new(Scenario::default());
        let obs = fx.observe(&world);
        assert_eq!(obs.len(), c.observation_dim());
    }

    #[test]
    fn feature_stacking_shifts_frames() {
        let mut fx = FeatureExtractor::new(FeatureConfig::default());
        let mut world = World::new(Scenario::default());
        let o1 = fx.observe(&world);
        world.step(Actuation::new(0.0, 0.5));
        let o2 = fx.observe(&world);
        let dim = fx.config().frame_dim();
        // The old frame moved to slot 1 of the new observation.
        assert_eq!(&o2[dim..2 * dim], &o1[..dim]);
        // Before enough frames exist, older slots are zero.
        assert!(o1[dim..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn feature_frame_encodes_nearest_npc_first() {
        let fx = FeatureExtractor::new(FeatureConfig::default());
        let world = World::new(Scenario::default());
        let frame = fx.extract_frame(&world);
        // First NPC slot: relative x of the nearest NPC (30 m) normalized by 50.
        let dx = frame[EGO_FEATURES];
        assert!((dx as f64 - 30.0 / 50.0).abs() < 1e-6);
        // Present flag set.
        assert_eq!(frame[EGO_FEATURES + 3], 1.0);
    }

    #[test]
    fn feature_frame_pads_missing_npcs() {
        let mut s = Scenario::default();
        s.npcs.truncate(1);
        let fx = FeatureExtractor::new(FeatureConfig::default());
        let world = World::new(s);
        let frame = fx.extract_frame(&world);
        // Slots 2 and 3 are absent → zero present flag.
        assert_eq!(frame[EGO_FEATURES + NPC_FEATURES + 3], 0.0);
        assert_eq!(frame[EGO_FEATURES + 2 * NPC_FEATURES + 3], 0.0);
    }

    #[test]
    fn reset_clears_feature_history() {
        let mut fx = FeatureExtractor::new(FeatureConfig::default());
        let world = World::new(Scenario::default());
        fx.observe(&world);
        fx.observe(&world);
        fx.reset();
        let obs = fx.observe(&world);
        let dim = fx.config().frame_dim();
        assert!(obs[dim..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn camera_sees_vehicles_and_road() {
        let cam = SemanticCamera::default();
        let world = World::new(Scenario::default());
        let classes = cam.render_classes(&world);
        assert_eq!(classes.len(), cam.dim());
        let vehicles = classes
            .iter()
            .filter(|c| **c == SemanticClass::Vehicle)
            .count();
        let road = classes
            .iter()
            .filter(|c| **c == SemanticClass::Road)
            .count();
        assert!(vehicles > 0, "ego + nearby NPCs must be visible");
        assert!(road > vehicles, "most of the view is road");
        // The grid spans beyond the road edges, so some cells are off-road.
        assert!(classes.iter().any(|c| *c != SemanticClass::Road));
    }

    #[test]
    fn camera_intensities_match_classes() {
        let cam = SemanticCamera::default();
        let world = World::new(Scenario::default());
        let classes = cam.render_classes(&world);
        let intensities = cam.render(&world);
        for (c, i) in classes.iter().zip(&intensities) {
            assert_eq!(c.intensity(), *i);
        }
    }

    #[test]
    fn camera_grid_consistent_with_features() {
        // Place a single NPC ahead-left of the ego; the feature vector must
        // report positive dx and dy, and the camera grid must contain
        // vehicle cells in the ahead-left quadrant (beyond the ego's own
        // footprint cells near the center).
        let s = Scenario {
            npcs: vec![crate::scenario::NpcSpawn {
                lane: 2,
                x: 20.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let world = World::new(s);

        let fx = FeatureExtractor::new(FeatureConfig::default());
        let frame = fx.extract_frame(&world);
        let dx = frame[EGO_FEATURES] as f64 * 50.0;
        let dy = frame[EGO_FEATURES + 1] as f64 * 10.0;
        assert!(dx > 10.0, "npc ahead: dx {dx}");
        assert!(dy > 2.0, "npc left: dy {dy}");

        let cam = SemanticCamera::default();
        let classes = cam.render_classes(&world);
        // Grid geometry: row 0 = leftmost band, col 0 = farthest behind.
        let col_of = |x_rel: f64| {
            (((x_rel + cam.range_behind) / (cam.range_ahead + cam.range_behind)) * cam.cols as f64)
                as usize
        };
        let row_of = |y_rel: f64| {
            (((cam.range_side - y_rel) / (2.0 * cam.range_side)) * cam.rows as f64) as usize
        };
        let r = row_of(dy);
        let c = col_of(dx);
        assert_eq!(
            classes[r * cam.cols + c],
            SemanticClass::Vehicle,
            "grid cell at the feature-reported NPC position must be a vehicle"
        );
    }

    #[test]
    fn imu_window_size_and_rate() {
        let c = ImuConfig::default();
        assert_eq!(c.window_samples(), 64);
        assert_eq!(c.observation_dim(), 128);
        let mut imu = Imu::new(c);
        let mut world = World::new(Scenario::default());
        let mut rng = StdRng::seed_from_u64(3);
        world.step(Actuation::new(0.0, 1.0));
        imu.record(&world, &mut rng);
        // 20 sps * 0.1 s = 2 new samples; window stays at 64 entries.
        assert_eq!(imu.window().len(), 128);
    }

    #[test]
    fn imu_detects_acceleration() {
        let mut imu = Imu::new(ImuConfig {
            accel_noise_std: 0.0,
            gyro_noise_std: 0.0,
            ..ImuConfig::default()
        });
        let mut world = World::new(Scenario::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            world.step(Actuation::new(0.0, 1.0));
            imu.record(&world, &mut rng);
        }
        let w = imu.window();
        // Latest accel channel entries are positive (throttling).
        let last_ax = w[w.len() - 2];
        assert!(last_ax > 0.0, "ax {last_ax}");
    }

    #[test]
    fn imu_noise_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut imu = Imu::new(ImuConfig::default());
            let mut world = World::new(Scenario::default());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..3 {
                world.step(Actuation::new(0.1, 0.5));
                imu.record(&world, &mut rng);
            }
            imu.window()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
