//! The episode engine: advances the ego vehicle and NPC traffic, detects and
//! classifies collisions, and tracks overtaking progress.
//!
//! One [`World`] is one episode. The controlling agent (and any attacker
//! layered on top of it) supplies the ego actuation *variation* each step;
//! the world applies the paper's Eq. (1) smoothing inside
//! [`Vehicle::step`](crate::vehicle::Vehicle::step), advances the NPCs, and
//! reports the outcome.

use crate::geometry::{Pose, Vec2};
use crate::npc::{LeadTable, Npc};
use crate::scenario::Scenario;
use crate::vehicle::{Actuation, Vehicle, VehicleParams};
use serde::{Deserialize, Serialize};

/// How a collision happened — the attacker only "wins" on [`Side`]
/// collisions (Section IV-D).
///
/// [`Side`]: CollisionKind::Side
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionKind {
    /// The ego vehicle struck an NPC while substantially alongside it — the
    /// attacker's goal.
    Side,
    /// Front-into-rear contact along the lane direction (an "unexpected
    /// posture" per the paper, counted against the attacker).
    RearEnd,
    /// Any other ego–NPC contact posture.
    Other,
    /// The ego vehicle hit a roadside barrier.
    Barrier,
}

/// A classified collision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// What kind of contact occurred.
    pub kind: CollisionKind,
    /// Index of the NPC involved, if any (`None` for barrier hits).
    pub npc_index: Option<usize>,
    /// Control step at which the collision was detected.
    pub step: usize,
}

/// Why an episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Termination {
    /// Reached the step limit.
    TimeLimit,
    /// A collision occurred.
    Collision(CollisionEvent),
    /// The ego vehicle reached the end of the road.
    RoadEnd,
}

/// Outcome of one control step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Step index just executed (0-based).
    pub step: usize,
    /// Collision detected during this step, if any.
    pub collision: Option<CollisionEvent>,
    /// Episode termination, if the episode just ended.
    pub termination: Option<Termination>,
    /// NPC vehicles fully passed so far.
    pub passed: usize,
}

/// Reusable per-step workspaces: the lead table and the NPC control
/// buffer, retained across steps so the steady-state control phase makes
/// no heap allocations.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    leads: LeadTable,
    npc_controls: Vec<Actuation>,
}

/// One episode of the freeway scenario.
#[derive(Debug, Clone)]
pub struct World {
    scenario: Scenario,
    ego: Vehicle,
    npcs: Vec<Npc>,
    step: usize,
    terminated: Option<Termination>,
    nonfinite_actions: usize,
    scratch: StepScratch,
}

impl World {
    /// Spawns a fresh episode from a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`].
    pub fn new(scenario: Scenario) -> Self {
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario: {e}");
        }
        let ego_pose = Pose::new(
            scenario.ego_x,
            scenario.road.lane_center_y(scenario.ego_lane),
            0.0,
        );
        let ego = Vehicle::new(VehicleParams::default(), ego_pose, scenario.ego_speed);
        let npcs = scenario
            .npcs
            .iter()
            .map(|s| {
                let pose = Pose::new(s.x, scenario.road.lane_center_y(s.lane), 0.0);
                Npc::new(
                    Vehicle::new(VehicleParams::default(), pose, s.speed),
                    s.lane,
                    s.speed,
                )
            })
            .collect();
        World {
            scenario,
            ego,
            npcs,
            step: 0,
            terminated: None,
            nonfinite_actions: 0,
            scratch: StepScratch::default(),
        }
    }

    /// The scenario this episode was spawned from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The ego vehicle.
    pub fn ego(&self) -> &Vehicle {
        &self.ego
    }

    /// The NPC vehicles.
    pub fn npcs(&self) -> &[Npc] {
        &self.npcs
    }

    /// Current control step (number of completed steps).
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Simulated time elapsed, seconds.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.scenario.dt
    }

    /// Whether (and why) the episode has ended.
    pub fn termination(&self) -> Option<Termination> {
        self.terminated
    }

    /// How many commanded actions contained a non-finite channel and were
    /// sanitized before reaching the plant.
    pub fn nonfinite_action_count(&self) -> usize {
        self.nonfinite_actions
    }

    /// Replaces non-finite action channels before they can poison vehicle
    /// state: NaN snaps to neutral, infinities clamp to the mechanical
    /// limit. Finite values pass through untouched so clean episodes are
    /// bit-identical with and without the guard.
    fn sanitize_action(&mut self, mut a: Actuation) -> Actuation {
        let mut corrupted = false;
        for v in [&mut a.steer, &mut a.thrust] {
            if v.is_nan() {
                *v = 0.0;
                corrupted = true;
            } else if v.is_infinite() {
                *v = v.clamp(-1.0, 1.0);
                corrupted = true;
            }
        }
        if corrupted {
            self.nonfinite_actions += 1;
        }
        debug_assert!(
            a.steer.is_finite() && a.thrust.is_finite(),
            "sanitized actuation must be finite"
        );
        a
    }

    /// Whether the episode has ended.
    pub fn is_done(&self) -> bool {
        self.terminated.is_some()
    }

    /// Number of NPCs the ego vehicle has fully passed.
    pub fn passed_count(&self) -> usize {
        let margin = self.ego.params.length;
        self.npcs
            .iter()
            .filter(|n| n.vehicle.pose.position.x < self.ego.pose.position.x - margin)
            .count()
    }

    /// Index and state of the NPC nearest to the ego vehicle (Euclidean).
    ///
    /// Returns `None` only if the scenario has no NPCs.
    pub fn nearest_npc(&self) -> Option<(usize, &Npc)> {
        let ego_pos = self.ego.pose.position;
        // Argmin by squared distance — same winner as by `hypot` (monotone;
        // exact ties keep the earlier NPC either way), two libm calls
        // cheaper per comparison.
        self.npcs.iter().enumerate().min_by(|a, b| {
            (a.1.vehicle.pose.position - ego_pos)
                .norm_sq()
                .total_cmp(&(b.1.vehicle.pose.position - ego_pos).norm_sq())
        })
    }

    /// Advances the episode by one control step with the given ego
    /// actuation-variation command.
    ///
    /// Calling after termination is a no-op that re-reports the existing
    /// termination (convenient for runners that overshoot by a step).
    pub fn step(&mut self, ego_variation: Actuation) -> StepOutcome {
        let ego_cmd = match self.begin_step(ego_variation) {
            Ok(cmd) => cmd,
            Err(done) => return done,
        };
        self.integrate_step(ego_cmd);
        self.conclude_step()
    }

    /// Control phase of [`World::step`]: sanitizes the command, re-reports
    /// termination (`Err`) for finished episodes, and computes the NPC
    /// controls against the pre-step state, leaving them in the step
    /// scratch (readable via [`World::npc_controls`]). The caller must
    /// then integrate the ego with the returned command and each NPC with
    /// its control (either through [`World::integrate_step`] or the
    /// batched replica in [`crate::batch`]) and finish with
    /// [`World::conclude_step`].
    ///
    /// Shared by the serial engine and both `WorldBatch` precision paths so
    /// every decision branch — sanitize accounting, post-termination
    /// re-reporting, lead bookkeeping, NPC policy — has exactly one home.
    /// One lead table per world replaces the serial per-NPC `others` scan
    /// (bit-identical winners; see [`LeadTable`]), and all buffers are
    /// reused so the steady-state control phase is allocation-free.
    pub(crate) fn begin_step(
        &mut self,
        ego_variation: Actuation,
    ) -> Result<Actuation, StepOutcome> {
        let ego_variation = self.sanitize_action(ego_variation);
        if let Some(term) = self.terminated {
            return Err(StepOutcome {
                step: self.step,
                collision: match term {
                    Termination::Collision(c) => Some(c),
                    _ => None,
                },
                termination: Some(term),
                passed: self.passed_count(),
            });
        }

        crate::perf::record_steps(1);

        // NPC controls are computed against the pre-step state so ordering
        // between vehicles does not matter.
        let World {
            scenario,
            ego,
            npcs,
            scratch,
            ..
        } = self;
        let StepScratch {
            leads,
            npc_controls,
        } = scratch;
        leads.rebuild(&scenario.road, npcs, ego);
        npc_controls.clear();
        npc_controls.extend(
            npcs.iter()
                .enumerate()
                .map(|(i, n)| n.control_batched(leads, i)),
        );
        Ok(ego_variation)
    }

    /// Integration phase of [`World::step`]: advances the ego with
    /// `ego_cmd` and each NPC with the control computed by the preceding
    /// [`World::begin_step`]. Only valid between `begin_step` and
    /// [`World::conclude_step`].
    pub(crate) fn integrate_step(&mut self, ego_cmd: Actuation) {
        let dt = self.scenario.dt;
        let substeps = self.scenario.substeps;
        self.ego.step(ego_cmd, dt, substeps);
        let controls = std::mem::take(&mut self.scratch.npc_controls);
        for (npc, control) in self.npcs.iter_mut().zip(&controls) {
            npc.vehicle.step(*control, dt, substeps);
        }
        self.scratch.npc_controls = controls;
    }

    /// NPC controls computed by the last [`World::begin_step`], in NPC
    /// index order (for the batched integrator's gather phase).
    pub(crate) fn npc_controls(&self) -> &[Actuation] {
        &self.scratch.npc_controls
    }

    /// Outcome phase of [`World::step`]: advances the step counter, runs
    /// collision detection and the termination chain against the freshly
    /// integrated vehicle state. Only valid directly after a successful
    /// [`World::begin_step`] followed by integration of every vehicle.
    pub(crate) fn conclude_step(&mut self) -> StepOutcome {
        self.conclude_step_pruned(true)
    }

    /// [`World::conclude_step`] with a batched broad-phase hint: a caller
    /// that has proven from the SoA lanes that neither an NPC nor a
    /// barrier can be in contact this step passes `contact_possible =
    /// false` and skips the exact narrow phase (which would return
    /// `None`). The hint must be conservative — debug builds verify it.
    pub(crate) fn conclude_step_pruned(&mut self, contact_possible: bool) -> StepOutcome {
        let executed_step = self.step;
        self.step += 1;

        let collision = if contact_possible {
            self.detect_collision(executed_step)
        } else {
            debug_assert!(
                self.detect_collision(executed_step).is_none(),
                "broad-phase prune dropped a real contact"
            );
            None
        };
        let termination = if let Some(c) = collision {
            Some(Termination::Collision(c))
        } else if self.step >= self.scenario.max_steps {
            Some(Termination::TimeLimit)
        } else if self.ego.pose.position.x >= self.scenario.road.length {
            Some(Termination::RoadEnd)
        } else {
            None
        };
        self.terminated = termination;

        StepOutcome {
            step: executed_step,
            collision,
            termination,
            passed: self.passed_count(),
        }
    }

    /// Mutable ego access for the batched integrator's scatter phase.
    pub(crate) fn ego_mut(&mut self) -> &mut Vehicle {
        &mut self.ego
    }

    /// Mutable NPC access for the batched integrator's scatter phase.
    pub(crate) fn npcs_mut(&mut self) -> &mut [Npc] {
        &mut self.npcs
    }

    /// Checks ego-vs-barrier and ego-vs-NPC contacts and classifies them.
    fn detect_collision(&self, step: usize) -> Option<CollisionEvent> {
        let road = &self.scenario.road;
        let ego_obb = self.ego.obb();

        // Barrier: any ego corner beyond a road edge at that corner's x.
        for corner in ego_obb.corners() {
            let (right_edge, left_edge) = road.edge_ys_at(corner.x);
            if corner.y >= left_edge || corner.y <= right_edge {
                return Some(CollisionEvent {
                    kind: CollisionKind::Barrier,
                    npc_index: None,
                    step,
                });
            }
        }

        for (i, npc) in self.npcs.iter().enumerate() {
            let npc_obb = npc.vehicle.obb();
            // Cheap broad phase before SAT.
            let (amin, amax) = ego_obb.aabb();
            let (bmin, bmax) = npc_obb.aabb();
            if amax.x < bmin.x || bmax.x < amin.x || amax.y < bmin.y || bmax.y < amin.y {
                continue;
            }
            if ego_obb.intersects(&npc_obb) {
                let kind = classify_contact(&self.ego, &npc.vehicle);
                return Some(CollisionEvent {
                    kind,
                    npc_index: Some(i),
                    step,
                });
            }
        }
        None
    }
}

/// Classifies an ego–NPC contact posture.
///
/// The ego center is expressed in the NPC's body frame. The attacker's
/// desired *side collision* (the paper's Fig. 1b) covers two postures:
/// the vehicles substantially alongside, or the ego striking the NPC's
/// flank diagonally (angled heading, laterally offset). Straight,
/// lane-aligned front-into-rear contact is a [`CollisionKind::RearEnd`];
/// anything else is [`CollisionKind::Other`].
pub fn classify_contact(ego: &Vehicle, npc: &Vehicle) -> CollisionKind {
    let rel = npc.pose.world_to_local(ego.pose.position);
    let combined_half_len = (ego.params.length + npc.params.length) / 2.0;
    let combined_half_width = (ego.params.width + npc.params.width) / 2.0;
    let heading_diff = crate::geometry::angle_diff(ego.pose.heading, npc.pose.heading);
    if (rel.x / combined_half_len).abs() < 0.75 {
        // Substantially alongside.
        CollisionKind::Side
    } else if rel.x < 0.0 {
        if heading_diff.abs() > 0.15 && rel.y.abs() > 0.35 * combined_half_width {
            // Diagonal strike into the rear flank: the angled side impact
            // the adversarial reward optimizes for.
            CollisionKind::Side
        } else if rel.y.abs() < 0.6 * combined_half_width {
            CollisionKind::RearEnd
        } else {
            CollisionKind::Other
        }
    } else {
        CollisionKind::Other
    }
}

/// Relative geometry between the ego vehicle and a target NPC, the raw
/// material of the adversarial reward terms (Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativeGeometry {
    /// Unit vector from ego to the NPC (`v̂_e2n`).
    pub e2n: Vec2,
    /// Ego speed unit vector (`v̂_ego`).
    pub ego_dir: Vec2,
    /// NPC speed unit vector (`v̂_npc`).
    pub npc_dir: Vec2,
    /// Distance between centers, meters.
    pub distance: f64,
}

impl RelativeGeometry {
    /// Computes the relative geometry between the ego and one NPC.
    pub fn between(ego: &Vehicle, npc: &Npc) -> Self {
        let diff = npc.vehicle.pose.position - ego.pose.position;
        RelativeGeometry {
            e2n: diff.normalize_or_x(),
            ego_dir: ego.velocity().try_normalize().unwrap_or(ego.pose.forward()),
            npc_dir: npc
                .vehicle
                .velocity()
                .try_normalize()
                .unwrap_or(npc.vehicle.pose.forward()),
            distance: diff.norm(),
        }
    }

    /// `ω = v̂_e2n · v̂_npc` — the safety-critical-moment indicator input.
    pub fn omega(&self) -> f64 {
        self.e2n.dot(self.npc_dir)
    }

    /// `r_e2n = v̂_e2n · v̂_ego` — the collision-potential reward term.
    pub fn collision_potential(&self) -> f64 {
        self.e2n.dot(self.ego_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Pose;
    use crate::road::Road;
    use crate::vehicle::VehicleParams;

    fn world() -> World {
        World::new(Scenario::default())
    }

    #[test]
    fn fresh_world_state() {
        let w = world();
        assert_eq!(w.step_index(), 0);
        assert!(!w.is_done());
        assert_eq!(w.passed_count(), 0);
        assert_eq!(w.npcs().len(), 6);
        assert_eq!(w.ego().speed, 16.0);
    }

    #[test]
    fn time_limit_terminates_episode() {
        let mut s = Scenario::default();
        s.npcs.clear(); // empty road: coast straight, no collisions
        s.max_steps = 30;
        let mut w = World::new(s);
        let mut last = None;
        for _ in 0..30 {
            last = Some(w.step(Actuation::new(0.0, 0.2)));
        }
        assert_eq!(last.unwrap().termination, Some(Termination::TimeLimit));
        assert!(w.is_done());
    }

    #[test]
    fn step_after_termination_is_noop() {
        let mut s = Scenario::default();
        s.npcs.clear();
        s.max_steps = 5;
        let mut w = World::new(s);
        for _ in 0..5 {
            w.step(Actuation::default());
        }
        let x = w.ego().pose.position.x;
        let out = w.step(Actuation::new(0.0, 1.0));
        assert_eq!(out.termination, Some(Termination::TimeLimit));
        assert_eq!(w.ego().pose.position.x, x, "no motion after termination");
    }

    #[test]
    fn hard_left_hits_barrier() {
        let mut s = Scenario::default();
        s.npcs.clear();
        let mut w = World::new(s);
        let mut hit = None;
        for _ in 0..100 {
            let out = w.step(Actuation::new(1.0, 0.0));
            if let Some(c) = out.collision {
                hit = Some(c);
                break;
            }
        }
        let c = hit.expect("full steer at 16 m/s must reach the barrier");
        assert_eq!(c.kind, CollisionKind::Barrier);
        assert_eq!(c.npc_index, None);
    }

    #[test]
    fn driving_straight_into_lead_is_rear_end() {
        let s = Scenario {
            npcs: vec![crate::scenario::NpcSpawn {
                lane: 1,
                x: 25.0,
                speed: 2.0,
            }],
            ..Default::default()
        };
        let mut w = World::new(s);
        let mut hit = None;
        for _ in 0..180 {
            let out = w.step(Actuation::new(0.0, 0.3));
            if let Some(c) = out.collision {
                hit = Some(c);
                break;
            }
        }
        let c = hit.expect("ego must catch the slow lead");
        assert_eq!(c.kind, CollisionKind::RearEnd);
        assert_eq!(c.npc_index, Some(0));
    }

    #[test]
    fn classify_side_when_alongside() {
        let ego = Vehicle::new(VehicleParams::default(), Pose::new(10.0, 0.0, 0.3), 10.0);
        let npc_v = Vehicle::new(VehicleParams::default(), Pose::new(10.5, 2.0, 0.0), 6.0);
        let npc = classify_contact(&ego, &npc_v);
        assert_eq!(npc, CollisionKind::Side);
    }

    #[test]
    fn classify_rear_end_when_behind_and_aligned() {
        let ego = Vehicle::new(VehicleParams::default(), Pose::new(5.0, 0.0, 0.0), 10.0);
        let npc_v = Vehicle::new(VehicleParams::default(), Pose::new(9.4, 0.2, 0.0), 6.0);
        assert_eq!(classify_contact(&ego, &npc_v), CollisionKind::RearEnd);
    }

    #[test]
    fn classify_other_when_behind_but_offset() {
        let ego = Vehicle::new(VehicleParams::default(), Pose::new(5.0, 2.0, 0.0), 10.0);
        let npc_v = Vehicle::new(VehicleParams::default(), Pose::new(9.5, 0.0, 0.0), 6.0);
        assert_eq!(classify_contact(&ego, &npc_v), CollisionKind::Other);
    }

    #[test]
    fn passed_count_increases_as_ego_overtakes() {
        // Single NPC in another lane so no collision happens.
        let s = Scenario {
            npcs: vec![crate::scenario::NpcSpawn {
                lane: 0,
                x: 20.0,
                speed: 2.0,
            }],
            ..Default::default()
        };
        let mut w = World::new(s);
        assert_eq!(w.passed_count(), 0);
        for _ in 0..60 {
            w.step(Actuation::new(0.0, 0.5));
            if w.is_done() {
                break;
            }
        }
        assert_eq!(w.passed_count(), 1);
    }

    #[test]
    fn nearest_npc_is_correct() {
        let w = world();
        let (idx, npc) = w.nearest_npc().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(npc.vehicle.pose.position.x, 30.0);
    }

    #[test]
    fn relative_geometry_omega_alongside_is_small() {
        // Ego directly beside the NPC: e2n is perpendicular to the NPC's
        // travel direction, so omega ~ 0 → safety-critical moment.
        let road = Road::default();
        let ego = Vehicle::new(
            VehicleParams::default(),
            Pose::new(50.0, road.lane_center_y(2), 0.0),
            16.0,
        );
        let npc = Npc::new(
            Vehicle::new(
                VehicleParams::default(),
                Pose::new(50.0, road.lane_center_y(1), 0.0),
                6.0,
            ),
            1,
            6.0,
        );
        let rel = RelativeGeometry::between(&ego, &npc);
        assert!(rel.omega().abs() < 1e-9);
        // Ego moving parallel: collision potential ~ 0 too.
        assert!(rel.collision_potential().abs() < 1e-9);
    }

    #[test]
    fn relative_geometry_behind_is_not_critical() {
        // Ego far behind the NPC: e2n is parallel to npc dir → omega ~ 1.
        let road = Road::default();
        let ego = Vehicle::new(
            VehicleParams::default(),
            Pose::new(0.0, road.lane_center_y(1), 0.0),
            16.0,
        );
        let npc = Npc::new(
            Vehicle::new(
                VehicleParams::default(),
                Pose::new(40.0, road.lane_center_y(1), 0.0),
                6.0,
            ),
            1,
            6.0,
        );
        let rel = RelativeGeometry::between(&ego, &npc);
        assert!(rel.omega() > 0.99);
        // Driving straight at the NPC: max collision potential.
        assert!(rel.collision_potential() > 0.99);
    }

    #[test]
    fn nonfinite_actions_are_sanitized_and_counted() {
        let mut world = World::new(Scenario::default());
        // Actuation::new clamps infinities but passes NaN through; build
        // the raw struct to exercise both branches of the guard.
        world.step(Actuation {
            steer: f64::NAN,
            thrust: 0.5,
        });
        world.step(Actuation {
            steer: f64::INFINITY,
            thrust: f64::NEG_INFINITY,
        });
        world.step(Actuation::new(0.1, 0.5));
        assert_eq!(world.nonfinite_action_count(), 2);
        assert!(world.ego().pose.position.x.is_finite());
        assert!(world.ego().speed.is_finite());
    }

    #[test]
    fn finite_actions_pass_the_guard_unchanged() {
        let mut a = World::new(Scenario::default());
        let mut b = World::new(Scenario::default());
        for t in 0..30 {
            let cmd = Actuation::new(0.2 * ((t % 5) as f64 - 2.0), 0.6);
            a.step(cmd);
            b.step(cmd);
        }
        assert_eq!(a.nonfinite_action_count(), 0);
        assert_eq!(a.ego().pose.position.x, b.ego().pose.position.x);
    }
}
