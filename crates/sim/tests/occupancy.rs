//! Exact-count regression test for the fleet occupancy counters.
//!
//! `WorldBatch::step` must record, per lockstep batch step, exactly the
//! number of slots that actually advanced: a slot that terminated earlier
//! and is merely re-reporting contributes nothing, and a slot that retires
//! and is refilled within the same `compact` pass is counted once for each
//! step it really took — never twice. This lives in its own integration
//! binary with a single test so the process-wide counters admit exact
//! deltas (the in-crate tests can only assert monotonicity because they
//! share the process with concurrently stepping tests).

use drive_sim::batch::{Precision, WorldBatch};
use drive_sim::perf;
use drive_sim::scenario::Scenario;
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;

fn world(max_steps: usize) -> World {
    World::new(Scenario {
        npcs: vec![],
        max_steps,
        ..Scenario::default()
    })
}

#[test]
fn occupancy_counts_only_advancing_slots_across_staggered_retirements() {
    let t0 = perf::fleet();
    let mut wb = WorldBatch::new(Precision::Golden);
    wb.push(world(1));
    wb.push(world(3));
    let mut out = Vec::new();
    let idle = [Actuation::new(0.0, 0.0); 2];

    // Step 1: both slots advance (the short world terminates on arrival
    // at its step limit, but it did take this step).
    wb.step(&idle, &mut out);
    perf::record_fleet_capacity(2);
    assert_eq!(perf::fleet().since(&t0).slot_steps, 2);

    // Retire the finished slot and refill it within the same lockstep
    // iteration — the classic double-count trigger.
    let mut retired = 0;
    wb.compact(|_, _| retired += 1);
    assert_eq!(retired, 1);
    wb.push(world(2));

    // Step 2: the surviving world and the refill both advance: exactly +2,
    // not +3 (the retired slot must not be counted again).
    wb.step(&idle, &mut out);
    perf::record_fleet_capacity(2);
    assert_eq!(perf::fleet().since(&t0).slot_steps, 4);

    // Step 3: both reach their limits while advancing: +2.
    wb.step(&idle, &mut out);
    perf::record_fleet_capacity(2);
    assert_eq!(perf::fleet().since(&t0).slot_steps, 6);

    // Step 4: every slot already terminated — re-reporting only, +0.
    wb.step(&idle, &mut out);
    perf::record_fleet_capacity(2);

    let d = perf::fleet().since(&t0);
    assert_eq!(d.slot_steps, 6, "stale slots must not inflate occupancy");
    assert_eq!(d.batches, 4);
    assert_eq!(d.capacity, 8);
    assert!(
        (d.occupancy() - 0.75).abs() < 1e-12,
        "6 advanced / 8 capacity"
    );
    assert!((d.episodes_in_flight() - 1.5).abs() < 1e-12);
}
