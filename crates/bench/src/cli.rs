//! Shared entry point for the figure binaries.
//!
//! Every binary prepares (or loads) the full artifact set under
//! `artifacts/` and runs one experiment. Pass `--smoke` (or set
//! `REPRO_SCALE=smoke`) to use the reduced evaluation scale; pass
//! `--artifacts <dir>` to point at a different checkpoint directory; pass
//! `--perf-json <path>` to write per-phase throughput (steps/sec and
//! updates/sec) as JSON. Worker-thread count comes from `DRIVE_JOBS`
//! (see `drive_par`).

use crate::experiments::{ablations, baseline, fig4, fig5, fig6, fig7, fig8};
use crate::harness::Scale;
use crate::perf::{PerfReport, ThroughputProbe};
use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use std::path::PathBuf;

/// Parses the SVG output directory from CLI args (`--svg <dir>`), if any.
pub fn svg_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Parses the CSV output directory from CLI args (`--csv <dir>`), if any.
pub fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Parses the artifacts directory from CLI args (default `artifacts/`).
pub fn artifacts_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts"))
}

/// Parses the perf-report output path from CLI args (`--perf-json <path>`),
/// if any.
pub fn perf_json_path() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--perf-json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Builds the pipeline configuration used by all binaries.
pub fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        dir: artifacts_dir(),
        ..PipelineConfig::default()
    }
}

/// Prepares artifacts and runs the named experiment, printing its report.
///
/// # Panics
///
/// Panics on an unknown experiment name.
pub fn run_experiment(name: &str) {
    let config = pipeline_config();
    let scale = Scale::from_env();
    eprintln!(
        "[{name}] artifacts dir: {} | scale: {} episodes/cell, {} rounds/budget",
        config.dir.display(),
        scale.box_episodes,
        scale.scatter_rounds
    );
    let total = ThroughputProbe::start();
    let mut report = PerfReport::new();
    let probe = ThroughputProbe::start();
    let artifacts = prepare(&config);
    report.push(probe.sample("prepare"));
    if name == "all" {
        let phases = run_all(
            &artifacts,
            &config,
            scale,
            csv_dir().as_deref(),
            svg_dir().as_deref(),
        );
        report.samples.extend(phases.samples);
    } else {
        let probe = ThroughputProbe::start();
        print_experiment(name, &artifacts, &config, scale);
        if let Some(dir) = csv_dir() {
            write_csvs(name, &artifacts, &config, scale, &dir);
        }
        if let Some(dir) = svg_dir() {
            write_svgs(name, &artifacts, &config, scale, &dir);
        }
        report.push(probe.sample(name));
    }
    report.push(total.sample("total"));
    eprint!("{}", report.summary());
    if let Some(path) = perf_json_path() {
        match report.write_to(&path) {
            Ok(()) => eprintln!("[perf] wrote {}", path.display()),
            Err(e) => eprintln!("[perf] failed {}: {e}", path.display()),
        }
    }
}

/// Runs every experiment exactly once, printing all reports and (when the
/// directories are given) writing CSV and SVG outputs from the same result
/// objects — no recomputation. Returns per-figure throughput samples.
pub fn run_all(
    artifacts: &Artifacts,
    config: &PipelineConfig,
    scale: Scale,
    csv: Option<&std::path::Path>,
    svg: Option<&std::path::Path>,
) -> PerfReport {
    use drive_metrics::svg::{bar_chart_svg, box_plot_svg, scatter_svg, write_svg};
    let save_csv = |stem: &str, c: drive_metrics::export::Csv| {
        if let Some(dir) = csv {
            let path = dir.join(format!("{stem}.csv"));
            match c.write_to(&path) {
                Ok(()) => eprintln!("[csv] wrote {}", path.display()),
                Err(e) => eprintln!("[csv] failed {}: {e}", path.display()),
            }
        }
    };
    let save_svg = |stem: &str, text: String| {
        if let Some(dir) = svg {
            let path = dir.join(format!("{stem}.svg"));
            match write_svg(&path, &text) {
                Ok(()) => eprintln!("[svg] wrote {}", path.display()),
                Err(e) => eprintln!("[svg] failed {}: {e}", path.display()),
            }
        }
    };
    let budgets: Vec<String> = attack_core::budget::AttackBudget::fig4_grid()
        .iter()
        .map(|b| format!("{b}"))
        .collect();
    let mut report = PerfReport::new();
    let mut probe = ThroughputProbe::start();
    let mut lap = |report: &mut PerfReport, label: &str| {
        report.push(probe.sample(label));
        probe = ThroughputProbe::start();
    };

    println!("{}", baseline::run(artifacts, config, scale));
    lap(&mut report, "baseline");

    let f4 = fig4::run(artifacts, config, scale);
    println!("{f4}");
    save_csv("fig4", f4.to_csv());
    for (stem, title, pick) in [
        (
            "fig4a_nominal",
            "Fig. 4a — nominal driving reward vs attack budget",
            true,
        ),
        (
            "fig4b_adversarial",
            "Fig. 4b — adversarial reward vs attack budget",
            false,
        ),
    ] {
        let series: Vec<(String, Vec<drive_metrics::agg::BoxStats>)> = [
            attack_core::sensor::SensorKind::Camera,
            attack_core::sensor::SensorKind::Imu,
        ]
        .into_iter()
        .map(|sensor| {
            let boxes = attack_core::budget::AttackBudget::fig4_grid()
                .iter()
                .filter_map(|b| f4.cell(sensor, b.epsilon()))
                .map(|c| {
                    if pick {
                        c.summary.nominal
                    } else {
                        c.summary.adversarial
                    }
                })
                .collect();
            (sensor.to_string(), boxes)
        })
        .collect();
        save_svg(
            stem,
            box_plot_svg(title, &budgets, &series, "attack budget", "reward"),
        );
    }
    lap(&mut report, "fig4");

    let f5 = fig5::run(artifacts, config, scale);
    println!("{f5}");
    save_csv("fig5", f5.to_csv());
    for s in &f5.series {
        save_svg(
            &format!(
                "fig5_{}",
                s.agent.label().replace(['(', ')', '=', '/'], "_")
            ),
            scatter_svg(
                &format!("Fig. 5 — {} under camera attack", s.agent.label()),
                &s.points,
                "attack effort",
                "deviation RMSE",
            ),
        );
    }
    lap(&mut report, "fig5");

    let f6 = fig6::run(artifacts, config, scale);
    println!("{f6}");
    save_csv("fig6", f6.to_csv());
    let series: Vec<(String, Vec<drive_metrics::agg::BoxStats>)> =
        crate::harness::AgentKind::enhanced_lineup()
            .into_iter()
            .map(|agent| {
                let boxes = attack_core::budget::AttackBudget::fig4_grid()
                    .iter()
                    .filter_map(|b| f6.nominal_box(agent, b.epsilon()).copied())
                    .collect();
                (agent.label().to_string(), boxes)
            })
            .collect();
    save_svg(
        "fig6_nominal",
        box_plot_svg(
            "Fig. 6 — nominal reward of original and enhanced agents",
            &budgets,
            &series,
            "attack budget",
            "nominal driving reward",
        ),
    );
    lap(&mut report, "fig6");

    let f7 = fig7::run(artifacts, config, scale);
    println!("{f7}");
    save_csv("fig7", f7.to_csv());
    for s in &f7.series {
        save_svg(
            &format!(
                "fig7_{}",
                s.agent.label().replace(['(', ')', '=', '/'], "_")
            ),
            scatter_svg(
                &format!("Fig. 7 — {} under camera attack", s.agent.label()),
                &s.points,
                "attack effort",
                "deviation RMSE",
            ),
        );
    }
    lap(&mut report, "fig7");

    let f8 = fig8::run(&f5, &f7);
    println!("{f8}");
    save_csv("fig8", f8.to_csv());
    let windows: Vec<String> = f8
        .series
        .first()
        .map(|s| s.windows.iter().map(|w| w.label()).collect())
        .unwrap_or_default();
    let series: Vec<(String, Vec<f64>)> = f8
        .series
        .iter()
        .map(|s| {
            (
                s.agent.label().to_string(),
                s.windows.iter().map(|w| w.success_rate).collect(),
            )
        })
        .collect();
    save_svg(
        "fig8_success_rates",
        bar_chart_svg(
            "Fig. 8 — success rate per effort window",
            &windows,
            &series,
            "attack success rate",
        ),
    );
    lap(&mut report, "fig8");

    println!("{}", ablations::run(artifacts, config, scale));
    lap(&mut report, "ablations");
    report
}

/// Renders the experiment's figures as SVG files under `dir`.
pub fn write_svgs(
    name: &str,
    artifacts: &Artifacts,
    config: &PipelineConfig,
    scale: Scale,
    dir: &std::path::Path,
) {
    use attack_core::budget::AttackBudget;
    use drive_metrics::svg::{bar_chart_svg, box_plot_svg, scatter_svg, write_svg};

    let save = |stem: &str, svg: String| {
        let path = dir.join(format!("{stem}.svg"));
        match write_svg(&path, &svg) {
            Ok(()) => eprintln!("[svg] wrote {}", path.display()),
            Err(e) => eprintln!("[svg] failed to write {}: {e}", path.display()),
        }
    };
    let budgets: Vec<String> = AttackBudget::fig4_grid()
        .iter()
        .map(|b| format!("{b}"))
        .collect();
    match name {
        "fig4" | "all" if name == "fig4" || name == "all" => {
            let f4 = fig4::run(artifacts, config, scale);
            let series: Vec<(String, Vec<drive_metrics::agg::BoxStats>)> = [
                attack_core::sensor::SensorKind::Camera,
                attack_core::sensor::SensorKind::Imu,
            ]
            .into_iter()
            .map(|sensor| {
                let boxes = AttackBudget::fig4_grid()
                    .iter()
                    .filter_map(|b| f4.cell(sensor, b.epsilon()))
                    .map(|c| c.summary.nominal)
                    .collect();
                (sensor.to_string(), boxes)
            })
            .collect();
            save(
                "fig4a_nominal",
                box_plot_svg(
                    "Fig. 4a — nominal driving reward vs attack budget",
                    &budgets,
                    &series,
                    "attack budget",
                    "nominal driving reward",
                ),
            );
            let adv_series: Vec<(String, Vec<drive_metrics::agg::BoxStats>)> = [
                attack_core::sensor::SensorKind::Camera,
                attack_core::sensor::SensorKind::Imu,
            ]
            .into_iter()
            .map(|sensor| {
                let boxes = AttackBudget::fig4_grid()
                    .iter()
                    .filter_map(|b| f4.cell(sensor, b.epsilon()))
                    .map(|c| c.summary.adversarial)
                    .collect();
                (sensor.to_string(), boxes)
            })
            .collect();
            save(
                "fig4b_adversarial",
                box_plot_svg(
                    "Fig. 4b — adversarial reward vs attack budget",
                    &budgets,
                    &adv_series,
                    "attack budget",
                    "cumulative adversarial reward",
                ),
            );
            if name != "all" {
                return;
            }
            let f5 = fig5::run(artifacts, config, scale);
            for s in &f5.series {
                save(
                    &format!(
                        "fig5_{}",
                        s.agent.label().replace(['(', ')', '=', '/'], "_")
                    ),
                    scatter_svg(
                        &format!("Fig. 5 — {} under camera attack", s.agent.label()),
                        &s.points,
                        "attack effort",
                        "deviation RMSE",
                    ),
                );
            }
            let f6 = fig6::run(artifacts, config, scale);
            let series: Vec<(String, Vec<drive_metrics::agg::BoxStats>)> =
                crate::harness::AgentKind::enhanced_lineup()
                    .into_iter()
                    .map(|agent| {
                        let boxes = AttackBudget::fig4_grid()
                            .iter()
                            .filter_map(|b| f6.nominal_box(agent, b.epsilon()).copied())
                            .collect();
                        (agent.label().to_string(), boxes)
                    })
                    .collect();
            save(
                "fig6_nominal",
                box_plot_svg(
                    "Fig. 6 — nominal reward of original and enhanced agents",
                    &budgets,
                    &series,
                    "attack budget",
                    "nominal driving reward",
                ),
            );
            let f7 = fig7::run(artifacts, config, scale);
            for s in &f7.series {
                save(
                    &format!(
                        "fig7_{}",
                        s.agent.label().replace(['(', ')', '=', '/'], "_")
                    ),
                    scatter_svg(
                        &format!("Fig. 7 — {} under camera attack", s.agent.label()),
                        &s.points,
                        "attack effort",
                        "deviation RMSE",
                    ),
                );
            }
            let f8 = fig8::run(&f5, &f7);
            let windows: Vec<String> = f8
                .series
                .first()
                .map(|s| s.windows.iter().map(|w| w.label()).collect())
                .unwrap_or_default();
            let series: Vec<(String, Vec<f64>)> = f8
                .series
                .iter()
                .map(|s| {
                    (
                        s.agent.label().to_string(),
                        s.windows.iter().map(|w| w.success_rate).collect(),
                    )
                })
                .collect();
            save(
                "fig8_success_rates",
                bar_chart_svg(
                    "Fig. 8 — success rate per effort window",
                    &windows,
                    &series,
                    "attack success rate",
                ),
            );
        }
        "fig5" => {
            let f5 = fig5::run(artifacts, config, scale);
            for s in &f5.series {
                save(
                    &format!(
                        "fig5_{}",
                        s.agent.label().replace(['(', ')', '=', '/'], "_")
                    ),
                    scatter_svg(
                        &format!("Fig. 5 — {} under camera attack", s.agent.label()),
                        &s.points,
                        "attack effort",
                        "deviation RMSE",
                    ),
                );
            }
        }
        _ => {}
    }
}

/// Writes the experiment's data as CSV files under `dir`.
///
/// Re-runs the experiment (records are deterministic, so the CSV matches
/// the printed report exactly).
pub fn write_csvs(
    name: &str,
    artifacts: &Artifacts,
    config: &PipelineConfig,
    scale: Scale,
    dir: &std::path::Path,
) {
    let save = |stem: &str, csv: drive_metrics::export::Csv| {
        let path = dir.join(format!("{stem}.csv"));
        match csv.write_to(&path) {
            Ok(()) => eprintln!("[csv] wrote {}", path.display()),
            Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
        }
    };
    match name {
        "fig4" => save("fig4", fig4::run(artifacts, config, scale).to_csv()),
        "fig5" => save("fig5", fig5::run(artifacts, config, scale).to_csv()),
        "fig6" => save("fig6", fig6::run(artifacts, config, scale).to_csv()),
        "fig7" => save("fig7", fig7::run(artifacts, config, scale).to_csv()),
        "fig8" | "all" => {
            let f5 = fig5::run(artifacts, config, scale);
            let f7 = fig7::run(artifacts, config, scale);
            if name == "all" {
                save("fig4", fig4::run(artifacts, config, scale).to_csv());
                save("fig5", f5.to_csv());
                save("fig6", fig6::run(artifacts, config, scale).to_csv());
                save("fig7", f7.to_csv());
            }
            save("fig8", fig8::run(&f5, &f7).to_csv());
        }
        _ => {}
    }
}

/// Runs the named experiment against prepared artifacts.
///
/// # Panics
///
/// Panics on an unknown experiment name.
pub fn print_experiment(name: &str, artifacts: &Artifacts, config: &PipelineConfig, scale: Scale) {
    match name {
        "baseline" => println!("{}", baseline::run(artifacts, config, scale)),
        "fig4" => println!("{}", fig4::run(artifacts, config, scale)),
        "fig5" => println!("{}", fig5::run(artifacts, config, scale)),
        "fig6" => println!("{}", fig6::run(artifacts, config, scale)),
        "fig7" => println!("{}", fig7::run(artifacts, config, scale)),
        "fig8" => {
            let f5 = fig5::run(artifacts, config, scale);
            let f7 = fig7::run(artifacts, config, scale);
            println!("{}", fig8::run(&f5, &f7));
        }
        "ablations" => println!("{}", ablations::run(artifacts, config, scale)),
        "all" => {
            println!("{}", baseline::run(artifacts, config, scale));
            println!("{}", fig4::run(artifacts, config, scale));
            let f5 = fig5::run(artifacts, config, scale);
            println!("{f5}");
            println!("{}", fig6::run(artifacts, config, scale));
            let f7 = fig7::run(artifacts, config, scale);
            println!("{f7}");
            println!("{}", fig8::run(&f5, &f7));
            println!("{}", ablations::run(artifacts, config, scale));
        }
        other => panic!("unknown experiment '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_dir_defaults() {
        // No --artifacts flag in the test binary's args.
        assert_eq!(artifacts_dir(), PathBuf::from("artifacts"));
    }

    #[test]
    fn svg_and_csv_outputs_written() {
        let dir = std::env::temp_dir().join("repro-bench-cli-svg-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = PipelineConfig::quick(dir.join("artifacts"));
        let artifacts = prepare(&config);
        write_csvs(
            "fig4",
            &artifacts,
            &config,
            Scale::smoke(),
            &dir.join("csv"),
        );
        write_svgs(
            "fig4",
            &artifacts,
            &config,
            Scale::smoke(),
            &dir.join("svg"),
        );
        assert!(dir.join("csv/fig4.csv").exists());
        let svg = std::fs::read_to_string(dir.join("svg/fig4a_nominal.svg")).unwrap();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(dir.join("svg/fig4b_adversarial.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let dir = std::env::temp_dir().join("repro-bench-cli-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        print_experiment("nope", &artifacts, &config, Scale::smoke());
    }
}
